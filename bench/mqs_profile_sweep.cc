// Copyright 2026 The CrackStore Authors
//
// MQS space sweep (paper §4): "A study along the different dimensions
// provides insight in the ability of a DBMS to cope with and exploit the
// nature of such sequences." This binary walks the (profile × ρ) plane of
// the MQS(α, N, k, σ, ρ, δ) space and reports the session totals for the
// three physical designs, quantifying where cracking pays off most
// (homeruns) and least (pure random strolls).
//
// Output: CSV rows (profile, rho, strategy, total_seconds, touched_tuples,
// final_pieces).

#include <string>
#include <vector>

#include "bench_common.h"
#include "core/adaptive_store.h"
#include "workload/sequence.h"
#include "workload/tapestry.h"

namespace crackstore {
namespace {

int Run(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  uint64_t n = flags.GetUint("n", 1000000);
  size_t k = flags.GetUint("k", 64);
  double sigma = flags.GetDouble("sigma", 0.05);
  uint64_t seed = flags.GetUint("seed", 20040901);

  bench::Banner("mqs_profile_sweep", "§4 MQS space of CIDR'05 cracking",
                StrFormat("n=%llu k=%zu sigma=%.2f",
                          static_cast<unsigned long long>(n), k, sigma));

  TapestryOptions topts;
  topts.num_rows = n;
  topts.seed = seed;
  auto rel = *BuildTapestry("R", topts);

  TablePrinter out;
  out.SetHeader({"profile", "rho", "strategy", "total_seconds",
                 "touched_tuples", "final_pieces"});

  for (Profile profile : {Profile::kHomerun, Profile::kHiking,
                          Profile::kStrolling, Profile::kStrollingConverge}) {
    for (ContractionModel rho :
         {ContractionModel::kLinear, ContractionModel::kExponential,
          ContractionModel::kLogarithmic}) {
      MqsSpec spec;
      spec.num_rows = n;
      spec.sequence_length = k;
      spec.target_selectivity = sigma;
      spec.rho = rho;
      spec.profile = profile;
      spec.seed = seed;
      auto queries = *GenerateSequence(spec);

      for (AccessStrategy strategy :
           {AccessStrategy::kScan, AccessStrategy::kSort,
            AccessStrategy::kCrack}) {
        AdaptiveStoreOptions opts;
        opts.strategy = strategy;
        opts.track_lineage = false;
        auto store_or = bench::OpenStore(flags, opts);
        CRACK_CHECK(store_or.ok());
        AdaptiveStore& store = **store_or;
        CRACK_CHECK(store.AddTable(rel).ok());
        double total = 0;
        for (const RangeQuery& q : queries) {
          auto result = store.SelectRange("R", "c0",
                                          RangeBounds::Closed(q.lo, q.hi));
          CRACK_CHECK(result.ok());
          total += result->seconds;
        }
        uint64_t touched = store.total_io().tuples_read +
                           store.total_io().tuples_written;
        out.AddRow({ProfileName(profile), ContractionModelName(rho),
                    AccessStrategyName(strategy), StrFormat("%.6f", total),
                    StrFormat("%llu", static_cast<unsigned long long>(touched)),
                    StrFormat("%zu", *store.NumPieces("R", "c0"))});
      }
    }
  }
  out.PrintCsv(stdout);
  return 0;
}

}  // namespace
}  // namespace crackstore

int main(int argc, char** argv) { return crackstore::Run(argc, argv); }
