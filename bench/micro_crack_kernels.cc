// Copyright 2026 The CrackStore Authors
//
// google-benchmark micro suite for the core primitives: crack kernels vs a
// plain scan vs std::sort, plus whole cracker-index query paths. These
// numbers ground the claim of §2.2 that "with proper engineering the total
// CPU cost for such an incremental scheme is in the same order of magnitude
// as sorting".
//
// `--json=PATH` switches to a self-contained SIMD-tier comparison: every
// supported kernel tier (scalar / predicated / avx2 / neon) cracks 1M rows
// per element type and selectivity, and the medians land in PATH as JSON —
// plus an aggregate-pushdown comparison (SUM over a warmed cracked int32
// column via span kernels vs materialize-then-loop). CI's bench-smoke lane
// reads `dispatched_vs_scalar_int32` and
// `agg_pushdown_vs_materialize_int32` from that file.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <numeric>
#include <string>
#include <vector>

#include "core/adaptive_store.h"
#include "core/crack_kernels.h"
#include "core/cracker_index.h"
#include "core/oid_set_ops.h"
#include "core/simd_dispatch.h"
#include "core/sorted_column.h"
#include "util/rng.h"
#include "workload/tapestry.h"

namespace crackstore {
namespace {

std::vector<int64_t> RandomValues(size_t n, uint64_t seed = 99) {
  Pcg32 rng(seed);
  std::vector<int64_t> v(n);
  for (auto& x : v) x = rng.NextInRange(0, static_cast<int64_t>(n));
  return v;
}

void BM_Scan(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<int64_t> data = RandomValues(n);
  int64_t pivot = static_cast<int64_t>(n / 2);
  for (auto _ : state) {
    uint64_t count = 0;
    for (int64_t v : data) count += v < pivot;
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_Scan)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 23);

void BM_CrackInTwo(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<int64_t> original = RandomValues(n);
  std::vector<int64_t> data(n);
  int64_t pivot = static_cast<int64_t>(n / 2);
  for (auto _ : state) {
    state.PauseTiming();
    data = original;
    state.ResumeTiming();
    CrackSplit split = CrackInTwoLt(data.data(), nullptr, n, pivot);
    benchmark::DoNotOptimize(split.split);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_CrackInTwo)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 23);

void BM_CrackInThree(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<int64_t> original = RandomValues(n);
  std::vector<int64_t> data(n);
  int64_t lo = static_cast<int64_t>(n / 3);
  int64_t hi = static_cast<int64_t>(2 * n / 3);
  for (auto _ : state) {
    state.PauseTiming();
    data = original;
    state.ResumeTiming();
    Crack3Split split =
        CrackInThree(data.data(), nullptr, n, lo, true, hi, true);
    benchmark::DoNotOptimize(split.first);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_CrackInThree)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 23);

void BM_StdSort(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<int64_t> original = RandomValues(n);
  std::vector<int64_t> data(n);
  for (auto _ : state) {
    state.PauseTiming();
    data = original;
    state.ResumeTiming();
    std::sort(data.begin(), data.end());
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_StdSort)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 23);

void BM_CrackerIndexQuerySequence(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto column = BuildPermutationColumn(n, 7, "perm");
  int64_t width = static_cast<int64_t>(n / 20);
  for (auto _ : state) {
    state.PauseTiming();
    CrackerIndex<int64_t> index(column);
    Pcg32 rng(11);
    state.ResumeTiming();
    for (int q = 0; q < 64; ++q) {
      int64_t lo = rng.NextInRange(1, static_cast<int64_t>(n) - width);
      benchmark::DoNotOptimize(
          index.Select(lo, true, lo + width - 1, true).count());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_CrackerIndexQuerySequence)->Arg(1 << 18)->Arg(1 << 20);

/// `n` ascending oids sampled from [0, universe) without duplicates.
std::vector<Oid> RandomOidList(size_t n, Oid universe, uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<Oid> out;
  out.reserve(n);
  // Stride sampling keeps the list uniform and strictly ascending.
  Oid stride = universe / static_cast<Oid>(n);
  Oid at = 0;
  for (size_t i = 0; i < n && at < universe; ++i) {
    at += 1 + rng.NextBounded(static_cast<uint32_t>(
                   std::max<Oid>(1, 2 * stride - 1)));
    out.push_back(at);
  }
  return out;
}

/// The conjunction intersect at a given size skew: small = large / ratio.
/// ratio 1 exercises the linear merge, larger ratios the galloping search
/// (IntersectSorted switches at kGallopRatio).
void BM_IntersectSorted(benchmark::State& state) {
  size_t large_n = 1 << 20;
  size_t ratio = static_cast<size_t>(state.range(0));
  size_t small_n = large_n / ratio;
  Oid universe = static_cast<Oid>(large_n) * 4;
  std::vector<Oid> small = RandomOidList(small_n, universe, 17);
  std::vector<Oid> large = RandomOidList(large_n, universe, 23);
  for (auto _ : state) {
    std::vector<Oid> out = IntersectSorted(small, large);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(small_n + large_n));
}
BENCHMARK(BM_IntersectSorted)->Arg(1)->Arg(8)->Arg(64)->Arg(1024)->Arg(16384);

/// The linear merge at the same skews — the baseline galloping replaces.
void BM_IntersectLinear(benchmark::State& state) {
  size_t large_n = 1 << 20;
  size_t ratio = static_cast<size_t>(state.range(0));
  size_t small_n = large_n / ratio;
  Oid universe = static_cast<Oid>(large_n) * 4;
  std::vector<Oid> small = RandomOidList(small_n, universe, 17);
  std::vector<Oid> large = RandomOidList(large_n, universe, 23);
  for (auto _ : state) {
    std::vector<Oid> out = IntersectSortedLinear(small, large);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(small_n + large_n));
}
BENCHMARK(BM_IntersectLinear)->Arg(1)->Arg(8)->Arg(64)->Arg(1024)->Arg(16384);

void BM_SortedColumnQuery(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto column = BuildPermutationColumn(n, 7, "perm");
  SortedColumn<int64_t> sorted(column);
  Pcg32 rng(11);
  int64_t width = static_cast<int64_t>(n / 20);
  for (auto _ : state) {
    int64_t lo = rng.NextInRange(1, static_cast<int64_t>(n) - width);
    benchmark::DoNotOptimize(
        sorted.Select(lo, true, lo + width - 1, true).count());
  }
}
BENCHMARK(BM_SortedColumnQuery)->Arg(1 << 18)->Arg(1 << 20);

// ---------------------------------------------------------------------------
// --json mode: tier comparison matrix.
// ---------------------------------------------------------------------------

/// Median wall time in ns of one crack-in-two over `n` rows with the oid
/// map in lockstep (the shape every access path runs). The clone back to
/// the unsorted input is outside the timed region.
template <typename T>
double MedianCrack2Ns(SimdTier tier, double selectivity, size_t n, int reps) {
  Pcg32 rng(99);
  std::vector<T> original(n);
  for (auto& x : original)
    x = static_cast<T>(rng.NextInRange(0, static_cast<int64_t>(n)));
  const T pivot = static_cast<T>(selectivity * static_cast<double>(n));
  std::vector<T> data(n);
  std::vector<Oid> oids(n);
  std::vector<double> times;
  for (int r = 0; r <= reps; ++r) {  // rep 0 is warm-up
    std::copy(original.begin(), original.end(), data.begin());
    std::iota(oids.begin(), oids.end(), Oid{0});
    auto t0 = std::chrono::steady_clock::now();
    CrackSplit split = CrackInTwoLtTier(data.data(), oids.data(), n, pivot, tier);
    auto t1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(split.split);
    if (r > 0) {
      times.push_back(static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count()));
    }
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

struct TierRow {
  const char* type;
  double selectivity;
  SimdTier tier;
  double ns;
};

struct AggCompare {
  double pushdown_ns = 0.0;     ///< median AggregateRange wall time
  double materialize_ns = 0.0;  ///< median SelectRange(kView)+loop wall time
  double ratio = 0.0;           ///< materialize / pushdown (higher = better)
};

/// SUM over a warmed cracked int32 column: the span-kernel pushdown path
/// against the materialize-then-loop oracle (collect the oid view, gather
/// each value from the base column, accumulate). CI's bench-smoke lane
/// gates `agg_pushdown_vs_materialize_int32` from this at >= 2x.
AggCompare MeasureAggPushdown(size_t n, int reps) {
  AggCompare out;
  AdaptiveStoreOptions opts;  // defaults: crack strategy, standard policy
  AdaptiveStore store(opts);
  auto rel_or = Relation::Create("B", Schema({{"k", ValueType::kInt32}}));
  if (!rel_or.ok()) return out;
  std::shared_ptr<Relation> rel = *rel_or;
  Pcg32 rng(1203);
  for (size_t i = 0; i < n; ++i) {
    (void)rel->AppendRow({Value(static_cast<int32_t>(
        rng.NextInRange(0, static_cast<int64_t>(n))))});
  }
  if (!store.AddTable(rel).ok()) return out;

  // Warm the cracker: a few scattered cuts plus the measured range, so both
  // paths read an already-cracked column (the steady state the read path
  // optimizes).
  const RangeBounds range = RangeBounds::Closed(
      static_cast<int64_t>(n) / 4, 3 * static_cast<int64_t>(n) / 4);
  for (int q = 0; q < 8; ++q) {
    int64_t lo = rng.NextInRange(0, static_cast<int64_t>(n) - n / 10);
    (void)store.SelectRange("B", "k",
                            RangeBounds::Closed(lo, lo + static_cast<int64_t>(n) / 10));
  }
  if (!store.SelectRange("B", "k", range).ok()) return out;

  const int32_t* base =
      reinterpret_cast<const int32_t*>(rel->column(0)->raw_data());
  std::vector<double> push_times, mat_times;
  int64_t push_sum = 0, mat_sum = 0;
  for (int r = 0; r <= reps; ++r) {  // rep 0 is warm-up
    auto t0 = std::chrono::steady_clock::now();
    auto agg = store.AggregateRange("B", "k", range);
    auto t1 = std::chrono::steady_clock::now();
    if (!agg.ok()) return out;
    push_sum = agg->sum;
    auto t2 = std::chrono::steady_clock::now();
    auto qr = store.SelectRange("B", "k", range, Delivery::kView);
    if (!qr.ok()) return out;
    std::vector<Oid> oids = std::move(*qr).CollectOids();
    int64_t sum = 0;
    for (Oid oid : oids) sum += base[oid];
    auto t3 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(sum);
    mat_sum = sum;
    if (r > 0) {
      push_times.push_back(static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count()));
      mat_times.push_back(static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t3 - t2)
              .count()));
    }
  }
  if (push_sum != mat_sum) {
    std::fprintf(stderr, "agg pushdown mismatch: %lld vs %lld\n",
                 static_cast<long long>(push_sum),
                 static_cast<long long>(mat_sum));
    return out;
  }
  std::sort(push_times.begin(), push_times.end());
  std::sort(mat_times.begin(), mat_times.end());
  out.pushdown_ns = push_times[push_times.size() / 2];
  out.materialize_ns = mat_times[mat_times.size() / 2];
  if (out.pushdown_ns > 0.0) out.ratio = out.materialize_ns / out.pushdown_ns;
  return out;
}

int RunTierComparison(const std::string& path) {
  const size_t kRows = 1 << 20;
  const int kReps = 7;
  const double kSelectivities[] = {0.1, 0.5, 0.9};
  std::vector<SimdTier> tiers;
  for (SimdTier t : {SimdTier::kScalar, SimdTier::kPredicated, SimdTier::kAvx2,
                     SimdTier::kNeon}) {
    if (SimdTierSupported(t)) tiers.push_back(t);
  }

  std::vector<TierRow> rows;
  for (double sel : kSelectivities) {
    for (SimdTier t : tiers)
      rows.push_back({"int32", sel, t, MedianCrack2Ns<int32_t>(t, sel, kRows, kReps)});
    for (SimdTier t : tiers)
      rows.push_back({"int64", sel, t, MedianCrack2Ns<int64_t>(t, sel, kRows, kReps)});
    for (SimdTier t : tiers)
      rows.push_back({"double", sel, t, MedianCrack2Ns<double>(t, sel, kRows, kReps)});
  }

  // Headline ratio for CI: the dispatched tier vs scalar on int32 keys,
  // geometric-mean across selectivities.
  const SimdTier active = ActiveSimdTier();
  double log_sum = 0.0;
  int pairs = 0;
  for (double sel : kSelectivities) {
    double scalar_ns = 0.0, active_ns = 0.0;
    for (const TierRow& r : rows) {
      if (std::strcmp(r.type, "int32") != 0 || r.selectivity != sel) continue;
      if (r.tier == SimdTier::kScalar) scalar_ns = r.ns;
      if (r.tier == active) active_ns = r.ns;
    }
    if (scalar_ns > 0.0 && active_ns > 0.0) {
      log_sum += std::log(scalar_ns / active_ns);
      ++pairs;
    }
  }
  const double dispatched_vs_scalar =
      pairs > 0 ? std::exp(log_sum / pairs) : 1.0;

  const AggCompare agg = MeasureAggPushdown(kRows, kReps);

  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  out << "{\n";
  out << "  \"kernel\": \"crack_in_two_lt\",\n";
  out << "  \"rows\": " << kRows << ",\n";
  out << "  \"reps\": " << kReps << ",\n";
  out << "  \"active_tier\": \"" << SimdTierName(active) << "\",\n";
  out << "  \"dispatched_vs_scalar_int32\": " << dispatched_vs_scalar << ",\n";
  out << "  \"agg_pushdown_median_ns\": " << agg.pushdown_ns << ",\n";
  out << "  \"agg_materialize_median_ns\": " << agg.materialize_ns << ",\n";
  out << "  \"agg_pushdown_vs_materialize_int32\": " << agg.ratio << ",\n";
  out << "  \"results\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const TierRow& r = rows[i];
    out << "    {\"type\": \"" << r.type << "\", \"selectivity\": "
        << r.selectivity << ", \"tier\": \"" << SimdTierName(r.tier)
        << "\", \"median_ns\": " << r.ns << ", \"ns_per_row\": "
        << r.ns / static_cast<double>(kRows) << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  out.close();

  std::printf("active tier: %s\n", SimdTierName(active));
  std::printf("dispatched vs scalar (int32, geomean): %.2fx\n",
              dispatched_vs_scalar);
  std::printf("agg pushdown vs materialize (int32 SUM, warmed crack): %.2fx\n",
              agg.ratio);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace crackstore

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0)
      return crackstore::RunTierComparison(argv[i] + 7);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
