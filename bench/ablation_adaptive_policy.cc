// Copyright 2026 The CrackStore Authors
//
// Ablation: self-driving cracking. Sweeps every workload pattern against
// every crack policy — the three fixed disciplines (standard / stochastic /
// coarse), the kAuto workload detector that switches the effective policy
// at runtime, and kProgressive budgeted cracking — and reports per-query
// latency distributions (p50/p99/max), cumulative cost, and the largest
// single-query crack-write bill.
//
// The two claims this makes measurable (CI gates on the --json output):
//   1. kAuto never loses badly: its total cost stays within a small factor
//      of the best *fixed* policy on every workload, without knowing the
//      workload in advance.
//   2. kProgressive bounds the per-query reorganization: no query performs
//      more than progressive_budget x column-size crack writes (plus a
//      small absolute floor), turning first-touch crack spikes into a
//      smooth tail.
//
// Patterns:
//   random     — uniform bound draws (standard cracking's best case)
//   sequential — ascending adjacent ranges (the classic worst case)
//   skewed     — bounds clustered in a narrow hot region with restarts
//   shift      — periodic regime change: sequential sweeps inside a hot
//                region that relocates every k/4 queries (exercises the
//                detector's re-classification)
//
// Output: CSV summary rows to stdout; --json=BENCH_adaptive.json writes the
// machine-readable document CI uploads and gates on.

#include <algorithm>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/access_path.h"
#include "obs/metrics.h"
#include "util/rng.h"
#include "util/timer.h"

namespace crackstore {
namespace {

struct Pattern {
  const char* name;
  std::vector<RangeBounds> queries;
};

std::vector<Pattern> BuildPatterns(size_t n, size_t k, size_t width,
                                   uint64_t seed) {
  std::vector<Pattern> patterns;

  {
    Pattern random{"random", {}};
    Pcg32 rng(seed);
    for (size_t q = 0; q < k; ++q) {
      int64_t lo = rng.NextInRange(1, static_cast<int64_t>(n - width));
      random.queries.push_back(
          RangeBounds::HalfOpen(lo, lo + static_cast<int64_t>(width)));
    }
    patterns.push_back(std::move(random));
  }

  {
    Pattern sequential{"sequential", {}};
    int64_t step = static_cast<int64_t>(n / k);
    for (size_t q = 0; q < k; ++q) {
      int64_t lo = static_cast<int64_t>(q) * step + 1;
      sequential.queries.push_back(RangeBounds::HalfOpen(lo, lo + step));
    }
    patterns.push_back(std::move(sequential));
  }

  {
    Pattern skewed{"skewed", {}};
    Pcg32 rng(seed + 1);
    int64_t hot_lo = static_cast<int64_t>(n / 2);
    int64_t hot_width = static_cast<int64_t>(n / 20);
    for (size_t q = 0; q < k; ++q) {
      if (rng.NextBounded(10) == 0) {  // 10%: jump to a fresh region
        hot_lo = rng.NextInRange(1, static_cast<int64_t>(n - width));
      }
      int64_t lo = std::min(hot_lo + rng.NextInRange(0, hot_width),
                            static_cast<int64_t>(n - width));
      skewed.queries.push_back(
          RangeBounds::HalfOpen(lo, lo + static_cast<int64_t>(width)));
    }
    patterns.push_back(std::move(skewed));
  }

  {
    // Regime changes: an ascending sweep inside a hot region, the region
    // relocating every k/4 queries. The detector must re-classify across
    // the shift without thrashing.
    Pattern shift{"shift", {}};
    Pcg32 rng(seed + 2);
    size_t phase = std::max<size_t>(1, k / 4);
    int64_t region = 0;
    int64_t step = static_cast<int64_t>(std::max<size_t>(width, n / (4 * k)));
    for (size_t q = 0; q < k; ++q) {
      if (q % phase == 0) {
        region = rng.NextInRange(
            1, static_cast<int64_t>(n - phase * step - width));
      }
      int64_t lo = region + static_cast<int64_t>(q % phase) * step;
      shift.queries.push_back(
          RangeBounds::HalfOpen(lo, lo + static_cast<int64_t>(width)));
    }
    patterns.push_back(std::move(shift));
  }

  return patterns;
}

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

struct ComboResult {
  std::string pattern;
  std::string policy;
  double total_seconds = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  uint64_t total_cost = 0;     ///< cumulative tuples read + written
  uint64_t max_query_writes = 0;  ///< largest single-query kernel-write bill
  size_t pieces = 0;
  uint64_t switches = 0;
  size_t pending = 0;          ///< progressive frontier rows left at the end
  std::string effective;
  std::string detected;
};

int Run(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  uint64_t n = std::max<uint64_t>(flags.GetUint("n", 1000000), 1000);
  size_t k = std::clamp<size_t>(flags.GetUint("k", 256), 8, n / 2);
  size_t width =
      std::clamp<size_t>(flags.GetUint("width", n / 200), 1, n / 2);
  size_t min_piece = std::max<size_t>(flags.GetUint("min_piece", 1024), 1);
  double budget = flags.GetDouble("budget", 0.1);
  uint64_t seed = flags.GetUint("seed", 20120101);
  std::string json_path = flags.GetString("json", "");

  bench::Banner(
      "ablation_adaptive_policy",
      "self-driving cracking: runtime policy switching + budgeted cracks",
      StrFormat("n=%llu k=%zu width=%zu min_piece=%zu budget=%.3f (--n=, "
                "--k=, --width=, --min_piece=, --budget=, --json=)",
                static_cast<unsigned long long>(n), k, width, min_piece,
                budget));

  std::vector<int64_t> values(n);
  for (size_t i = 0; i < n; ++i) values[i] = static_cast<int64_t>(i + 1);
  Pcg32 shuffle_rng(seed);
  Shuffle(&values, &shuffle_rng);
  auto column = Bat::FromVector(values, "c0");

  const CrackPolicy policies[] = {
      CrackPolicy::kStandard, CrackPolicy::kStochastic, CrackPolicy::kCoarse,
      CrackPolicy::kAuto, CrackPolicy::kProgressive};
  constexpr size_t kNumPolicies = 5;

  std::vector<ComboResult> results;
  for (const Pattern& pattern : BuildPatterns(n, k, width, seed)) {
    std::vector<uint64_t> counts;  // per-query answers, policy-invariant
    for (size_t p = 0; p < kNumPolicies; ++p) {
      AccessPathConfig config;
      config.strategy = AccessStrategy::kCrack;
      config.policy.policy = policies[p];
      config.policy.min_piece_size = min_piece;
      config.policy.seed = seed;
      config.policy.progressive_budget = budget;
      auto path = CreateColumnAccessPath(column, config);
      CRACK_CHECK(path.ok());

      ComboResult r;
      r.pattern = pattern.name;
      r.policy = CrackPolicyName(policies[p]);
      std::vector<double> latencies;
      latencies.reserve(pattern.queries.size());
      for (size_t q = 0; q < pattern.queries.size(); ++q) {
        IoStats io;
        WallTimer timer;
        AccessSelection sel =
            (*path)->Select(pattern.queries[q], /*want_oids=*/false, &io);
        latencies.push_back(timer.ElapsedSeconds());
        // Every policy must deliver the same answer.
        if (p == 0) {
          counts.push_back(sel.count);
        } else {
          CRACK_CHECK(sel.count == counts[q]);
        }
        r.total_cost += io.tuples_read + io.tuples_written;
        r.max_query_writes = std::max(r.max_query_writes, io.kernel_writes);
      }
      for (double s : latencies) r.total_seconds += s;
      std::sort(latencies.begin(), latencies.end());
      r.p50_ms = Percentile(latencies, 0.50) * 1e3;
      r.p99_ms = Percentile(latencies, 0.99) * 1e3;
      r.max_ms = latencies.back() * 1e3;
      r.pieces = (*path)->NumPieces();
      PathPolicyStatus status = (*path)->PolicyStatus();
      r.switches = status.switches;
      r.pending = status.progressive_pending;
      r.effective = CrackPolicyName(status.effective);
      r.detected = WorkloadPatternName(status.pattern);
      results.push_back(std::move(r));
    }
  }

  TablePrinter out;
  out.SetHeader({"pattern", "policy", "total_s", "p50_ms", "p99_ms", "max_ms",
                 "total_cost", "max_query_writes", "pieces", "switches",
                 "pending", "effective", "detected"});
  for (const ComboResult& r : results) {
    out.AddRow({r.pattern, r.policy, StrFormat("%.4f", r.total_seconds),
                StrFormat("%.4f", r.p50_ms), StrFormat("%.4f", r.p99_ms),
                StrFormat("%.4f", r.max_ms),
                StrFormat("%llu", static_cast<unsigned long long>(
                                      r.total_cost)),
                StrFormat("%llu", static_cast<unsigned long long>(
                                      r.max_query_writes)),
                StrFormat("%zu", r.pieces),
                StrFormat("%llu", static_cast<unsigned long long>(r.switches)),
                StrFormat("%zu", r.pending), r.effective, r.detected});
  }
  out.PrintCsv(stdout);

  if (!json_path.empty()) {
    // The per-query write pool is max(floor, budget x touched-piece span)
    // shared across both bounds; a pass may overshoot by one swap. The
    // column itself bounds every piece span, so this is the hard per-query
    // ceiling the progressive gate checks.
    const uint64_t writes_limit =
        std::max<uint64_t>(256, static_cast<uint64_t>(
                                    budget * static_cast<double>(n))) +
        32;
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"ablation_adaptive_policy\",\n"
                 "  \"n\": %llu,\n  \"k\": %zu,\n  \"width\": %zu,\n"
                 "  \"budget\": %.6f,\n  \"progressive_writes_limit\": %llu,\n"
                 "  \"results\": [\n",
                 static_cast<unsigned long long>(n), k, width, budget,
                 static_cast<unsigned long long>(writes_limit));
    for (size_t i = 0; i < results.size(); ++i) {
      const ComboResult& r = results[i];
      std::fprintf(
          f,
          "    {\"pattern\": \"%s\", \"policy\": \"%s\", "
          "\"total_seconds\": %.6f, \"p50_ms\": %.4f, \"p99_ms\": %.4f, "
          "\"max_ms\": %.4f, \"total_cost\": %llu, "
          "\"max_query_writes\": %llu, \"pieces\": %zu, "
          "\"switches\": %llu, \"pending\": %zu, "
          "\"effective\": \"%s\", \"detected\": \"%s\"}%s\n",
          r.pattern.c_str(), r.policy.c_str(), r.total_seconds, r.p50_ms,
          r.p99_ms, r.max_ms,
          static_cast<unsigned long long>(r.total_cost),
          static_cast<unsigned long long>(r.max_query_writes), r.pieces,
          static_cast<unsigned long long>(r.switches), r.pending,
          r.effective.c_str(), r.detected.c_str(),
          i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"metrics\": %s\n}\n",
                 obs::MetricsRegistry::Global().RenderJson("").c_str());
    std::fclose(f);
    std::fprintf(stderr, "# wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace crackstore

int main(int argc, char** argv) { return crackstore::Run(argc, argv); }
