// Copyright 2026 The CrackStore Authors
//
// Figure 1 (a,b,c): "Response time for basic operations" — response time vs
// selectivity for (a) materialization into a temporary table, (b) sending
// the output to the front-end, (c) just counting the qualifying tuples.
//
// The paper ran MySQL/ISAM, PostgreSQL, SQLite and MonetDB out of the box;
// we run the three architectural classes built in this repository:
//   txn-row   — journaled slotted-page row store (PostgreSQL/MySQL class)
//   lite-row  — the same engine without the redo journal (SQLite-in-memory
//               / ISAM class)
//   column    — operator-at-a-time BAT engine (MonetDB class)
// Expected shape: (a) expensive and linear in the fragment size, dominated
// by transactional materialization; (b) cheaper; (c) cheapest and flat-ish;
// the column engine below the row engines throughout.
//
// Output: CSV rows (mode, engine, selectivity_pct, seconds, tuples,
// tuples_read, tuples_written, journal_writes, bytes_shipped).

#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "engine/colstore_engine.h"
#include "engine/rowstore_engine.h"
#include "workload/tapestry.h"

namespace crackstore {
namespace {

int Run(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  uint64_t n = flags.GetUint("n", 200000);
  uint64_t seed = flags.GetUint("seed", 20040901);

  bench::Banner("fig01_basic_ops", "Fig. 1 (a,b,c) of CIDR'05 cracking",
                StrFormat("n=%llu seed=%llu (--n=, --seed=)",
                          static_cast<unsigned long long>(n),
                          static_cast<unsigned long long>(seed)));

  TapestryOptions topts;
  topts.num_rows = n;
  topts.num_columns = 2;
  topts.seed = seed;
  auto rel = BuildTapestry("R", topts);
  if (!rel.ok()) {
    std::fprintf(stderr, "tapestry: %s\n", rel.status().ToString().c_str());
    return 1;
  }

  RowEngineOptions txn_opts;
  txn_opts.table_options.journaled = true;
  RowEngine txn_row(txn_opts);
  RowEngineOptions lite_opts;
  lite_opts.table_options.journaled = false;
  RowEngine lite_row(lite_opts);
  ColumnEngine column;
  if (!txn_row.ImportRelation(**rel).ok() ||
      !lite_row.ImportRelation(**rel).ok() ||
      !column.AddTable(*rel).ok()) {
    std::fprintf(stderr, "load failed\n");
    return 1;
  }

  const std::vector<double> selectivities{0.01, 0.02, 0.05, 0.1, 0.2,
                                          0.3,  0.4,  0.5,  0.6, 0.7,
                                          0.8,  0.9,  1.0};
  TablePrinter out;
  out.SetHeader({"mode", "engine", "selectivity_pct", "seconds", "tuples",
                 "tuples_read", "tuples_written", "journal_writes",
                 "bytes_shipped"});

  auto emit = [&out](const char* mode, const char* engine, double sel,
                     const RunResult& run) {
    out.AddRow({mode, engine, StrFormat("%.0f", sel * 100),
                StrFormat("%.6f", run.seconds),
                StrFormat("%llu", static_cast<unsigned long long>(run.count)),
                StrFormat("%llu",
                          static_cast<unsigned long long>(run.io.tuples_read)),
                StrFormat("%llu", static_cast<unsigned long long>(
                                      run.io.tuples_written)),
                StrFormat("%llu", static_cast<unsigned long long>(
                                      run.io.journal_writes)),
                StrFormat("%llu",
                          static_cast<unsigned long long>(run.bytes_shipped))});
  };

  for (DeliveryMode mode : {DeliveryMode::kMaterialize, DeliveryMode::kPrint,
                            DeliveryMode::kCount}) {
    for (double sel : selectivities) {
      RangeBounds range = RangeBounds::Closed(
          1, static_cast<int64_t>(sel * static_cast<double>(n)));
      auto a = txn_row.RunSelect("R", "c0", range, mode, "tmp_txn");
      auto b = lite_row.RunSelect("R", "c0", range, mode, "tmp_lite");
      auto c = column.RunSelect("R", "c0", range, mode, "tmp_col");
      if (!a.ok() || !b.ok() || !c.ok()) {
        std::fprintf(stderr, "query failed\n");
        return 1;
      }
      emit(DeliveryModeName(mode), "txn-row", sel, *a);
      emit(DeliveryModeName(mode), "lite-row", sel, *b);
      emit(DeliveryModeName(mode), "column", sel, *c);
    }
  }
  out.PrintCsv(stdout);
  return 0;
}

}  // namespace
}  // namespace crackstore

int main(int argc, char** argv) { return crackstore::Run(argc, argv); }
