// Copyright 2026 The CrackStore Authors
//
// Figure 9: "Linear join experiment" — response time of a k-way linear join
// (self-join chain unrolling the reachability relation of a random-pair
// table) for k up to 128. The paper's traditional engines exhaust their
// optimizers and fall back to nested loops (or break outright); MonetDB
// stays efficient. Here:
//   column      — BAT-at-a-time hash-join chain (MonetDB class): near-linear.
//   row-default — Volcano row engine with a realistic plan budget: hash
//                 joins while the optimizer copes (k <= ~8), nested-loop
//                 fallback with a statement deadline beyond that —
//                 "running out of optimizer resource space".
//   row-nl      — the same engine forced to nested loops from the start
//                 (the broken/timeouted runs the paper reports;
//                 truncated=1 rows are "the system gave up").
//
// Output: CSV rows (engine, joins, seconds, result_tuples, algo,
// plans_considered, truncated).

#include <string>
#include <vector>

#include "bench_common.h"
#include "engine/colstore_engine.h"
#include "engine/rowstore_engine.h"
#include "workload/tapestry.h"

namespace crackstore {
namespace {

int Run(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  uint64_t n_col = flags.GetUint("n", 100000);
  uint64_t n_row = flags.GetUint("n_row", 20000);
  double deadline = flags.GetDouble("deadline", 2.0);
  uint64_t seed = flags.GetUint("seed", 20040901);
  uint64_t max_joins = flags.GetUint("max_joins", 128);

  bench::Banner(
      "fig09_join_sequence", "Fig. 9 of CIDR'05 cracking",
      StrFormat("n=%llu n_row=%llu deadline=%.1fs max_joins=%llu",
                static_cast<unsigned long long>(n_col),
                static_cast<unsigned long long>(n_row), deadline,
                static_cast<unsigned long long>(max_joins)));

  // One random-pair table per engine; the chain self-joins it repeatedly
  // ("unrolling the reachability relation", §5.1).
  TapestryOptions topts;
  topts.num_rows = n_col;
  topts.seed = seed;
  auto col_rel = *BuildTapestry("R", topts);
  topts.num_rows = n_row;
  auto row_rel = *BuildTapestry("R", topts);

  ColumnEngine column;
  (void)column.AddTable(col_rel);

  RowEngineOptions default_opts;  // stock plan budget: exhausts near k=10
  default_opts.statement_deadline_seconds = deadline;
  RowEngine row_default(default_opts);
  (void)row_default.ImportRelation(*row_rel);

  RowEngineOptions nl_opts;
  nl_opts.optimizer.plan_budget = 1;  // always exhausted: nested loop
  nl_opts.statement_deadline_seconds = deadline;
  RowEngine row_nl(nl_opts);
  (void)row_nl.ImportRelation(*row_rel);

  TablePrinter out;
  out.SetHeader({"engine", "joins", "seconds", "result_tuples", "algo",
                 "plans_considered", "truncated"});
  auto emit = [&out](const char* engine, size_t joins, const RunResult& run) {
    out.AddRow({engine, StrFormat("%zu", joins),
                StrFormat("%.6f", run.seconds),
                StrFormat("%llu", static_cast<unsigned long long>(run.count)),
                JoinAlgoName(run.join_algo),
                StrFormat("%llu",
                          static_cast<unsigned long long>(run.plans_considered)),
                run.truncated ? "1" : "0"});
  };

  std::vector<size_t> chain_lengths;
  for (size_t k = 2; k <= max_joins; k *= 2) chain_lengths.push_back(k);

  bool row_nl_dead = false;
  bool row_default_dead = false;
  for (size_t k : chain_lengths) {
    std::vector<std::string> chain(k + 1, "R");  // k joins need k+1 operands

    auto col_run = column.RunChainJoin(chain, "c1", "c0");
    if (col_run.ok()) emit("column", k, *col_run);

    if (!row_default_dead) {
      auto run = row_default.RunChainJoin(chain, "c1", "c0");
      if (run.ok()) {
        emit("row-default", k, *run);
        row_default_dead = run->truncated;  // series ends once it times out
      }
    }
    if (!row_nl_dead) {
      auto run = row_nl.RunChainJoin(chain, "c1", "c0");
      if (run.ok()) {
        emit("row-nl", k, *run);
        row_nl_dead = run->truncated;
      }
    }
  }
  out.PrintCsv(stdout);
  return 0;
}

}  // namespace
}  // namespace crackstore

int main(int argc, char** argv) { return crackstore::Run(argc, argv); }
