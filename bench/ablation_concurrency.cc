// Copyright 2026 The CrackStore Authors
//
// Concurrency ablation: aggregate SELECT throughput of the AdaptiveStore at
// 1..max_threads reader threads, per access strategy, on a *disjoint-range*
// workload (reader k draws subranges from its own value stripe, so after
// the first few queries every thread cracks and reads its own pieces — the
// workload the per-piece range locks are built for). A second phase mixes
// writer threads (INSERT + DELETE through the delta layer) under the
// readers to exercise the shared-latch DML protocol.
//
// Output: CSV rows (phase, strategy, threads, queries, seconds, qps,
// speedup_vs_1) to stdout; --json=PATH additionally writes the series as a
// JSON document (the BENCH_*.json trajectory CI uploads as an artifact).

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/adaptive_store.h"
#include "core/task_pool.h"
#include "util/rng.h"
#include "util/timer.h"
#include "workload/tapestry.h"

namespace crackstore {
namespace {

struct Row {
  std::string phase;
  std::string strategy;
  size_t threads;
  uint64_t queries;
  double seconds;
  double qps;
  double speedup;
};

struct RunConfig {
  uint64_t n;
  uint64_t queries_per_thread;
  uint64_t seed;
  size_t writers;
};

AccessStrategy StrategyFromName(const std::string& name) {
  if (name == "scan") return AccessStrategy::kScan;
  if (name == "sort") return AccessStrategy::kSort;
  return AccessStrategy::kCrack;
}

std::vector<std::string> SplitCsvList(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t comma = s.find(',', start);
    if (comma == std::string::npos) comma = s.size();
    if (comma > start) out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

/// One timed run: `threads` readers over disjoint value stripes, plus
/// `writers` writer threads when mixed. Returns reader wall-clock seconds.
double RunPhase(AdaptiveStore* store, const RunConfig& cfg, size_t threads,
                size_t writers, uint64_t* queries_done) {
  const int64_t domain = static_cast<int64_t>(cfg.n);
  std::atomic<bool> go{false};
  std::atomic<bool> stop_writers{false};
  std::atomic<uint64_t> done{0};

  std::vector<std::thread> pool;
  pool.reserve(threads + writers);
  for (size_t k = 0; k < threads; ++k) {
    pool.emplace_back([&, k] {
      // Reader k owns the value stripe [lo, hi) and draws narrow subranges
      // from it — disjoint stripes mean disjoint pieces once cracked.
      int64_t stripe = domain / static_cast<int64_t>(threads);
      int64_t lo = 1 + static_cast<int64_t>(k) * stripe;
      int64_t hi = k + 1 == threads ? domain + 1 : lo + stripe;
      // Fixed query width across thread counts, so the per-query work is
      // comparable and the qps ratio measures parallelism, not workload
      // drift.
      int64_t width = std::max<int64_t>(1, domain / 512);
      Pcg32 rng(cfg.seed + 101 * k);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (uint64_t q = 0; q < cfg.queries_per_thread; ++q) {
        int64_t a = rng.NextInRange(lo, hi - 1);
        int64_t b = std::min<int64_t>(hi - 1, a + width);
        auto r = store->SelectRange("R", "c0", RangeBounds::Closed(a, b),
                                    Delivery::kCount);
        if (!r.ok()) {
          std::fprintf(stderr, "reader: %s\n",
                       r.status().ToString().c_str());
          return;
        }
        done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (size_t w = 0; w < writers; ++w) {
    pool.emplace_back([&, w] {
      Pcg32 rng(cfg.seed + 977 * (w + 1));
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      std::vector<Oid> mine;
      while (!stop_writers.load(std::memory_order_acquire)) {
        auto ins = store->Insert(
            "R", {Value(rng.NextInRange(1, domain)),
                  Value(rng.NextInRange(1, domain))});
        if (ins.ok() && ins->inserted_oid != kInvalidOid) {
          mine.push_back(ins->inserted_oid);
        }
        if (mine.size() > 64) {
          (void)store->DeleteOids("R", {mine.front()});
          mine.erase(mine.begin());
        }
      }
    });
  }

  WallTimer timer;
  go.store(true, std::memory_order_release);
  for (size_t k = 0; k < threads; ++k) pool[k].join();
  double seconds = timer.ElapsedSeconds();
  stop_writers.store(true, std::memory_order_release);
  for (size_t k = threads; k < pool.size(); ++k) pool[k].join();
  *queries_done = done.load(std::memory_order_relaxed);
  return seconds;
}

int Run(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  RunConfig cfg;
  cfg.n = flags.GetUint("n", 1000000);
  cfg.queries_per_thread = flags.GetUint("queries", 1000);
  cfg.seed = flags.GetUint("seed", 20040901);
  cfg.writers = flags.GetUint("writers", 2);
  size_t max_threads = flags.GetUint("max_threads", 16);
  std::string strategies = flags.GetString("strategies", "crack,scan");
  std::string json_path = flags.GetString("json", "");

  bench::Banner("ablation_concurrency",
                "ROADMAP: per-piece parallel cracking / concurrent writers",
                StrFormat("n=%llu queries=%llu max_threads=%zu writers=%zu "
                          "(--n= --queries= --max_threads= --writers= "
                          "--strategies= --seed= --json=)",
                          static_cast<unsigned long long>(cfg.n),
                          static_cast<unsigned long long>(
                              cfg.queries_per_thread),
                          max_threads, cfg.writers));

  // Reader threads carry the parallelism here; keep the intra-query fan-out
  // pool out of the measurement.
  TaskPool::SetGlobalThreads(0);

  std::vector<size_t> thread_counts;
  for (size_t t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);

  std::vector<Row> rows;
  for (const std::string& strategy_name : SplitCsvList(strategies)) {
    AccessStrategy strategy = StrategyFromName(strategy_name);
    double qps_at_1 = 0.0;
    for (size_t t : thread_counts) {
      for (int mixed = 0; mixed <= (strategy == AccessStrategy::kCrack &&
                                    cfg.writers > 0
                                        ? 1
                                        : 0);
           ++mixed) {
        AdaptiveStoreOptions opts;
        opts.strategy = strategy;
        opts.concurrent = true;
        opts.track_lineage = false;
        auto store_or = bench::OpenStore(flags, opts);
        CRACK_CHECK(store_or.ok());
        AdaptiveStore& store = **store_or;
        TapestryOptions topts;
        topts.num_rows = cfg.n;
        topts.num_columns = 2;
        topts.seed = cfg.seed;
        auto rel = BuildTapestry("R", topts);
        if (!rel.ok()) {
          std::fprintf(stderr, "tapestry: %s\n",
                       rel.status().ToString().c_str());
          return 1;
        }
        (void)store.AddTable(*rel);
        // Warm-up: pay the accelerator build outside the timed section.
        (void)store.SelectRange("R", "c0",
                                RangeBounds::Closed(1, static_cast<int64_t>(
                                                           cfg.n)),
                                Delivery::kCount);

        uint64_t queries = 0;
        double seconds = RunPhase(&store, cfg, t,
                                  mixed == 1 ? cfg.writers : 0, &queries);
        Row row;
        row.phase = mixed == 1 ? "mixed" : "read-only";
        row.strategy = strategy_name;
        row.threads = t;
        row.queries = queries;
        row.seconds = seconds;
        row.qps = seconds > 0 ? static_cast<double>(queries) / seconds : 0;
        if (mixed == 0 && t == 1) qps_at_1 = row.qps;
        row.speedup = (qps_at_1 > 0 && mixed == 0) ? row.qps / qps_at_1 : 0;
        rows.push_back(row);
        std::fprintf(stderr, "# %s %s t=%zu  %.0f q/s (%.2fx)\n",
                     row.strategy.c_str(), row.phase.c_str(), t, row.qps,
                     row.speedup);
      }
    }
  }

  TablePrinter out;
  out.SetHeader({"phase", "strategy", "threads", "queries", "seconds", "qps",
                 "speedup_vs_1"});
  for (const Row& r : rows) {
    out.AddRow({r.phase, r.strategy, StrFormat("%zu", r.threads),
                StrFormat("%llu", static_cast<unsigned long long>(r.queries)),
                StrFormat("%.4f", r.seconds), StrFormat("%.1f", r.qps),
                StrFormat("%.3f", r.speedup)});
  }
  out.PrintCsv(stdout);

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"ablation_concurrency\",\n"
                 "  \"n\": %llu,\n  \"queries_per_thread\": %llu,\n"
                 "  \"results\": [\n",
                 static_cast<unsigned long long>(cfg.n),
                 static_cast<unsigned long long>(cfg.queries_per_thread));
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(
          f,
          "    {\"phase\": \"%s\", \"strategy\": \"%s\", \"threads\": %zu, "
          "\"queries\": %llu, \"seconds\": %.6f, \"qps\": %.1f, "
          "\"speedup_vs_1\": %.4f}%s\n",
          r.phase.c_str(), r.strategy.c_str(), r.threads,
          static_cast<unsigned long long>(r.queries), r.seconds, r.qps,
          r.speedup, i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::fprintf(stderr, "# wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace crackstore

int main(int argc, char** argv) { return crackstore::Run(argc, argv); }
