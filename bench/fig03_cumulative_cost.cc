// Copyright 2026 The CrackStore Authors
//
// Figure 3: "Cummulative cost of cracking versus scans" — accumulated
// read+write cost of cracking relative to the scan baseline (=1.0), for the
// same selectivity sweep as Fig. 2. The curves start at 2.0 (first query
// reads and rewrites everything), cross the 1.0 baseline after a handful of
// queries, and settle near the pure answering cost.
//
// Also prints the closed-form upfront-sort alternative of §2.2 to stderr
// ("N log N writes, recovered after log N queries").
//
// Output: CSV rows (step, then one cumulative-ratio column per selectivity).

#include <string>
#include <vector>

#include "bench_common.h"
#include "sim/crack_sim.h"

namespace crackstore {
namespace {

int Run(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  CrackSimOptions base;
  base.num_granules = flags.GetUint("n", 100000);
  base.steps = flags.GetUint("steps", 20);
  base.seed = flags.GetUint("seed", 20040901);
  base.repetitions = flags.GetUint("reps", 10);

  bench::Banner("fig03_cumulative_cost", "Fig. 3 of CIDR'05 cracking",
                StrFormat("n=%llu steps=%zu reps=%llu",
                          static_cast<unsigned long long>(base.num_granules),
                          base.steps,
                          static_cast<unsigned long long>(base.repetitions)));

  const std::vector<double> selectivities{0.80, 0.60, 0.40, 0.20,
                                          0.10, 0.05, 0.01};
  std::vector<CrackSimResult> results;
  std::vector<std::string> header{"step"};
  for (double sigma : selectivities) {
    CrackSimOptions opts = base;
    opts.selectivity = sigma;
    auto result = RunCrackSimulation(opts);
    if (!result.ok()) {
      std::fprintf(stderr, "sim: %s\n", result.status().ToString().c_str());
      return 1;
    }
    results.push_back(std::move(*result));
    header.push_back(StrFormat("cumulative_%.0fpct", sigma * 100));
  }

  std::fprintf(stderr,
               "# sort alternative: %llu upfront writes, recovered after "
               "~%.0f queries (only when all queries filter the same "
               "attribute)\n",
               static_cast<unsigned long long>(
                   results.front().sort_upfront_writes),
               results.front().sort_breakeven_queries);

  TablePrinter out;
  out.SetHeader(header);
  for (size_t step = 0; step < base.steps; ++step) {
    std::vector<std::string> row{StrFormat("%zu", step + 1)};
    for (const CrackSimResult& r : results) {
      row.push_back(StrFormat("%.4f", r.steps[step].cumulative_overhead));
    }
    out.AddRow(std::move(row));
  }
  out.PrintCsv(stdout);

  // Break-even summary (the "handful of queries" claim).
  for (size_t i = 0; i < selectivities.size(); ++i) {
    size_t break_even = 0;
    for (const CrackSimStep& s : results[i].steps) {
      if (s.cumulative_overhead < 1.0) {
        break_even = s.step;
        break;
      }
    }
    std::fprintf(stderr, "# sigma=%.0f%%: break-even at step %zu\n",
                 selectivities[i] * 100, break_even);
  }
  return 0;
}

}  // namespace
}  // namespace crackstore

int main(int argc, char** argv) { return crackstore::Run(argc, argv); }
