// Copyright 2026 The CrackStore Authors
//
// §5.1 "Crackers in an SQL Environment": the cost anatomy of cracking a
// table at the SQL level, treating the engine as a black box. Reproduces
// the narrative experiment: a 5%-selectivity query costs X to answer,
// storing the answer costs more, and *cracking* (two SELECT INTO scans plus
// catalog work) costs a multiple of that — an investment that is hard to
// recover at this level, while sorting the column costs even more. Then
// shows the post-crack payoff: partition-pruned selects.
//
// Output: CSV rows (operation, seconds, tuples_read, tuples_written,
// journal_writes, catalog_ops, result_tuples).

#include <string>

#include "bench_common.h"
#include "core/sorted_column.h"
#include "engine/rowstore_engine.h"
#include "util/timer.h"
#include "workload/tapestry.h"

namespace crackstore {
namespace {

int Run(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  uint64_t n = flags.GetUint("n", 200000);
  double sigma = flags.GetDouble("sigma", 0.05);
  uint64_t seed = flags.GetUint("seed", 20040901);

  bench::Banner("sql_level_cracking", "§5.1 of CIDR'05 cracking",
                StrFormat("n=%llu sigma=%.2f",
                          static_cast<unsigned long long>(n), sigma));

  TapestryOptions topts;
  topts.num_rows = n;
  topts.seed = seed;
  auto rel = *BuildTapestry("R", topts);

  RowEngine engine;
  CRACK_CHECK(engine.ImportRelation(*rel).ok());

  int64_t hi = static_cast<int64_t>(sigma * static_cast<double>(n));
  RangeBounds pred = RangeBounds::AtMost(hi);

  TablePrinter out;
  out.SetHeader({"operation", "seconds", "tuples_read", "tuples_written",
                 "journal_writes", "catalog_ops", "result_tuples"});
  auto emit = [&out](const std::string& op, const RunResult& run) {
    out.AddRow({op, StrFormat("%.6f", run.seconds),
                StrFormat("%llu",
                          static_cast<unsigned long long>(run.io.tuples_read)),
                StrFormat("%llu", static_cast<unsigned long long>(
                                      run.io.tuples_written)),
                StrFormat("%llu", static_cast<unsigned long long>(
                                      run.io.journal_writes)),
                StrFormat("%llu",
                          static_cast<unsigned long long>(run.io.catalog_ops)),
                StrFormat("%llu",
                          static_cast<unsigned long long>(run.count))});
  };

  // 1) Deliver the answer to the GUI (the cheap case the narrative starts
  //    from).
  emit("select_print", *engine.RunSelect("R", "c0", pred,
                                         DeliveryMode::kPrint));
  // 2) Store the same answer in a temporary table (adds transactional
  //    materialization).
  emit("select_into", *engine.RunSelect("R", "c0", pred,
                                        DeliveryMode::kMaterialize, "tmp"));
  // 3) Crack the table at the SQL level: two scans, two materializations,
  //    catalog registration — "the investment ... is hard to turn into a
  //    profit".
  emit("crack_table_sql", *engine.CrackTableSql("R", "c0", pred, "Rp"));
  // 4) The payoff: the same query against the partitioned table prunes to
  //    the in-fragment.
  emit("select_partitioned",
       *engine.RunSelectPartitioned("Rp", "c0", pred, DeliveryMode::kPrint));
  // 5) A narrower follow-up query also prunes.
  emit("followup_partitioned",
       *engine.RunSelectPartitioned("Rp", "c0",
                                    RangeBounds::Closed(1, hi / 2),
                                    DeliveryMode::kPrint));
  // 6) The sorting alternative on the raw column ("sorting the table on
  //    this attribute alone took about 250 seconds" — relatively, the most
  //    expensive single operation here as well).
  {
    RunResult sort_run;
    WallTimer timer;
    IoStats stats;
    SortedColumn<int64_t> sorted(*rel->column("c0"), &stats);
    sort_run.seconds = timer.ElapsedSeconds();
    sort_run.io = stats;
    sort_run.count = sorted.size();
    emit("sort_column", sort_run);
  }
  // 7) Aggregation below the SQL level: SUM over the same predicate against
  //    a warmed cracked column, first materialize-then-loop (collect the
  //    oid view, gather every value), then the span-kernel pushdown that
  //    never builds the oid list. The gap is the result-materialization tax
  //    §5.1 charges every SQL-level answer.
  {
    AdaptiveStoreOptions sopts;
    auto store = *bench::OpenStore(flags, sopts);
    auto agg_rel = *BuildTapestry("R", topts);
    CRACK_CHECK(store->AddTable(agg_rel).ok());
    CRACK_CHECK(store->SelectRange("R", "c0", pred).ok());  // warm the crack

    const int64_t* base =
        reinterpret_cast<const int64_t*>((*agg_rel->column("c0"))->raw_data());
    int64_t mat_sum = 0;
    {
      RunResult mat;
      WallTimer timer;
      auto qr = *store->SelectRange("R", "c0", pred, Delivery::kView);
      for (Oid oid : qr.CollectOids()) mat_sum += base[oid];
      mat.seconds = timer.ElapsedSeconds();
      mat.io = qr.io;
      mat.count = qr.count;
      emit("agg_materialize", mat);
    }
    {
      RunResult push;
      WallTimer timer;
      auto agg = store->AggregateRange("R", "c0", pred);
      push.seconds = timer.ElapsedSeconds();
      if (agg.ok()) {
        CRACK_CHECK(agg->sum == mat_sum);
        push.io = agg->io;
        push.count = agg->rows;
      }
      emit("agg_pushdown", push);
    }
  }

  out.PrintCsv(stdout);
  return 0;
}

}  // namespace
}  // namespace crackstore

int main(int argc, char** argv) { return crackstore::Run(argc, argv); }
