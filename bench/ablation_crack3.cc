// Copyright 2026 The CrackStore Authors
//
// Ablation (§3.1): the paper proposes a *three-piece* Ξ cracker for
// double-sided ranges so the consecutive-ranges property is restored in a
// single pass. This binary compares that against the naive alternative of
// two successive crack-in-two passes, over a strolling-style random range
// workload: same answers, different write/read volume and wall-clock.
//
// Output: CSV rows (variant, queries, seconds_total, tuples_read,
// tuples_written, cracks, pieces).

#include <memory>
#include <string>

#include "bench_common.h"
#include "core/cracker_index.h"
#include "util/rng.h"
#include "util/timer.h"
#include "workload/tapestry.h"

namespace crackstore {
namespace {

struct VariantResult {
  double seconds = 0;
  IoStats io;
  size_t pieces = 0;
};

VariantResult RunVariant(const std::shared_ptr<Bat>& column, bool crack3,
                         size_t queries, double sigma, uint64_t seed) {
  CrackerIndexOptions opts;
  opts.use_crack_in_three = crack3;
  VariantResult result;
  WallTimer timer;
  CrackerIndex<int64_t> index(column, &result.io, opts);
  Pcg32 rng(seed);
  int64_t n = static_cast<int64_t>(column->size());
  int64_t width = std::max<int64_t>(
      1, static_cast<int64_t>(sigma * static_cast<double>(n)));
  for (size_t q = 0; q < queries; ++q) {
    int64_t lo = rng.NextInRange(1, std::max<int64_t>(1, n - width + 1));
    index.Select(lo, true, lo + width - 1, true, &result.io);
  }
  result.seconds = timer.ElapsedSeconds();
  result.pieces = index.num_pieces();
  return result;
}

int Run(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  uint64_t n = flags.GetUint("n", 1000000);
  size_t queries = flags.GetUint("queries", 128);
  double sigma = flags.GetDouble("sigma", 0.05);
  uint64_t seed = flags.GetUint("seed", 20040901);

  bench::Banner("ablation_crack3",
                "§3.1 design choice (three-piece vs two-piece Ξ)",
                StrFormat("n=%llu queries=%zu sigma=%.2f",
                          static_cast<unsigned long long>(n), queries,
                          sigma));

  auto column = BuildPermutationColumn(n, seed, "R.c0");

  TablePrinter out;
  out.SetHeader({"variant", "queries", "seconds_total", "tuples_read",
                 "tuples_written", "cracks", "pieces"});
  for (bool crack3 : {true, false}) {
    VariantResult r = RunVariant(column, crack3, queries, sigma, seed ^ 1);
    out.AddRow({crack3 ? "crack-in-three" : "two-crack-in-two",
                StrFormat("%zu", queries), StrFormat("%.6f", r.seconds),
                StrFormat("%llu",
                          static_cast<unsigned long long>(r.io.tuples_read)),
                StrFormat("%llu",
                          static_cast<unsigned long long>(r.io.tuples_written)),
                StrFormat("%llu",
                          static_cast<unsigned long long>(r.io.cracks)),
                StrFormat("%zu", r.pieces)});
  }
  out.PrintCsv(stdout);
  return 0;
}

}  // namespace
}  // namespace crackstore

int main(int argc, char** argv) { return crackstore::Run(argc, argv); }
