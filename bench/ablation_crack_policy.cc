// Copyright 2026 The CrackStore Authors
//
// Ablation: cracking-policy robustness across workload patterns. Standard
// cracking (pivot = query bound) is optimal on random workloads but
// degenerates to near-full scans under sequential or skewed bound
// sequences; the stochastic policy (DDC-style random auxiliary pivots)
// stays robust, and the coarse policy (DD1C-style stop-below-threshold)
// caps the piece-table administration. This sweep makes the claim
// measurable, per-pattern and per-policy.
//
// Patterns:
//   random     — uniform bound draws (standard cracking's best case)
//   sequential — ascending adjacent ranges (the classic worst case)
//   skewed     — bounds clustered in a narrow hot region, occasionally
//                jumping outside (zoom-in with restarts)
//
// Since PR 3, the sweep also covers the dictionary-encoded string paths:
// two extra "patterns" (str_low / str_high) run the same per-policy
// comparison over a string column drawn from a low- and a high-cardinality
// dictionary, with random string-range queries translated through the
// order-preserving encoding (the code column cracks like an integer, so the
// policy claims must carry over; this makes it measurable).
//
// Output: CSV rows (pattern, step, then per policy: cumulative tuples
// touched and cumulative seconds, plus final piece counts on stderr).
//
// This sweep covers the three *fixed* disciplines only; the self-driving
// policies (auto, progressive) have their own harness with latency
// distributions and CI gates in ablation_adaptive_policy.

#include <algorithm>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/access_path.h"
#include "util/rng.h"
#include "util/timer.h"

namespace crackstore {
namespace {

struct Pattern {
  const char* name;
  std::vector<RangeBounds> queries;
};

std::vector<Pattern> BuildPatterns(size_t n, size_t k, size_t width,
                                   uint64_t seed) {
  std::vector<Pattern> patterns;

  {
    Pattern random{"random", {}};
    Pcg32 rng(seed);
    for (size_t q = 0; q < k; ++q) {
      int64_t lo = rng.NextInRange(1, static_cast<int64_t>(n - width));
      random.queries.push_back(
          RangeBounds::HalfOpen(lo, lo + static_cast<int64_t>(width)));
    }
    patterns.push_back(std::move(random));
  }

  {
    Pattern sequential{"sequential", {}};
    int64_t step = static_cast<int64_t>(n / k);
    for (size_t q = 0; q < k; ++q) {
      int64_t lo = static_cast<int64_t>(q) * step + 1;
      sequential.queries.push_back(RangeBounds::HalfOpen(lo, lo + step));
    }
    patterns.push_back(std::move(sequential));
  }

  {
    Pattern skewed{"skewed", {}};
    Pcg32 rng(seed + 1);
    int64_t hot_lo = static_cast<int64_t>(n / 2);
    int64_t hot_width = static_cast<int64_t>(n / 20);
    for (size_t q = 0; q < k; ++q) {
      if (rng.NextBounded(10) == 0) {  // 10%: jump to a fresh region
        hot_lo = rng.NextInRange(1, static_cast<int64_t>(n - width));
      }
      int64_t lo = std::min(hot_lo + rng.NextInRange(0, hot_width),
                            static_cast<int64_t>(n - width));
      skewed.queries.push_back(
          RangeBounds::HalfOpen(lo, lo + static_cast<int64_t>(width)));
    }
    patterns.push_back(std::move(skewed));
  }

  return patterns;
}

int Run(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  uint64_t n = std::max<uint64_t>(flags.GetUint("n", 1000000), 1000);
  size_t k = std::clamp<size_t>(flags.GetUint("k", 128), 1, n / 2);
  size_t width =
      std::clamp<size_t>(flags.GetUint("width", n / 200), 1, n / 2);
  size_t min_piece = std::max<size_t>(flags.GetUint("min_piece", 1024), 1);
  uint64_t seed = flags.GetUint("seed", 20120101);

  bench::Banner(
      "ablation_crack_policy",
      "Halim et al. 2012 (stochastic cracking) over CIDR'05 cracking",
      StrFormat("n=%llu k=%zu width=%zu min_piece=%zu (--n=, --k=, "
                "--width=, --min_piece=)",
                static_cast<unsigned long long>(n), k, width, min_piece));

  std::vector<int64_t> values(n);
  for (size_t i = 0; i < n; ++i) values[i] = static_cast<int64_t>(i + 1);
  Pcg32 shuffle_rng(seed);
  Shuffle(&values, &shuffle_rng);
  auto column = Bat::FromVector(values, "c0");

  const CrackPolicy policies[] = {CrackPolicy::kStandard,
                                  CrackPolicy::kStochastic,
                                  CrackPolicy::kCoarse};

  TablePrinter out;
  out.SetHeader({"pattern", "step", "standard_cost", "stochastic_cost",
                 "coarse_cost", "standard_s", "stochastic_s", "coarse_s"});

  for (const Pattern& pattern : BuildPatterns(n, k, width, seed)) {
    // cumulative[policy][step]
    std::vector<std::vector<uint64_t>> cost(3);
    std::vector<std::vector<double>> secs(3);
    std::vector<size_t> pieces(3);
    std::vector<uint64_t> counts;  // per-query answers, policy-invariant
    for (size_t p = 0; p < 3; ++p) {
      AccessPathConfig config;
      config.strategy = AccessStrategy::kCrack;
      config.policy.policy = policies[p];
      config.policy.min_piece_size = min_piece;
      config.policy.seed = seed;
      auto path = CreateColumnAccessPath(column, config);
      CRACK_CHECK(path.ok());
      uint64_t total_cost = 0;
      double total_secs = 0;
      for (size_t q = 0; q < pattern.queries.size(); ++q) {
        IoStats io;
        WallTimer timer;
        AccessSelection sel =
            (*path)->Select(pattern.queries[q], /*want_oids=*/false, &io);
        total_secs += timer.ElapsedSeconds();
        // Every policy must deliver the same answer.
        if (p == 0) {
          counts.push_back(sel.count);
        } else {
          CRACK_CHECK(sel.count == counts[q]);
        }
        total_cost += io.tuples_read + io.tuples_written;
        cost[p].push_back(total_cost);
        secs[p].push_back(total_secs);
      }
      pieces[p] = (*path)->NumPieces();
    }
    for (size_t step = 0; step < k; ++step) {
      out.AddRow({pattern.name, StrFormat("%zu", step + 1),
                  StrFormat("%llu",
                            static_cast<unsigned long long>(cost[0][step])),
                  StrFormat("%llu",
                            static_cast<unsigned long long>(cost[1][step])),
                  StrFormat("%llu",
                            static_cast<unsigned long long>(cost[2][step])),
                  StrFormat("%.6f", secs[0][step]),
                  StrFormat("%.6f", secs[1][step]),
                  StrFormat("%.6f", secs[2][step])});
    }
    std::fprintf(stderr, "# %s: final pieces standard=%zu stochastic=%zu "
                         "coarse=%zu\n",
                 pattern.name, pieces[0], pieces[1], pieces[2]);
  }

  // --- dictionary-encoded string sweep -------------------------------------
  // Same policy comparison over string columns: every value is one of
  // `cardinality` distinct keys (zero-padded, so bytewise order equals key
  // order) and every query is a random closed string range. The low
  // cardinality regime stresses duplicate-heavy pieces, the high one the
  // dictionary itself.
  struct StringSweep {
    const char* name;
    size_t cardinality;
  };
  const StringSweep sweeps[] = {{"str_low", 64},
                                {"str_high", std::min<size_t>(n / 4, 65536)}};
  for (const StringSweep& sweep : sweeps) {
    std::vector<std::string> keys(sweep.cardinality);
    for (size_t i = 0; i < keys.size(); ++i) {
      keys[i] = StrFormat("k%08zu", i);
    }
    Pcg32 fill_rng(seed + 7);
    auto column = Bat::Create(ValueType::kString, "s0");
    for (size_t i = 0; i < n; ++i) {
      column->AppendString(
          keys[fill_rng.NextBounded(static_cast<uint32_t>(keys.size()))]);
    }
    size_t key_width = std::max<size_t>(1, keys.size() / 20);
    Pcg32 query_rng(seed + 8);
    std::vector<TypedRange> queries;
    queries.reserve(k);
    for (size_t q = 0; q < k; ++q) {
      size_t lo = static_cast<size_t>(query_rng.NextBounded(
          static_cast<uint32_t>(keys.size() - key_width)));
      queries.push_back(TypedRange::Closed(Value(keys[lo]),
                                           Value(keys[lo + key_width])));
    }

    std::vector<std::vector<uint64_t>> cost(3);
    std::vector<std::vector<double>> secs(3);
    std::vector<size_t> pieces(3);
    std::vector<uint64_t> counts;
    for (size_t p = 0; p < 3; ++p) {
      AccessPathConfig config;
      config.strategy = AccessStrategy::kCrack;
      config.policy.policy = policies[p];
      config.policy.min_piece_size = min_piece;
      config.policy.seed = seed;
      auto path = CreateColumnAccessPath(column, config);
      CRACK_CHECK(path.ok());
      uint64_t total_cost = 0;
      double total_secs = 0;
      for (size_t q = 0; q < queries.size(); ++q) {
        IoStats io;
        WallTimer timer;
        auto sel = (*path)->SelectTyped(queries[q], /*want_oids=*/false, &io);
        CRACK_CHECK(sel.ok());
        total_secs += timer.ElapsedSeconds();
        if (p == 0) {
          counts.push_back(sel->count);
        } else {
          CRACK_CHECK(sel->count == counts[q]);
        }
        total_cost += io.tuples_read + io.tuples_written;
        cost[p].push_back(total_cost);
        secs[p].push_back(total_secs);
      }
      pieces[p] = (*path)->NumPieces();
    }
    for (size_t step = 0; step < k; ++step) {
      out.AddRow({sweep.name, StrFormat("%zu", step + 1),
                  StrFormat("%llu",
                            static_cast<unsigned long long>(cost[0][step])),
                  StrFormat("%llu",
                            static_cast<unsigned long long>(cost[1][step])),
                  StrFormat("%llu",
                            static_cast<unsigned long long>(cost[2][step])),
                  StrFormat("%.6f", secs[0][step]),
                  StrFormat("%.6f", secs[1][step]),
                  StrFormat("%.6f", secs[2][step])});
    }
    std::fprintf(stderr,
                 "# %s (cardinality %zu): final pieces standard=%zu "
                 "stochastic=%zu coarse=%zu\n",
                 sweep.name, sweep.cardinality, pieces[0], pieces[1],
                 pieces[2]);
  }

  out.PrintCsv(stdout);
  return 0;
}

}  // namespace
}  // namespace crackstore

int main(int argc, char** argv) { return crackstore::Run(argc, argv); }
