// Copyright 2026 The CrackStore Authors
//
// Shared helpers for the figure-reproduction binaries: flag parsing and the
// CSV emission conventions (series to stdout, diagnostics to stderr).

#ifndef CRACKSTORE_BENCH_BENCH_COMMON_H_
#define CRACKSTORE_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/adaptive_store.h"
#include "util/result.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace crackstore {
namespace bench {

/// Tiny flag registry: --name=value pairs with typed lookups.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  uint64_t GetUint(const std::string& name, uint64_t def) const {
    std::string v;
    if (!Lookup(name, &v)) return def;
    return std::strtoull(v.c_str(), nullptr, 10);
  }

  double GetDouble(const std::string& name, double def) const {
    std::string v;
    if (!Lookup(name, &v)) return def;
    return std::strtod(v.c_str(), nullptr);
  }

  std::string GetString(const std::string& name,
                        const std::string& def) const {
    std::string v;
    return Lookup(name, &v) ? v : def;
  }

  bool GetBool(const std::string& name, bool def) const {
    std::string v;
    if (!Lookup(name, &v)) return def;
    return v == "1" || v == "true" || v == "yes";
  }

 private:
  bool Lookup(const std::string& name, std::string* value) const {
    for (const std::string& arg : args_) {
      if (ParseFlag(arg, name, value)) return true;
    }
    return false;
  }

  std::vector<std::string> args_;
};

/// Opens the bench's store through the lifecycle API. `--db=DIR` makes it
/// durable (commit log + checkpoints under DIR; fsync policy from
/// `--fsync=off|commit|interval`, default off so the overhead gate measures
/// the log's CPU cost, not the disk's). Without --db the store is
/// in-memory and the bench behaves exactly as before.
inline Result<std::unique_ptr<AdaptiveStore>> OpenStore(
    const Flags& flags, const AdaptiveStoreOptions& base) {
  DbOptions opts;
  opts.strategy = base.strategy;
  opts.policy = base.policy;
  opts.merge_budget = base.merge_budget;
  opts.delta_merge = base.delta_merge;
  opts.track_lineage = base.track_lineage;
  opts.concurrent = base.concurrent;
  std::string dir = flags.GetString("db", "");
  if (!dir.empty()) {
    // Benches open stores in loops (one per strategy/config point); each
    // open gets a fresh database under DIR so no run replays its
    // predecessor's log.
    static int run_counter = 0;
    opts.path = StrFormat("%s/run-%d", dir.c_str(), run_counter++);
    opts.durability = DurabilityMode::kWal;
    CRACK_ASSIGN_OR_RETURN(
        opts.fsync_policy,
        durability::ParseFsyncPolicy(flags.GetString("fsync", "off")));
  }
  return AdaptiveStore::Open(opts);
}

/// Prints the standard experiment banner to stderr (kept off stdout so the
/// CSV stays machine-readable).
inline void Banner(const char* experiment, const char* paper_ref,
                   const std::string& params) {
  std::fprintf(stderr, "# %s — reproduces %s\n", experiment, paper_ref);
  std::fprintf(stderr, "# params: %s\n", params.c_str());
}

}  // namespace bench
}  // namespace crackstore

#endif  // CRACKSTORE_BENCH_BENCH_COMMON_H_
