// Copyright 2026 The CrackStore Authors
//
// Shared helpers for the figure-reproduction binaries: flag parsing and the
// CSV emission conventions (series to stdout, diagnostics to stderr).

#ifndef CRACKSTORE_BENCH_BENCH_COMMON_H_
#define CRACKSTORE_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "util/string_util.h"
#include "util/table_printer.h"

namespace crackstore {
namespace bench {

/// Tiny flag registry: --name=value pairs with typed lookups.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  uint64_t GetUint(const std::string& name, uint64_t def) const {
    std::string v;
    if (!Lookup(name, &v)) return def;
    return std::strtoull(v.c_str(), nullptr, 10);
  }

  double GetDouble(const std::string& name, double def) const {
    std::string v;
    if (!Lookup(name, &v)) return def;
    return std::strtod(v.c_str(), nullptr);
  }

  std::string GetString(const std::string& name,
                        const std::string& def) const {
    std::string v;
    return Lookup(name, &v) ? v : def;
  }

  bool GetBool(const std::string& name, bool def) const {
    std::string v;
    if (!Lookup(name, &v)) return def;
    return v == "1" || v == "true" || v == "yes";
  }

 private:
  bool Lookup(const std::string& name, std::string* value) const {
    for (const std::string& arg : args_) {
      if (ParseFlag(arg, name, value)) return true;
    }
    return false;
  }

  std::vector<std::string> args_;
};

/// Prints the standard experiment banner to stderr (kept off stdout so the
/// CSV stays machine-readable).
inline void Banner(const char* experiment, const char* paper_ref,
                   const std::string& params) {
  std::fprintf(stderr, "# %s — reproduces %s\n", experiment, paper_ref);
  std::fprintf(stderr, "# params: %s\n", params.c_str());
}

}  // namespace bench
}  // namespace crackstore

#endif  // CRACKSTORE_BENCH_BENCH_COMMON_H_
