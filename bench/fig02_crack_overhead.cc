// Copyright 2026 The CrackStore Authors
//
// Figure 2: "Cracking overhead with n% cracking" — the fractional write
// overhead induced per sequence step, for selectivity factors
// {1, 5, 10, 20, 40, 60, 80}% over a uniform-random query sequence of 20
// steps (paper §2.2). Step 1 sits at ~1.0 (the database is effectively
// completely rewritten); the curves decay as the cracker index refines.
//
// Output: CSV rows (step, then one overhead column per selectivity).

#include <string>
#include <vector>

#include "bench_common.h"
#include "obs/metrics.h"
#include "sim/crack_sim.h"
#include "util/timer.h"

namespace crackstore {
namespace {

int Run(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  CrackSimOptions base;
  base.num_granules = flags.GetUint("n", 100000);
  base.steps = flags.GetUint("steps", 20);
  base.seed = flags.GetUint("seed", 20040901);
  base.repetitions = flags.GetUint("reps", 10);
  std::string json_path = flags.GetString("json", "");

  bench::Banner("fig02_crack_overhead", "Fig. 2 of CIDR'05 cracking",
                StrFormat("n=%llu steps=%zu reps=%llu (--n=, --steps=, "
                          "--reps=, --seed=, --json=)",
                          static_cast<unsigned long long>(base.num_granules),
                          base.steps,
                          static_cast<unsigned long long>(base.repetitions)));

  const std::vector<double> selectivities{0.80, 0.60, 0.40, 0.20,
                                          0.10, 0.05, 0.01};
  std::vector<CrackSimResult> results;
  std::vector<std::string> header{"step"};
  WallTimer timer;
  for (double sigma : selectivities) {
    CrackSimOptions opts = base;
    opts.selectivity = sigma;
    auto result = RunCrackSimulation(opts);
    if (!result.ok()) {
      std::fprintf(stderr, "sim: %s\n", result.status().ToString().c_str());
      return 1;
    }
    results.push_back(std::move(*result));
    header.push_back(StrFormat("overhead_%.0fpct", sigma * 100));
  }
  const double elapsed = timer.ElapsedSeconds();

  TablePrinter out;
  out.SetHeader(header);
  for (size_t step = 0; step < base.steps; ++step) {
    std::vector<std::string> row{StrFormat("%zu", step + 1)};
    for (const CrackSimResult& r : results) {
      row.push_back(
          StrFormat("%.4f", r.steps[step].fractional_write_overhead));
    }
    out.AddRow(std::move(row));
  }
  out.PrintCsv(stdout);

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"fig02_crack_overhead\",\n"
                 "  \"n\": %llu,\n  \"series\": [\n",
                 static_cast<unsigned long long>(base.num_granules));
    for (size_t s = 0; s < selectivities.size(); ++s) {
      std::fprintf(f, "    {\"selectivity\": %.2f, \"overhead\": [",
                   selectivities[s]);
      for (size_t step = 0; step < base.steps; ++step) {
        std::fprintf(f, "%s%.4f", step == 0 ? "" : ", ",
                     results[s].steps[step].fractional_write_overhead);
      }
      std::fprintf(f, "]}%s\n", s + 1 < selectivities.size() ? "," : "");
    }
    // The registry snapshot makes every run self-describing: CI's overhead
    // gate reads elapsed_seconds from the metrics and no-metrics builds and
    // cross-checks the crack.* counters against the simulated workload.
    std::fprintf(f, "  ],\n  \"elapsed_seconds\": %.6f,\n  \"metrics\": %s\n}\n",
                 elapsed, obs::MetricsRegistry::Global().RenderJson().c_str());
    std::fclose(f);
    std::fprintf(stderr, "# wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace crackstore

int main(int argc, char** argv) { return crackstore::Run(argc, argv); }
