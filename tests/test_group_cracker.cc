// Copyright 2026 The CrackStore Authors
//
// Tests for Ω-cracking (group cracker) and clustered aggregation.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "core/group_cracker.h"
#include "util/rng.h"

namespace crackstore {
namespace {

std::shared_ptr<Bat> I64(std::vector<int64_t> v, const char* name = "g") {
  return Bat::FromVector(v, name);
}

TEST(GroupCrackerTest, ClustersByValue) {
  auto col = I64({3, 1, 2, 3, 1, 3});
  auto cracked = CrackGroup(col);
  ASSERT_TRUE(cracked.ok());
  ASSERT_EQ(cracked->groups.size(), 3u);
  // Groups are in ascending value order with correct sizes.
  EXPECT_EQ(cracked->groups[0].value, 1);
  EXPECT_EQ(cracked->groups[0].size(), 2u);
  EXPECT_EQ(cracked->groups[1].value, 2);
  EXPECT_EQ(cracked->groups[1].size(), 1u);
  EXPECT_EQ(cracked->groups[2].value, 3);
  EXPECT_EQ(cracked->groups[2].size(), 3u);
  // Every piece holds only its value.
  for (size_t g = 0; g < cracked->groups.size(); ++g) {
    BatView piece = cracked->piece(g);
    for (size_t i = 0; i < piece.size(); ++i) {
      EXPECT_EQ(piece.Get<int64_t>(i), cracked->groups[g].value);
    }
  }
}

TEST(GroupCrackerTest, PiecesTileColumn) {
  Pcg32 rng(3);
  std::vector<int64_t> v(500);
  for (auto& x : v) x = rng.NextInRange(0, 20);
  auto cracked = CrackGroup(I64(v));
  ASSERT_TRUE(cracked.ok());
  size_t expected_begin = 0;
  for (const GroupPiece& g : cracked->groups) {
    EXPECT_EQ(g.begin, expected_begin);
    expected_begin = g.end;
  }
  EXPECT_EQ(expected_begin, v.size());
}

TEST(GroupCrackerTest, LossLess) {
  Pcg32 rng(5);
  std::vector<int64_t> v(300);
  for (auto& x : v) x = rng.NextInRange(0, 10);
  auto cracked = CrackGroup(I64(v));
  ASSERT_TRUE(cracked.ok());
  std::multiset<int64_t> clustered(
      cracked->values->TailData<int64_t>(),
      cracked->values->TailData<int64_t>() + v.size());
  EXPECT_EQ(clustered, std::multiset<int64_t>(v.begin(), v.end()));
}

TEST(GroupCrackerTest, OidsMapBack) {
  auto col = I64({5, 9, 5, 7});
  auto cracked = CrackGroup(col);
  ASSERT_TRUE(cracked.ok());
  for (size_t i = 0; i < 4; ++i) {
    Oid oid = cracked->oids->Get<Oid>(i);
    EXPECT_EQ(col->Get<int64_t>(static_cast<size_t>(oid)),
              cracked->values->Get<int64_t>(i));
  }
}

TEST(GroupCrackerTest, SingleGroup) {
  auto cracked = CrackGroup(I64({4, 4, 4}));
  ASSERT_TRUE(cracked.ok());
  ASSERT_EQ(cracked->groups.size(), 1u);
  EXPECT_EQ(cracked->groups[0].size(), 3u);
}

TEST(GroupCrackerTest, EmptyColumn) {
  auto cracked = CrackGroup(I64({}));
  ASSERT_TRUE(cracked.ok());
  EXPECT_TRUE(cracked->groups.empty());
}

TEST(GroupCrackerTest, Int32Columns) {
  auto col = Bat::FromVector(std::vector<int32_t>{2, 1, 2}, "i32");
  auto cracked = CrackGroup(col);
  ASSERT_TRUE(cracked.ok());
  ASSERT_EQ(cracked->groups.size(), 2u);
  EXPECT_EQ(cracked->groups[1].size(), 2u);
}

TEST(GroupCrackerTest, RejectsNonIntegers) {
  auto col = Bat::FromVector(std::vector<double>{1.0}, "f");
  EXPECT_TRUE(CrackGroup(col).status().IsUnimplemented());
  EXPECT_TRUE(CrackGroup(nullptr).status().IsInvalidArgument());
}

TEST(GroupCrackerTest, StatsAccounting) {
  IoStats stats;
  auto cracked = CrackGroup(I64({1, 2, 1, 2, 3}), &stats);
  ASSERT_TRUE(cracked.ok());
  EXPECT_EQ(stats.tuples_read, 10u);   // histogram + scatter passes
  EXPECT_EQ(stats.tuples_written, 5u);
  EXPECT_EQ(stats.pieces_created, 3u);
}

class GroupAggregateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    group_col_ = I64({2, 1, 2, 1, 2}, "grp");
    agg_col_ = I64({10, 100, 20, 200, 30}, "val");
    auto cracked = CrackGroup(group_col_);
    ASSERT_TRUE(cracked.ok());
    cracked_ = std::move(*cracked);
  }

  std::shared_ptr<Bat> group_col_;
  std::shared_ptr<Bat> agg_col_;
  GroupCrackResult cracked_;
};

TEST_F(GroupAggregateTest, Count) {
  auto aggs = AggregateGroups(cracked_, agg_col_, AggKind::kCount);
  ASSERT_TRUE(aggs.ok());
  ASSERT_EQ(aggs->size(), 2u);
  EXPECT_EQ((*aggs)[0].group, 1);
  EXPECT_EQ((*aggs)[0].value, 2);
  EXPECT_EQ((*aggs)[1].group, 2);
  EXPECT_EQ((*aggs)[1].value, 3);
}

TEST_F(GroupAggregateTest, Sum) {
  auto aggs = AggregateGroups(cracked_, agg_col_, AggKind::kSum);
  ASSERT_TRUE(aggs.ok());
  EXPECT_EQ((*aggs)[0].value, 300);  // group 1: 100 + 200
  EXPECT_EQ((*aggs)[1].value, 60);   // group 2: 10 + 20 + 30
}

TEST_F(GroupAggregateTest, MinMax) {
  auto mins = AggregateGroups(cracked_, agg_col_, AggKind::kMin);
  ASSERT_TRUE(mins.ok());
  EXPECT_EQ((*mins)[0].value, 100);
  EXPECT_EQ((*mins)[1].value, 10);
  auto maxs = AggregateGroups(cracked_, agg_col_, AggKind::kMax);
  ASSERT_TRUE(maxs.ok());
  EXPECT_EQ((*maxs)[0].value, 200);
  EXPECT_EQ((*maxs)[1].value, 30);
}

TEST_F(GroupAggregateTest, RejectsBadAggColumn) {
  EXPECT_TRUE(AggregateGroups(cracked_, nullptr, AggKind::kSum)
                  .status()
                  .IsInvalidArgument());
  auto f64 = Bat::FromVector(std::vector<double>{1.0}, "f");
  EXPECT_TRUE(AggregateGroups(cracked_, f64, AggKind::kSum)
                  .status()
                  .IsUnimplemented());
}

// Property sweep: random data shapes, piece invariants + loss-lessness.
class GroupCrackerPropertyTest
    : public ::testing::TestWithParam<std::tuple<size_t, int64_t, uint64_t>> {
};

TEST_P(GroupCrackerPropertyTest, Invariants) {
  auto [n, domain, seed] = GetParam();
  Pcg32 rng(seed);
  std::vector<int64_t> v(n);
  for (auto& x : v) x = rng.NextInRange(0, domain);
  auto col = I64(v);
  auto cracked = CrackGroup(col);
  ASSERT_TRUE(cracked.ok());

  // Pieces tile [0, n), are value-sorted, and hold only their value.
  size_t cursor = 0;
  int64_t prev = INT64_MIN;
  for (const GroupPiece& g : cracked->groups) {
    ASSERT_EQ(g.begin, cursor);
    ASSERT_GT(g.value, prev);
    for (size_t i = g.begin; i < g.end; ++i) {
      ASSERT_EQ(cracked->values->Get<int64_t>(i), g.value);
      // Oid maps back to a source slot holding the same value.
      Oid oid = cracked->oids->Get<Oid>(i);
      ASSERT_EQ(v[static_cast<size_t>(oid)], g.value);
    }
    cursor = g.end;
    prev = g.value;
  }
  ASSERT_EQ(cursor, n);
  // Group sizes match a naive histogram.
  std::map<int64_t, size_t> naive;
  for (int64_t x : v) ++naive[x];
  ASSERT_EQ(cracked->groups.size(), naive.size());
  for (const GroupPiece& g : cracked->groups) {
    ASSERT_EQ(g.size(), naive[g.value]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GroupCrackerPropertyTest,
    ::testing::Combine(::testing::Values<size_t>(1, 10, 1000, 5000),
                       ::testing::Values<int64_t>(0, 3, 100, 1000000),
                       ::testing::Values<uint64_t>(1, 42)));

TEST(GroupAggregateTest2, MatchesNaiveAggregation) {
  Pcg32 rng(11);
  std::vector<int64_t> grp(400), val(400);
  for (auto& x : grp) x = rng.NextInRange(0, 15);
  for (auto& x : val) x = rng.NextInRange(-100, 100);
  auto cracked = CrackGroup(I64(grp));
  ASSERT_TRUE(cracked.ok());
  auto sums = AggregateGroups(*cracked, I64(val), AggKind::kSum);
  ASSERT_TRUE(sums.ok());

  std::map<int64_t, int64_t> naive;
  for (size_t i = 0; i < grp.size(); ++i) naive[grp[i]] += val[i];
  ASSERT_EQ(sums->size(), naive.size());
  for (const GroupAggregate& agg : *sums) {
    EXPECT_EQ(agg.value, naive[agg.group]) << "group " << agg.group;
  }
}

}  // namespace
}  // namespace crackstore
