// Copyright 2026 The CrackStore Authors
//
// Tests for the observability layer: the metrics registry primitives, the
// per-statement QueryTrace, EXPLAIN ANALYZE / SHOW STATS through SQL, and
// the logging helpers. The EXPLAIN ANALYZE counts are cross-checked against
// the store's own introspection (NumPieces), so the report cannot drift
// from what the cracker index actually did.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/adaptive_store.h"
#include "obs/instruments.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sql/executor.h"
#include "util/logging.h"
#include "util/rng.h"
#include "workload/tapestry.h"

namespace crackstore {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MatchLike;
using obs::MetricsRegistry;

// ---------------------------------------------------------------------------
// Counter / Gauge / Histogram primitives.
// ---------------------------------------------------------------------------

TEST(CounterTest, AddAndValue) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  if (obs::kMetricsEnabled) {
    EXPECT_EQ(c.Value(), 42u);
  } else {
    EXPECT_EQ(c.Value(), 0u);
  }
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "built with CRACKSTORE_NO_METRICS";
  Counter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAddReset) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  if (obs::kMetricsEnabled) {
    EXPECT_EQ(g.Value(), 7);
  }
  g.Reset();
  EXPECT_EQ(g.Value(), 0);
}

TEST(HistogramTest, BucketIndexAtPowerOfTwoEdges) {
  // Bucket i holds values of bit width i: [2^(i-1), 2^i - 1].
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  for (size_t k = 1; k < 63; ++k) {
    const uint64_t pow = uint64_t{1} << k;
    EXPECT_EQ(Histogram::BucketIndex(pow), k + 1) << "v=2^" << k;
    EXPECT_EQ(Histogram::BucketIndex(pow - 1), k) << "v=2^" << k << "-1";
  }
  EXPECT_EQ(Histogram::BucketIndex(UINT64_MAX), 64u);
}

TEST(HistogramTest, BucketUpperBounds) {
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3u);
  EXPECT_EQ(Histogram::BucketUpperBound(3), 7u);
  EXPECT_EQ(Histogram::BucketUpperBound(64), UINT64_MAX);
}

TEST(HistogramTest, ObserveFillsBucketsSumAndCount) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "built with CRACKSTORE_NO_METRICS";
  Histogram h;
  h.Observe(0);
  h.Observe(1);
  h.Observe(7);
  h.Observe(8);
  EXPECT_EQ(h.TotalCount(), 4u);
  EXPECT_EQ(h.Sum(), 16u);
  EXPECT_EQ(h.BucketCount(0), 1u);  // 0
  EXPECT_EQ(h.BucketCount(1), 1u);  // 1
  EXPECT_EQ(h.BucketCount(3), 1u);  // 7
  EXPECT_EQ(h.BucketCount(4), 1u);  // 8
  h.Reset();
  EXPECT_EQ(h.TotalCount(), 0u);
  EXPECT_EQ(h.Sum(), 0u);
}

// ---------------------------------------------------------------------------
// MatchLike (the SHOW STATS LIKE glob).
// ---------------------------------------------------------------------------

TEST(MatchLikeTest, Wildcards) {
  EXPECT_TRUE(MatchLike("", "anything"));
  EXPECT_TRUE(MatchLike("%", "anything"));
  EXPECT_TRUE(MatchLike("crack%", "crack.cracks"));
  EXPECT_FALSE(MatchLike("crack%", "latch.range_waits"));
  EXPECT_TRUE(MatchLike("%size", "crack.piece_size"));
  EXPECT_TRUE(MatchLike("%piece%", "crack.piece_size"));
  EXPECT_TRUE(MatchLike("crack.crack_", "crack.cracks"));
  EXPECT_FALSE(MatchLike("crack.crack_", "crack.crack"));
  EXPECT_TRUE(MatchLike("a%b%c", "a-x-b-y-c"));
  EXPECT_FALSE(MatchLike("a%b%c", "a-x-c-y-b"));
  EXPECT_TRUE(MatchLike("exact", "exact"));
  EXPECT_FALSE(MatchLike("exact", "exactly"));
}

// ---------------------------------------------------------------------------
// MetricsRegistry: stable pointers, rows, exporters, reset.
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, StablePointersAndRows) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* a = reg.GetCounter("test.reg.counter", "a test counter");
  Counter* b = reg.GetCounter("test.reg.counter");
  EXPECT_EQ(a, b);
  a->Add(5);
  Gauge* g = reg.GetGauge("test.reg.gauge");
  g->Set(-2);
  reg.GetHistogram("test.reg.hist")->Observe(3);

  auto rows = reg.Rows("test.reg.%");
  ASSERT_EQ(rows.size(), 3u);
  // Rows are sorted by name: counter, gauge, hist.
  EXPECT_EQ(rows[0][0], "test.reg.counter");
  EXPECT_EQ(rows[0][1], "counter");
  EXPECT_EQ(rows[1][0], "test.reg.gauge");
  EXPECT_EQ(rows[2][0], "test.reg.hist");
  if (obs::kMetricsEnabled) {
    EXPECT_EQ(rows[0][2], "5");
    EXPECT_EQ(rows[1][2], "-2");
  }
}

TEST(MetricsRegistryTest, RenderTextIsPrometheusShaped) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("test.prom.counter", "described")->Add(7);
  reg.GetHistogram("test.prom.hist")->Observe(5);
  std::string text = reg.RenderText("test.prom.%");
  EXPECT_NE(text.find("# HELP crackstore_test_prom_counter described"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE crackstore_test_prom_counter counter"),
            std::string::npos);
  if (obs::kMetricsEnabled) {
    EXPECT_NE(text.find("crackstore_test_prom_counter 7"), std::string::npos);
    EXPECT_NE(text.find("_bucket{le="), std::string::npos);
    EXPECT_NE(text.find("crackstore_test_prom_hist_count 1"),
              std::string::npos);
  }
}

TEST(MetricsRegistryTest, RenderJsonHasSections) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("test.json.counter")->Add(1);
  std::string json = reg.RenderJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json.counter\""), std::string::npos);
}

TEST(MetricsRegistryTest, ResetAllZeroesValuesKeepsNames) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* c = reg.GetCounter("test.reset.counter");
  c->Add(9);
  reg.ResetAll();
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_FALSE(reg.Rows("test.reset.%").empty());
}

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE / SHOW STATS through SQL, cross-checked against the
// store's introspection.
// ---------------------------------------------------------------------------

class ObservabilitySqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TapestryOptions opts;
    opts.num_rows = 4000;
    opts.num_columns = 2;
    opts.seed = 71;
    ASSERT_TRUE(store_.AddTable(*BuildTapestry("R", opts)).ok());
  }

  AdaptiveStore store_;
};

TEST_F(ObservabilitySqlTest, ExplainAnalyzeReportsCrackWork) {
  auto out = *sql::ExecuteSql(
      &store_, "EXPLAIN ANALYZE SELECT COUNT(*) FROM R "
               "WHERE c0 BETWEEN 1000 AND 2000");
  EXPECT_EQ(out.kind, sql::OutputKind::kTxn);
  // The inner statement's result rides along for cross-checking.
  EXPECT_EQ(out.count, 1001u);

  // The report must name the acceptance-criteria quantities.
  EXPECT_NE(out.message.find("pieces touched"), std::string::npos);
  EXPECT_NE(out.message.find("crack kernel writes"), std::string::npos);
  EXPECT_NE(out.message.find("rows filtered"), std::string::npos);
  EXPECT_NE(out.message.find("wait time"), std::string::npos);
  EXPECT_NE(out.message.find("plan"), std::string::npos);
  EXPECT_NE(out.message.find("parse"), std::string::npos);

  // Cross-check: a BETWEEN on a fresh crack column splits the single
  // initial piece; the pieces the report counts must equal the cracker
  // index's own piece table growth.
  EXPECT_GT(out.io.cracks, 0u);
  EXPECT_GT(out.io.pieces_created, 0u);
  EXPECT_GT(out.io.pieces_touched, 0u);
  size_t pieces = *store_.NumPieces("R", "c0");
  EXPECT_EQ(pieces, 1u + out.io.pieces_created);
}

TEST_F(ObservabilitySqlTest, ExplainAnalyzePieceCountsAccumulate) {
  IoStats total;
  const char* queries[] = {
      "EXPLAIN ANALYZE SELECT COUNT(*) FROM R WHERE c0 BETWEEN 100 AND 700",
      "EXPLAIN ANALYZE SELECT COUNT(*) FROM R WHERE c0 BETWEEN 1500 AND 2500",
      "EXPLAIN ANALYZE SELECT COUNT(*) FROM R WHERE c0 > 3600",
  };
  for (const char* q : queries) {
    auto out = *sql::ExecuteSql(&store_, q);
    total += out.io;
  }
  size_t pieces = *store_.NumPieces("R", "c0");
  EXPECT_EQ(pieces, 1u + total.pieces_created);
}

TEST_F(ObservabilitySqlTest, ExplainAnalyzeSeesSnapshotFiltering) {
  ASSERT_TRUE(sql::ExecuteSql(&store_, "DELETE FROM R WHERE c0 < 500").ok());
  auto out = *sql::ExecuteSql(
      &store_, "EXPLAIN ANALYZE SELECT COUNT(*) FROM R WHERE c0 < 1000");
  EXPECT_EQ(out.count, 500u);
  // The 500 deleted rows are hidden by snapshot visibility; the trace must
  // report a non-zero filtered count.
  EXPECT_NE(out.message.find("rows filtered="), std::string::npos);
  EXPECT_EQ(out.message.find("rows filtered=0,"), std::string::npos);
}

TEST_F(ObservabilitySqlTest, ExplainAnalyzeOfDmlAndVacuum) {
  auto ins = *sql::ExecuteSql(
      &store_, "EXPLAIN ANALYZE INSERT INTO R VALUES (90001, 90002)");
  EXPECT_EQ(ins.kind, sql::OutputKind::kTxn);
  EXPECT_EQ(ins.count, 1u);
  auto vac = *sql::ExecuteSql(&store_, "EXPLAIN ANALYZE VACUUM");
  EXPECT_EQ(vac.kind, sql::OutputKind::kTxn);
  EXPECT_NE(vac.message.find("total"), std::string::npos);
}

TEST_F(ObservabilitySqlTest, ShowStatsRendersRegistry) {
  ASSERT_TRUE(sql::ExecuteSql(&store_, "SELECT COUNT(*) FROM R WHERE c0 < 100")
                  .ok());
  auto out = *sql::ExecuteSql(&store_, "SHOW STATS");
  EXPECT_EQ(out.kind, sql::OutputKind::kTxn);
  EXPECT_NE(out.message.find("instrument"), std::string::npos);
  EXPECT_NE(out.message.find("crack.cracks"), std::string::npos);
  EXPECT_GT(out.count, 0u);

  auto filtered = *sql::ExecuteSql(&store_, "SHOW STATS LIKE 'crack%'");
  EXPECT_NE(filtered.message.find("crack.cracks"), std::string::npos);
  EXPECT_EQ(filtered.message.find("latch."), std::string::npos);
  EXPECT_LT(filtered.count, out.count);

  // SHOW STATS and the shared renderer show the same registry.
  EXPECT_EQ(filtered.message, sql::RenderStats("crack%"));
}

TEST_F(ObservabilitySqlTest, ShowStatsRejectsBadLike) {
  auto result = sql::ExecuteSql(&store_, "SHOW STATS LIKE crack");
  EXPECT_FALSE(result.ok());
}

TEST_F(ObservabilitySqlTest, NestedExplainAnalyzeParses) {
  auto out = *sql::ExecuteSql(
      &store_, "EXPLAIN ANALYZE EXPLAIN ANALYZE SELECT COUNT(*) FROM R");
  EXPECT_EQ(out.kind, sql::OutputKind::kTxn);
  EXPECT_EQ(out.count, 4000u);
}

// ---------------------------------------------------------------------------
// Self-driving policy instruments: policy.switches must count exactly the
// runtime switches the access paths performed (cross-checked against the
// paths' own switch counters), and both policy instruments must compile to
// no-ops under CRACKSTORE_NO_METRICS.
// ---------------------------------------------------------------------------

TEST(PolicyInstrumentsTest, RecordersAreNoOpsWhenDisabled) {
  // Direct calls must always compile and be safe; they only move the
  // registry when metrics are enabled.
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* switches = reg.GetCounter("policy.switches");
  Counter* deferred = reg.GetCounter("crack.progressive_deferred_rows");
  const uint64_t switches_before = switches->Value();
  const uint64_t deferred_before = deferred->Value();
  obs::RecordPolicySwitch();
  obs::RecordProgressiveDeferred(5);
  obs::RecordProgressiveDeferred(0);  // zero-row calls never count
  if (obs::kMetricsEnabled) {
    EXPECT_EQ(switches->Value(), switches_before + 1);
    EXPECT_EQ(deferred->Value(), deferred_before + 5);
  } else {
    EXPECT_EQ(switches->Value(), 0u);
    EXPECT_EQ(deferred->Value(), 0u);
  }
}

TEST(PolicyInstrumentsTest, SwitchCounterMatchesPathCountersExactly) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "built with CRACKSTORE_NO_METRICS";
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* counter = reg.GetCounter("policy.switches");
  const uint64_t before = counter->Value();

  AdaptiveStoreOptions opts;
  opts.strategy = AccessStrategy::kCrack;
  opts.policy.policy = CrackPolicy::kAuto;
  opts.policy.min_piece_size = 128;
  AdaptiveStore store(opts);
  TapestryOptions topts;
  topts.num_rows = 4000;
  topts.num_columns = 2;
  topts.seed = 97;
  ASSERT_TRUE(store.AddTable(*BuildTapestry("T", topts)).ok());

  // A random workload over both columns: each column's detector confirms
  // kRandom and switches stochastic -> standard once.
  Pcg32 rng(131);
  for (int q = 0; q < 24; ++q) {
    int64_t lo = rng.NextInRange(1, 3800);
    for (const char* col : {"c0", "c1"}) {
      ASSERT_TRUE(
          store.SelectRange("T", col, RangeBounds::Closed(lo, lo + 100)).ok());
    }
  }
  uint64_t path_switches = 0;
  for (const auto& row : store.PolicyReport()) {
    path_switches += row.status.switches;
  }
  EXPECT_GT(path_switches, 0u);
  // Exactness: the global instrument advanced by precisely what the paths
  // report (no other kAuto store is live in this process while this runs).
  EXPECT_EQ(counter->Value(), before + path_switches);
}

// ---------------------------------------------------------------------------
// Trace parity across crack policies and serial/concurrent stores: every
// configuration must produce spans, crack counts that match the statement
// IoStats, and (concurrent only) latch activity.
// ---------------------------------------------------------------------------

struct TraceParityConfig {
  CrackPolicy policy;
  bool concurrent;
};

class TraceParityTest : public ::testing::TestWithParam<TraceParityConfig> {};

TEST_P(TraceParityTest, TraceMatchesStatementIo) {
  const TraceParityConfig& config = GetParam();
  AdaptiveStoreOptions opts;
  opts.strategy = AccessStrategy::kCrack;
  opts.policy.policy = config.policy;
  opts.concurrent = config.concurrent;
  AdaptiveStore store(opts);
  TapestryOptions topts;
  topts.num_rows = 3000;
  topts.num_columns = 2;
  topts.seed = 83;
  ASSERT_TRUE(store.AddTable(*BuildTapestry("T", topts)).ok());

  // Warm-up: the first touch builds the accelerator under the exclusive
  // column latch; the piece-granular range-lock path only engages on later
  // queries, once SharedSelectReady(). The traced query below must exercise
  // the steady-state path so latch counters are live in concurrent mode.
  ASSERT_TRUE(
      sql::ExecuteSql(&store, "SELECT COUNT(*) FROM T WHERE c0 < 100").ok());

  obs::QueryTrace trace;
  obs::ExecContext ctx;
  ctx.trace = &trace;
  sql::Statement stmt = *sql::ParseStatement(
      "SELECT COUNT(*) FROM T WHERE c0 BETWEEN 500 AND 1500");
  auto out = *sql::Execute(&store, stmt, ctx);
  EXPECT_EQ(out.count, 1001u);

  auto spans = trace.Spans();
  ASSERT_FALSE(spans.empty());
  const obs::QueryTrace::Span* stmt_span = nullptr;
  bool saw_parse = false, saw_plan = false;
  for (const auto& span : spans) {
    EXPECT_FALSE(span.open) << span.name;
    if (span.name.rfind("select-stmt", 0) == 0) stmt_span = &span;
    if (span.name == "parse") saw_parse = true;
    if (span.name.rfind("plan", 0) == 0) saw_plan = true;
  }
  EXPECT_TRUE(saw_parse);
  EXPECT_TRUE(saw_plan);
  ASSERT_NE(stmt_span, nullptr);
  // The statement span watched the same IoStats the statement reported, so
  // crack counts agree between trace and output.
  EXPECT_EQ(stmt_span->io.cracks, out.io.cracks);
  EXPECT_EQ(stmt_span->io.pieces_created, out.io.pieces_created);
  EXPECT_EQ(stmt_span->io.kernel_writes, out.io.kernel_writes);
  EXPECT_GT(out.io.cracks, 0u);

  if (obs::kMetricsEnabled) {
    obs::TraceCounters live = trace.LiveSnapshot();
    EXPECT_GT(live.simd_total(), 0u) << "crack kernels must report a tier";
    if (config.concurrent) {
      EXPECT_GT(live.latch_acquisitions, 0u);
    }
  }

  const std::string report = trace.Render(out.io, out.seconds);
  EXPECT_NE(report.find("pieces touched"), std::string::npos);
  EXPECT_NE(report.find("simd kernel calls"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndConcurrency, TraceParityTest,
    ::testing::Values(
        TraceParityConfig{CrackPolicy::kStandard, false},
        TraceParityConfig{CrackPolicy::kStochastic, false},
        TraceParityConfig{CrackPolicy::kCoarse, false},
        TraceParityConfig{CrackPolicy::kStandard, true},
        TraceParityConfig{CrackPolicy::kStochastic, true},
        TraceParityConfig{CrackPolicy::kCoarse, true}),
    [](const ::testing::TestParamInfo<TraceParityConfig>& info) {
      return std::string(CrackPolicyName(info.param.policy)) +
             (info.param.concurrent ? "Concurrent" : "Serial");
    });

// ---------------------------------------------------------------------------
// Trace plumbing without SQL: bindings nest and spans without a bound trace
// are free no-ops.
// ---------------------------------------------------------------------------

TEST(TraceBindingTest, NestsAndRestores) {
  EXPECT_EQ(obs::CurrentTrace(), nullptr);
  obs::QueryTrace outer, inner;
  {
    obs::TraceBinding bind_outer(&outer);
    EXPECT_EQ(obs::CurrentTrace(), &outer);
    {
      obs::TraceBinding bind_inner(&inner);
      EXPECT_EQ(obs::CurrentTrace(), &inner);
    }
    EXPECT_EQ(obs::CurrentTrace(), &outer);
  }
  EXPECT_EQ(obs::CurrentTrace(), nullptr);
}

TEST(TraceSpanTest, NoOpWithoutBoundTrace) {
  obs::TraceSpan span("orphan", std::string("detail"));
  span.Close();  // must be safe
}

TEST(TraceSpanTest, WatchedIoDeltaAndRender) {
  obs::QueryTrace trace;
  IoStats io;
  {
    obs::TraceBinding bind(&trace);
    obs::TraceSpan span("work", std::string("unit"), &io);
    io.tuples_read += 10;
    io.cracks += 2;
  }
  auto spans = trace.Spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "work unit");
  EXPECT_EQ(spans[0].io.tuples_read, 10u);
  EXPECT_EQ(spans[0].io.cracks, 2u);
  trace.AddCompletedSpan("parse", 0.001);
  std::string report = trace.Render(io, 0.002);
  EXPECT_NE(report.find("work unit"), std::string::npos);
  EXPECT_NE(report.find("parse"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Logging satellite: level parsing and the EVERY_N macro.
// ---------------------------------------------------------------------------

TEST(LoggingTest, ParseLogLevel) {
  LogLevel level = LogLevel::kInfo;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("WARN", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(ParseLogLevel("3", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_TRUE(ParseLogLevel("Warning", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_FALSE(ParseLogLevel("loud", &level));
  EXPECT_EQ(level, LogLevel::kWarn);  // untouched on failure
}

TEST(LoggingTest, LogEveryNSamplesTheSite) {
  // The macro must expand to a valid statement and only evaluate its stream
  // arguments on sampled passes.
  LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kError);  // keep test output quiet
  std::atomic<int> evaluations{0};
  auto expensive = [&evaluations] {
    ++evaluations;
    return "detail";
  };
  for (int i = 0; i < 10; ++i) {
    CRACK_LOG_EVERY_N(Info, 3) << "sampled " << expensive();
  }
  // Passes 0, 3, 6, 9 build the message (even though the level filter
  // swallows the emission).
  EXPECT_EQ(evaluations.load(), 4);
  SetLogLevel(saved);
}

}  // namespace
}  // namespace crackstore
