// Copyright 2026 The CrackStore Authors
//
// Tests for Schema and Relation.

#include <gtest/gtest.h>

#include "storage/relation.h"

namespace crackstore {
namespace {

Schema TwoColSchema() {
  return Schema({{"k", ValueType::kInt64}, {"a", ValueType::kInt64}});
}

TEST(SchemaTest, FieldIndex) {
  Schema s = TwoColSchema();
  EXPECT_EQ(s.FieldIndex("k"), 0);
  EXPECT_EQ(s.FieldIndex("a"), 1);
  EXPECT_EQ(s.FieldIndex("missing"), -1);
}

TEST(SchemaTest, ToStringListsColumns) {
  EXPECT_EQ(TwoColSchema().ToString(), "(k:int64, a:int64)");
}

TEST(SchemaTest, Equality) {
  EXPECT_EQ(TwoColSchema(), TwoColSchema());
  Schema other({{"k", ValueType::kInt64}});
  EXPECT_FALSE(TwoColSchema() == other);
  Schema renamed({{"x", ValueType::kInt64}, {"a", ValueType::kInt64}});
  EXPECT_FALSE(TwoColSchema() == renamed);
}

TEST(RelationTest, CreateEmpty) {
  auto rel = Relation::Create("R", TwoColSchema());
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ((*rel)->num_rows(), 0u);
  EXPECT_EQ((*rel)->num_columns(), 2u);
  EXPECT_EQ((*rel)->name(), "R");
}

TEST(RelationTest, DuplicateColumnNamesRejected) {
  Schema dup({{"a", ValueType::kInt64}, {"a", ValueType::kInt32}});
  auto rel = Relation::Create("R", dup);
  EXPECT_FALSE(rel.ok());
  EXPECT_TRUE(rel.status().IsInvalidArgument());
}

TEST(RelationTest, AppendAndGetRow) {
  auto rel = *Relation::Create("R", TwoColSchema());
  ASSERT_TRUE(rel->AppendRow({Value(int64_t{1}), Value(int64_t{10})}).ok());
  ASSERT_TRUE(rel->AppendRow({Value(int64_t{2}), Value(int64_t{20})}).ok());
  EXPECT_EQ(rel->num_rows(), 2u);
  auto row = rel->GetRow(1);
  EXPECT_EQ(row[0].AsInt64(), 2);
  EXPECT_EQ(row[1].AsInt64(), 20);
}

TEST(RelationTest, AppendRowArityMismatch) {
  auto rel = *Relation::Create("R", TwoColSchema());
  Status s = rel->AppendRow({Value(int64_t{1})});
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(rel->num_rows(), 0u);
}

TEST(RelationTest, AppendRowTypeMismatchLeavesColumnsAligned) {
  auto rel = *Relation::Create("R", TwoColSchema());
  Status s = rel->AppendRow({Value(int64_t{1}), Value(std::string("oops"))});
  EXPECT_TRUE(s.IsTypeMismatch());
  // The failed append must not have grown any column.
  EXPECT_EQ(rel->column(size_t{0})->size(), 0u);
  EXPECT_EQ(rel->column(size_t{1})->size(), 0u);
}

TEST(RelationTest, ColumnLookupByName) {
  auto rel = *Relation::Create("R", TwoColSchema());
  auto col = rel->column("a");
  ASSERT_TRUE(col.ok());
  EXPECT_EQ((*col)->name(), "R.a");
  EXPECT_TRUE(rel->column("zzz").status().IsNotFound());
}

TEST(RelationTest, FromColumnsValidatesCardinality) {
  auto c1 = Bat::FromVector(std::vector<int64_t>{1, 2});
  auto c2 = Bat::FromVector(std::vector<int64_t>{1, 2, 3});
  auto rel = Relation::FromColumns("R", TwoColSchema(), {c1, c2});
  EXPECT_FALSE(rel.ok());
  EXPECT_TRUE(rel.status().IsInvalidArgument());
}

TEST(RelationTest, FromColumnsValidatesTypes) {
  auto c1 = Bat::FromVector(std::vector<int64_t>{1});
  auto c2 = Bat::FromVector(std::vector<int32_t>{1});
  auto rel = Relation::FromColumns("R", TwoColSchema(), {c1, c2});
  EXPECT_TRUE(rel.status().IsTypeMismatch());
}

TEST(RelationTest, FromColumnsValidatesArity) {
  auto c1 = Bat::FromVector(std::vector<int64_t>{1});
  auto rel = Relation::FromColumns("R", TwoColSchema(), {c1});
  EXPECT_TRUE(rel.status().IsInvalidArgument());
}

TEST(RelationTest, FromColumnsWrapsWithoutCopy) {
  auto c1 = Bat::FromVector(std::vector<int64_t>{1, 2});
  auto c2 = Bat::FromVector(std::vector<int64_t>{3, 4});
  auto rel = *Relation::FromColumns("R", TwoColSchema(), {c1, c2});
  EXPECT_EQ(rel->column(size_t{0}).get(), c1.get());  // same Bat object
  c1->MutableTailData<int64_t>()[0] = 42;
  EXPECT_EQ(rel->GetRow(0)[0].AsInt64(), 42);
}

TEST(RelationTest, TotalBytes) {
  auto rel = *Relation::Create("R", TwoColSchema());
  ASSERT_TRUE(rel->AppendRow({Value(int64_t{1}), Value(int64_t{2})}).ok());
  EXPECT_EQ(rel->total_bytes(), 16u);
}

TEST(RelationTest, MixedTypeSchema) {
  Schema mixed({{"id", ValueType::kInt32},
                {"score", ValueType::kFloat64},
                {"tag", ValueType::kString}});
  auto rel = *Relation::Create("M", mixed);
  ASSERT_TRUE(rel->AppendRow({Value(int32_t{1}), Value(0.5),
                              Value(std::string("hot"))})
                  .ok());
  auto row = rel->GetRow(0);
  EXPECT_EQ(row[0].AsInt32(), 1);
  EXPECT_DOUBLE_EQ(row[1].AsDouble(), 0.5);
  EXPECT_EQ(row[2].AsString(), "hot");
}

}  // namespace
}  // namespace crackstore
