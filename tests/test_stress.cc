// Copyright 2026 The CrackStore Authors
//
// Stress test: a long randomized mixed session against one AdaptiveStore —
// range selects, conjunctions, joins, group-bys, projections, across
// several tables and columns, interleaved with piece-budget enforcement —
// every answer cross-checked against a scan-strategy twin store. This is
// the closest thing to a fuzzer that still runs deterministically in CI.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/adaptive_store.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "workload/tapestry.h"

namespace crackstore {
namespace {

class StressTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StressTest, MixedSessionMatchesScanTwin) {
  uint64_t seed = GetParam();
  Pcg32 rng(seed);

  // Three tables of different sizes and arities.
  std::vector<std::shared_ptr<Relation>> tables;
  std::vector<std::string> names{"alpha", "beta", "gamma"};
  std::vector<uint64_t> sizes{4000, 9000, 2500};
  for (size_t i = 0; i < names.size(); ++i) {
    TapestryOptions opts;
    opts.num_rows = sizes[i];
    opts.num_columns = 2 + i;  // 2, 3, 4 columns
    opts.seed = seed + i;
    tables.push_back(*BuildTapestry(names[i], opts));
  }

  AdaptiveStoreOptions crack_opts;
  crack_opts.strategy = AccessStrategy::kCrack;
  crack_opts.merge_budget =
      MergeBudget{MergePolicyKind::kSmallestPieces, 16};
  AdaptiveStore cracked(crack_opts);
  AdaptiveStoreOptions scan_opts;
  scan_opts.strategy = AccessStrategy::kScan;
  scan_opts.track_lineage = false;
  AdaptiveStore scans(scan_opts);
  for (const auto& t : tables) {
    ASSERT_TRUE(cracked.AddTable(t).ok());
    ASSERT_TRUE(scans.AddTable(t).ok());
  }

  auto random_table = [&]() -> size_t { return rng.NextBounded(3); };
  auto random_column = [&](size_t t) {
    return StrFormat("c%u",
                     rng.NextBounded(static_cast<uint32_t>(2 + t)));
  };
  auto random_range = [&](size_t t) {
    int64_t n = static_cast<int64_t>(sizes[t]);
    int64_t a = rng.NextInRange(-10, n + 10);
    int64_t b = rng.NextInRange(-10, n + 10);
    RangeBounds r;
    r.lo = std::min(a, b);
    r.hi = std::max(a, b);
    r.lo_incl = rng.NextBounded(2) == 0;
    r.hi_incl = rng.NextBounded(2) == 0;
    return r;
  };

  for (int op = 0; op < 400; ++op) {
    switch (rng.NextBounded(10)) {
      case 0:
      case 1:
      case 2:
      case 3:
      case 4: {  // range select
        size_t t = random_table();
        std::string col = random_column(t);
        RangeBounds range = random_range(t);
        auto a = cracked.SelectRange(names[t], col, range);
        auto b = scans.SelectRange(names[t], col, range);
        ASSERT_TRUE(a.ok() && b.ok()) << "op " << op;
        ASSERT_EQ(a->count, b->count) << "op " << op;
        break;
      }
      case 5:
      case 6: {  // conjunction
        size_t t = random_table();
        std::vector<AdaptiveStore::ColumnRange> conjuncts;
        size_t k = 2 + rng.NextBounded(2);
        for (size_t c = 0; c < k; ++c) {
          conjuncts.push_back({random_column(t), random_range(t)});
        }
        auto a = cracked.SelectConjunction(names[t], conjuncts);
        auto b = scans.SelectConjunction(names[t], conjuncts);
        ASSERT_TRUE(a.ok() && b.ok()) << "op " << op;
        ASSERT_EQ(a->count, b->count) << "op " << op;
        break;
      }
      case 7: {  // join: permutation columns — expect min(|L|, |R|)? No:
        // every value of the smaller domain matches iff present in larger;
        // values 1..min(n1,n2) exist in both, so pairs = min(n1,n2).
        size_t t1 = random_table();
        size_t t2 = random_table();
        auto a = cracked.JoinOids(names[t1], "c0", names[t2], "c1");
        auto b = scans.JoinOids(names[t1], "c0", names[t2], "c1");
        ASSERT_TRUE(a.ok() && b.ok()) << "op " << op;
        ASSERT_EQ(a->size(), b->size()) << "op " << op;
        ASSERT_EQ(a->size(), std::min(sizes[t1], sizes[t2])) << "op " << op;
        break;
      }
      case 8: {  // group-by on a low-cardinality derived predicate column:
        // tapestry columns are permutations (all distinct); grouping still
        // must produce n groups of size 1 — checks the degenerate case.
        size_t t = random_table();
        if (sizes[t] > 3000) break;  // keep it cheap
        auto groups =
            cracked.GroupBy(names[t], "c0", "c1", AggKind::kCount);
        ASSERT_TRUE(groups.ok()) << "op " << op;
        ASSERT_EQ(groups->size(), sizes[t]);
        break;
      }
      default: {  // projection crack + fragment sanity
        size_t t = random_table();
        auto cracked_proj = cracked.Project(names[t], {"c0"});
        ASSERT_TRUE(cracked_proj.ok()) << "op " << op;
        ASSERT_EQ(cracked_proj->projected->num_rows(), sizes[t]);
        ASSERT_EQ(cracked_proj->remainder->num_rows(), sizes[t]);
        break;
      }
    }
  }

  // End-of-session invariants.
  for (size_t t = 0; t < names.size(); ++t) {
    for (size_t c = 0; c < 2 + t; ++c) {
      auto pieces = cracked.NumPieces(names[t], StrFormat("c%zu", c));
      ASSERT_TRUE(pieces.ok());
      // Budget: 16 bounds -> at most 33 pieces.
      ASSERT_LE(*pieces, 33u);
    }
  }
  EXPECT_TRUE(cracked.lineage().CheckLossless(0).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressTest,
                         ::testing::Values(1, 7, 20040901));

}  // namespace
}  // namespace crackstore
