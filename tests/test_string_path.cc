// Copyright 2026 The CrackStore Authors
//
// Parity for the dictionary-encoded string access paths: every strategy
// (scan/crack/sort) × delta-merge policy (immediate/threshold/ripple) ×
// crack policy must answer string range/equality selections and absorb
// full DML — including inserts of out-of-order unseen strings, which
// exercise the order-preserving code assignment and its rebuild/remap
// path — identically to a model oracle, both at the raw ColumnAccessPath
// level and end-to-end through the AdaptiveStore facade and the SQL
// executor the shell runs on. Also holds the StringDictionary unit tests.
//
// Randomized sections print their seed on failure; rerun a reported seed
// with CRACKSTORE_TEST_SEED=<seed>.

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "core/access_path.h"
#include "core/adaptive_store.h"
#include "sql/executor.h"
#include "storage/bat.h"
#include "storage/dictionary.h"
#include "util/rng.h"

namespace crackstore {
namespace {

/// Base seed of the randomized sections, overridable for reproduction.
uint64_t TestSeed(uint64_t fallback) {
  const char* env = std::getenv("CRACKSTORE_TEST_SEED");
  if (env != nullptr && *env != '\0') return std::strtoull(env, nullptr, 10);
  return fallback;
}

// ---------------------------------------------------------------------------
// StringDictionary.
// ---------------------------------------------------------------------------

std::shared_ptr<Bat> StringBat(const std::vector<std::string>& values,
                               const std::string& name = "s") {
  auto bat = Bat::Create(ValueType::kString, name);
  for (const std::string& v : values) bat->AppendString(v);
  return bat;
}

TEST(StringDictionaryTest, CodesPreserveOrder) {
  auto bat = StringBat({"pear", "apple", "fig", "apple", "banana", "fig"});
  auto dict = *StringDictionary::FromColumn(*bat);
  EXPECT_EQ(dict.size(), 4u);  // duplicates collapse
  int64_t apple, banana, fig, pear;
  ASSERT_TRUE(dict.CodeFor("apple", &apple));
  ASSERT_TRUE(dict.CodeFor("banana", &banana));
  ASSERT_TRUE(dict.CodeFor("fig", &fig));
  ASSERT_TRUE(dict.CodeFor("pear", &pear));
  EXPECT_LT(apple, banana);
  EXPECT_LT(banana, fig);
  EXPECT_LT(fig, pear);
  EXPECT_EQ(dict.StringFor(banana), "banana");
  int64_t missing;
  EXPECT_FALSE(dict.CodeFor("grape", &missing));
}

TEST(StringDictionaryTest, CeilAndFloorTranslateAbsentBounds) {
  auto bat = StringBat({"bb", "dd", "ff"});
  auto dict = *StringDictionary::FromColumn(*bat);
  int64_t bb, dd, ff, code;
  ASSERT_TRUE(dict.CodeFor("bb", &bb));
  ASSERT_TRUE(dict.CodeFor("dd", &dd));
  ASSERT_TRUE(dict.CodeFor("ff", &ff));
  ASSERT_TRUE(dict.CeilCode("cc", &code));
  EXPECT_EQ(code, dd);
  ASSERT_TRUE(dict.CeilCode("bb", &code));  // exact hits are their own ceil
  EXPECT_EQ(code, bb);
  ASSERT_TRUE(dict.CeilCode("", &code));
  EXPECT_EQ(code, bb);
  EXPECT_FALSE(dict.CeilCode("zz", &code));  // after everything
  ASSERT_TRUE(dict.FloorCode("ee", &code));
  EXPECT_EQ(code, dd);
  ASSERT_TRUE(dict.FloorCode("zz", &code));
  EXPECT_EQ(code, ff);
  EXPECT_FALSE(dict.FloorCode("aa", &code));  // before everything
}

TEST(StringDictionaryTest, MidpointInsertionAvoidsRebuild) {
  auto bat = StringBat({"aa", "zz"});
  auto dict = *StringDictionary::FromColumn(*bat);
  int64_t aa, mm, zz;
  ASSERT_TRUE(dict.CodeFor("aa", &aa));
  ASSERT_TRUE(dict.CodeFor("zz", &zz));
  mm = dict.InternOrdered("mm");
  EXPECT_GT(mm, aa);
  EXPECT_LT(mm, zz);
  EXPECT_EQ(dict.rebuilds(), 0u);
  // Idempotent re-intern.
  EXPECT_EQ(dict.InternOrdered("mm"), mm);
  EXPECT_EQ(dict.size(), 3u);
  // Appending before/after the extremes never exhausts.
  EXPECT_LT(dict.InternOrdered("a"), aa);
  EXPECT_GT(dict.InternOrdered("zzz"), zz);
  EXPECT_EQ(dict.rebuilds(), 0u);
}

TEST(StringDictionaryTest, GapExhaustionRebuildsWithMonotoneRemap) {
  auto heap = std::make_shared<VarHeap>();
  StringDictionary dict(heap, /*gap=*/4);
  dict.InternOrdered("a");
  dict.InternOrdered("c");
  size_t remaps = 0;
  StringDictionary::RemapMap last;
  auto hook = [&](const StringDictionary::RemapMap& m) {
    ++remaps;
    last = m;
  };
  // Repeated insertions between the same neighbors exhaust a gap of 4 in a
  // couple of steps.
  std::string s = "a";
  for (int i = 0; i < 8; ++i) {
    s += "b";  // "ab" < "abb" < ... < "c"
    dict.InternOrdered(s, hook);
  }
  EXPECT_GE(dict.rebuilds(), 1u);
  EXPECT_EQ(remaps, dict.rebuilds());
  ASSERT_FALSE(last.empty());
  for (const auto& [before, after] : last) {
    // Monotonicity of each rebuild: order never changes, so any two mapped
    // codes keep their relative order.
    for (const auto& [before2, after2] : last) {
      if (before < before2) {
        EXPECT_LT(after, after2);
      }
    }
  }
  // Everything remains ordered and addressable after the rebuild(s).
  int64_t prev;
  ASSERT_TRUE(dict.CodeFor("a", &prev));
  std::string t = "a";
  for (int i = 0; i < 8; ++i) {
    t += "b";
    int64_t code;
    ASSERT_TRUE(dict.CodeFor(t, &code));
    EXPECT_GT(code, prev);
    prev = code;
  }
}

TEST(StringDictionaryTest, EmptyStringAndNonAsciiBytesOrderBytewise) {
  auto bat = StringBat({"", "a", std::string("\xff\x01", 2), "A"});
  auto dict = *StringDictionary::FromColumn(*bat);
  int64_t empty, upper, lower, high;
  ASSERT_TRUE(dict.CodeFor("", &empty));
  ASSERT_TRUE(dict.CodeFor("A", &upper));
  ASSERT_TRUE(dict.CodeFor("a", &lower));
  ASSERT_TRUE(dict.CodeFor(std::string_view("\xff\x01", 2), &high));
  // Bytewise unsigned order: "" < "A" < "a" < "\xff\x01".
  EXPECT_LT(empty, upper);
  EXPECT_LT(upper, lower);
  EXPECT_LT(lower, high);
  EXPECT_EQ(dict.StringFor(high), std::string_view("\xff\x01", 2));
}

// ---------------------------------------------------------------------------
// Path-level parity.
// ---------------------------------------------------------------------------

std::vector<AccessPathConfig> AllStringConfigs() {
  std::vector<AccessPathConfig> configs;
  for (AccessStrategy strategy :
       {AccessStrategy::kScan, AccessStrategy::kCrack, AccessStrategy::kSort}) {
    for (DeltaMergePolicy merge :
         {DeltaMergePolicy::kImmediate, DeltaMergePolicy::kThreshold,
          DeltaMergePolicy::kRippleOnSelect}) {
      std::vector<CrackPolicy> crack_policies{CrackPolicy::kStandard};
      if (strategy == AccessStrategy::kCrack) {
        crack_policies = {CrackPolicy::kStandard, CrackPolicy::kStochastic,
                          CrackPolicy::kCoarse};
      }
      for (CrackPolicy policy : crack_policies) {
        AccessPathConfig config;
        config.strategy = strategy;
        config.policy.policy = policy;
        config.policy.min_piece_size = 64;
        config.delta_merge.policy = merge;
        config.delta_merge.threshold_fraction = 0.05;
        configs.push_back(config);
      }
    }
  }
  return configs;
}

std::string ConfigName(const AccessPathConfig& config) {
  return std::string(AccessStrategyName(config.strategy)) + "/" +
         CrackPolicyName(config.policy.policy) + "/" +
         DeltaMergePolicyName(config.delta_merge.policy);
}

std::vector<Oid> SelectionOids(const AccessSelection& sel) {
  if (!sel.contiguous) return sel.oids;
  std::vector<Oid> oids;
  oids.reserve(sel.count);
  for (size_t i = 0; i < sel.view.oids.size(); ++i) {
    oids.push_back(sel.view.oids.Get<Oid>(i));
  }
  std::sort(oids.begin(), oids.end());
  return oids;
}

/// A random word; short alphabet + length so that draws collide with the
/// column often (seen strings) while fresh draws land anywhere in the sort
/// order (unseen, out-of-order).
std::string RandomWord(Pcg32* rng) {
  size_t len = 1 + rng->NextBounded(6);
  std::string s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    s += static_cast<char>('a' + rng->NextBounded(6));
  }
  return s;
}

using StringModel = std::map<Oid, std::string>;

std::vector<Oid> ModelOids(const StringModel& model, const TypedRange& range) {
  std::vector<Oid> oids;
  for (const auto& [oid, value] : model) {
    if (range.Contains(std::string_view(value))) oids.push_back(oid);
  }
  return oids;  // std::map iterates ascending
}

/// One randomized mixed string workload against one path configuration.
void RunStringSession(const AccessPathConfig& config, uint64_t seed) {
  SCOPED_TRACE("config=" + ConfigName(config) +
               " seed=" + std::to_string(seed) +
               " (rerun with CRACKSTORE_TEST_SEED)");
  const size_t n0 = 600;
  Pcg32 rng(seed);

  auto bat = Bat::Create(ValueType::kString, "s");
  StringModel model;
  for (size_t i = 0; i < n0; ++i) {
    std::string w = RandomWord(&rng);
    bat->AppendString(w);
    model[i] = std::move(w);
  }

  auto path_result = CreateColumnAccessPath(bat, config);
  ASSERT_TRUE(path_result.ok());
  ColumnAccessPath* path = path_result->get();

  auto check_select = [&](int op, const TypedRange& range) {
    IoStats io;
    auto sel = path->SelectTyped(range, /*want_oids=*/true, &io);
    ASSERT_TRUE(sel.ok()) << "op " << op << ": " << sel.status().ToString();
    std::vector<Oid> expected = ModelOids(model, range);
    ASSERT_EQ(sel->count, expected.size()) << "op " << op;
    ASSERT_EQ(SelectionOids(*sel), expected) << "op " << op;
  };

  auto random_range = [&]() {
    std::string a = RandomWord(&rng);
    std::string b = RandomWord(&rng);
    if (b < a) std::swap(a, b);
    return TypedRange{Value(a), rng.NextBounded(2) == 0, Value(b),
                      rng.NextBounded(2) == 0};
  };

  for (int op = 0; op < 300; ++op) {
    uint32_t dice = rng.NextBounded(100);
    if (dice < 30) {
      check_select(op, random_range());
    } else if (dice < 40) {
      // Equality probe — half the time for a string known to be live.
      std::string probe;
      if (!model.empty() && rng.NextBounded(2) == 0) {
        auto it = model.begin();
        std::advance(it, rng.NextBounded(static_cast<uint32_t>(model.size())));
        probe = it->second;
      } else {
        probe = RandomWord(&rng);
      }
      check_select(op, TypedRange::Equal(Value(probe)));
    } else if (dice < 65) {
      // INSERT: base append first (the facade's contract), then the path.
      std::string w = RandomWord(&rng);
      bat->AppendString(w);
      Oid oid = bat->head_base() + bat->size() - 1;
      ASSERT_TRUE(path->Insert(Value(w), oid).ok()) << "op " << op;
      model[oid] = std::move(w);
    } else if (dice < 82) {
      if (model.empty()) continue;
      auto it = model.begin();
      std::advance(it, rng.NextBounded(static_cast<uint32_t>(model.size())));
      ASSERT_TRUE(path->Delete(it->first).ok()) << "op " << op;
      model.erase(it);
    } else {
      if (model.empty()) continue;
      // UPDATE: base write-through first, then the path.
      auto it = model.begin();
      std::advance(it, rng.NextBounded(static_cast<uint32_t>(model.size())));
      std::string w = RandomWord(&rng);
      ASSERT_TRUE(
          bat->SetString(static_cast<size_t>(it->first - bat->head_base()), w)
              .ok());
      ASSERT_TRUE(path->Update(it->first, Value(w)).ok()) << "op " << op;
      it->second = std::move(w);
    }
  }

  ASSERT_TRUE(path->FlushDeltas().ok());
  if (config.strategy != AccessStrategy::kScan) {
    EXPECT_EQ(path->pending_inserts(), 0u);
    EXPECT_EQ(path->pending_deletes(), 0u);
  }
  check_select(-1, TypedRange::All());
}

TEST(StringPathTest, MixedWorkloadParityAllStrategiesAndMergePolicies) {
  uint64_t seed = TestSeed(1117);
  for (const AccessPathConfig& config : AllStringConfigs()) {
    RunStringSession(config, seed++);
  }
}

TEST(StringPathTest, DeepMidpointInsertsSurviveDictionaryRebuild) {
  // "a", "ab", "abb", ... each sorts between its predecessor and "b": the
  // code interval halves every insert, so the default 2^32 gap exhausts
  // after ~32 of them and the dictionary must rebuild + remap mid-workload.
  for (const AccessPathConfig& config : AllStringConfigs()) {
    SCOPED_TRACE(ConfigName(config));
    auto bat = StringBat({"b", "c", "d"});
    StringModel model{{0, "b"}, {1, "c"}, {2, "d"}};
    auto path = CreateColumnAccessPath(bat, config);
    ASSERT_TRUE(path.ok());
    IoStats io;
    // Materialize the accelerator so inserts hit live delta structures.
    auto all = (*path)->SelectTyped(TypedRange::All(), true, &io);
    ASSERT_TRUE(all.ok());
    ASSERT_EQ((*all).count, 3u);

    std::string s = "a";
    for (int i = 0; i < 40; ++i) {
      bat->AppendString(s);
      Oid oid = bat->head_base() + bat->size() - 1;
      ASSERT_TRUE((*path)->Insert(Value(s), oid).ok()) << "insert " << i;
      model[oid] = s;
      s += "b";
    }
    // Everything below "b" is exactly the 40 midpoint strings.
    auto below = (*path)->SelectTyped(
        TypedRange::LessThan(Value(std::string("b"))), true, &io);
    ASSERT_TRUE(below.ok());
    EXPECT_EQ((*below).count, 40u);
    EXPECT_EQ(SelectionOids(*below), ModelOids(model, TypedRange::LessThan(
                                                          Value(std::string(
                                                              "b")))));
    // And a mid-chain equality still resolves post-remap.
    auto probe = (*path)->SelectTyped(
        TypedRange::Equal(Value(std::string("abbbb"))), true, &io);
    ASSERT_TRUE(probe.ok());
    EXPECT_EQ((*probe).count, 1u);
    // The rebuild actually happened (visible in the explain report).
    EXPECT_NE((*path)->Explain().find("rebuild"), std::string::npos);
  }
}

TEST(StringPathTest, DeleteValidationMatchesNumericPaths) {
  // Out-of-range and duplicate deletes answer like the numeric paths do,
  // pre- and post-encode; a rejected oid must not poison the wrapper's
  // replayable tombstone set.
  for (const AccessPathConfig& config : AllStringConfigs()) {
    SCOPED_TRACE(ConfigName(config));
    auto bat = StringBat({"x", "y", "z"});
    auto path = CreateColumnAccessPath(bat, config);
    ASSERT_TRUE(path.ok());
    EXPECT_TRUE((*path)->Delete(99).IsNotFound());
    ASSERT_TRUE((*path)->Delete(1).ok());
    EXPECT_TRUE((*path)->Delete(1).IsAlreadyExists());
    IoStats io;
    auto sel = (*path)->SelectTyped(TypedRange::All(), true, &io);
    ASSERT_TRUE(sel.ok());
    EXPECT_EQ(sel->count, 2u);
    EXPECT_EQ(SelectionOids(*sel), (std::vector<Oid>{0, 2}));
    EXPECT_TRUE((*path)->Delete(99).IsNotFound());  // post-encode too
    EXPECT_TRUE((*path)->Delete(1).IsAlreadyExists());
  }
}

TEST(StringPathTest, MistypedPredicatesAndValuesAreRejected) {
  auto bat = StringBat({"x", "y"});
  AccessPathConfig config;
  auto path = CreateColumnAccessPath(bat, config);
  ASSERT_TRUE(path.ok());
  IoStats io;
  // Numeric bounds on a string column.
  auto sel = (*path)->SelectTyped(RangeBounds::Closed(1, 5), true, &io);
  EXPECT_TRUE(sel.status().IsTypeMismatch());
  // String bounds on a numeric column.
  auto nbat = Bat::FromVector(std::vector<int64_t>{1, 2, 3}, "n");
  auto npath = CreateColumnAccessPath(nbat, config);
  ASSERT_TRUE(npath.ok());
  auto nsel = (*npath)->SelectTyped(
      TypedRange::Equal(Value(std::string("x"))), true, &io);
  EXPECT_TRUE(nsel.status().IsTypeMismatch());
  // Numeric DML value on a string column (post-build so it is not absorbed
  // by the lazy no-op).
  ASSERT_TRUE(
      (*path)->SelectTyped(TypedRange::All(), false, &io).ok());
  bat->AppendString("z");
  EXPECT_TRUE((*path)->Insert(Value(int64_t{7}), 2).IsTypeMismatch());
}

// ---------------------------------------------------------------------------
// Facade-level parity (typed predicates + DML through AdaptiveStore).
// ---------------------------------------------------------------------------

struct CatalogRow {
  std::string name;
  int64_t qty;
  bool live = true;
};

class StringFacadeTest
    : public ::testing::TestWithParam<
          std::tuple<AccessStrategy, DeltaMergePolicy>> {};

TEST_P(StringFacadeTest, RandomizedStringDmlMatchesOracle) {
  auto [strategy, merge] = GetParam();
  uint64_t seed = TestSeed(2203) + static_cast<uint64_t>(strategy) * 13 +
                  static_cast<uint64_t>(merge) * 7;
  SCOPED_TRACE("seed=" + std::to_string(seed) +
               " (rerun with CRACKSTORE_TEST_SEED)");
  AdaptiveStoreOptions opts;
  opts.strategy = strategy;
  opts.delta_merge.policy = merge;
  opts.delta_merge.threshold_fraction = 0.05;
  AdaptiveStore store(opts);

  Pcg32 rng(seed);
  auto rel = *Relation::Create(
      "P", Schema({{"name", ValueType::kString}, {"qty", ValueType::kInt64}}));
  std::vector<CatalogRow> rows;
  for (size_t i = 0; i < 400; ++i) {
    CatalogRow row{RandomWord(&rng), rng.NextInRange(1, 500)};
    ASSERT_TRUE(rel->AppendRow({Value(row.name), Value(row.qty)}).ok());
    rows.push_back(row);
  }
  ASSERT_TRUE(store.AddTable(rel).ok());

  auto oracle_count = [&](const TypedRange& name_r, const RangeBounds* qty_r) {
    uint64_t count = 0;
    for (const CatalogRow& row : rows) {
      if (!row.live) continue;
      if (!name_r.Contains(std::string_view(row.name))) continue;
      if (qty_r != nullptr && !qty_r->Contains(row.qty)) continue;
      ++count;
    }
    return count;
  };

  auto random_name_range = [&]() {
    std::string a = RandomWord(&rng);
    std::string b = RandomWord(&rng);
    if (b < a) std::swap(a, b);
    return TypedRange::Closed(Value(a), Value(b));
  };

  for (int op = 0; op < 100; ++op) {
    uint32_t dice = rng.NextBounded(100);
    if (dice < 30) {
      TypedRange range = random_name_range();
      auto qr = store.SelectRange("P", "name", range, Delivery::kView);
      ASSERT_TRUE(qr.ok()) << "op " << op;
      ASSERT_EQ(qr->count, oracle_count(range, nullptr)) << "op " << op;
      ASSERT_EQ(qr->CollectOids().size(), qr->count) << "op " << op;
    } else if (dice < 45) {
      // Mixed string + numeric conjunction.
      TypedRange name_r = random_name_range();
      RangeBounds qty_r = RangeBounds::Closed(
          rng.NextInRange(1, 400), rng.NextInRange(1, 400) + 100);
      auto qr =
          store.SelectConjunction("P", {{"name", name_r}, {"qty", qty_r}});
      ASSERT_TRUE(qr.ok()) << "op " << op;
      ASSERT_EQ(qr->count, oracle_count(name_r, &qty_r)) << "op " << op;
    } else if (dice < 65) {
      CatalogRow row{RandomWord(&rng), rng.NextInRange(1, 500)};
      auto qr = store.Insert("P", {Value(row.name), Value(row.qty)});
      ASSERT_TRUE(qr.ok()) << "op " << op;
      rows.push_back(row);
    } else if (dice < 80) {
      // DELETE a narrow name band.
      std::string lo = RandomWord(&rng);
      TypedRange range = TypedRange::Closed(Value(lo), Value(lo + "c"));
      auto qr = store.Delete("P", {{"name", range}});
      ASSERT_TRUE(qr.ok()) << "op " << op;
      uint64_t expected = 0;
      for (CatalogRow& row : rows) {
        if (row.live && range.Contains(std::string_view(row.name))) {
          row.live = false;
          ++expected;
        }
      }
      ASSERT_EQ(qr->count, expected) << "op " << op;
    } else {
      // UPDATE names in a qty band to a fresh (often unseen) string.
      int64_t lo = rng.NextInRange(1, 500);
      RangeBounds qty_r = RangeBounds::Closed(lo, lo + 10);
      std::string fresh = RandomWord(&rng) + "_v2";
      auto qr =
          store.Update("P", {{"name", Value(fresh)}}, {{"qty", qty_r}});
      ASSERT_TRUE(qr.ok()) << "op " << op;
      uint64_t expected = 0;
      for (CatalogRow& row : rows) {
        if (row.live && qty_r.Contains(row.qty)) {
          row.name = fresh;
          ++expected;
        }
      }
      ASSERT_EQ(qr->count, expected) << "op " << op;
    }
  }

  uint64_t live = 0;
  for (const CatalogRow& row : rows) live += row.live ? 1 : 0;
  ASSERT_EQ(*store.LiveRowCount("P"), live);
  auto all = store.SelectRange("P", "name", TypedRange::All());
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->count, live);
}

INSTANTIATE_TEST_SUITE_P(
    StrategyByMergePolicy, StringFacadeTest,
    ::testing::Combine(
        ::testing::Values(AccessStrategy::kScan, AccessStrategy::kCrack,
                          AccessStrategy::kSort),
        ::testing::Values(DeltaMergePolicy::kImmediate,
                          DeltaMergePolicy::kThreshold,
                          DeltaMergePolicy::kRippleOnSelect)),
    [](const auto& info) {
      return std::string(AccessStrategyName(std::get<0>(info.param))) + "_" +
             DeltaMergePolicyName(std::get<1>(info.param));
    });

TEST(StringFacadeTest, MaterializeDecodesStrings) {
  AdaptiveStore store;
  auto rel = *Relation::Create(
      "P", Schema({{"name", ValueType::kString}, {"qty", ValueType::kInt64}}));
  for (const char* n : {"delta", "alpha", "echo", "bravo", "charlie"}) {
    ASSERT_TRUE(
        rel->AppendRow({Value(std::string(n)), Value(int64_t{1})}).ok());
  }
  ASSERT_TRUE(store.AddTable(rel).ok());
  auto qr = store.SelectRange(
      "P", "name",
      TypedRange::Closed(Value(std::string("b")), Value(std::string("d"))),
      Delivery::kMaterialize);
  ASSERT_TRUE(qr.ok());
  EXPECT_EQ(qr->count, 2u);  // bravo, charlie
  ASSERT_NE(qr->materialized, nullptr);
  std::vector<std::string> names;
  for (size_t i = 0; i < qr->materialized->num_rows(); ++i) {
    names.push_back(qr->materialized->GetRow(i)[0].AsString());
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"bravo", "charlie"}));
  // Cracking happened on the code column like on any integer column.
  if (store.options().strategy == AccessStrategy::kCrack) {
    EXPECT_GT(*store.NumPieces("P", "name"), 1u);
  }
}

// ---------------------------------------------------------------------------
// SQL round-trips (the executor the shell runs on).
// ---------------------------------------------------------------------------

class SqlStringTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto rel = *Relation::Create(
        "P",
        Schema({{"name", ValueType::kString}, {"qty", ValueType::kInt64}}));
    const std::vector<std::pair<std::string, int64_t>> seedrows = {
        {"apple", 10}, {"banana", 20}, {"cherry", 30},
        {"fig", 40},   {"grape", 50},  {"melon", 60}};
    for (const auto& [n, q] : seedrows) {
      ASSERT_TRUE(rel->AppendRow({Value(n), Value(q)}).ok());
    }
    ASSERT_TRUE(store_.AddTable(rel).ok());
  }

  AdaptiveStore store_;
};

TEST_F(SqlStringTest, StringEqualityAndRanges) {
  EXPECT_EQ(
      sql::ExecuteSql(&store_, "SELECT COUNT(*) FROM P WHERE name = 'fig'")
          ->count,
      1u);
  EXPECT_EQ(sql::ExecuteSql(
                &store_,
                "SELECT COUNT(*) FROM P WHERE name BETWEEN 'b' AND 'g'")
                ->count,
            3u);  // banana cherry fig
  EXPECT_EQ(
      sql::ExecuteSql(&store_, "SELECT COUNT(*) FROM P WHERE name >= 'grape'")
          ->count,
      2u);  // grape melon
  EXPECT_EQ(
      sql::ExecuteSql(&store_, "SELECT COUNT(*) FROM P WHERE name = 'kiwi'")
          ->count,
      0u);
  // Mixed string + numeric conjunction.
  EXPECT_EQ(sql::ExecuteSql(&store_,
                            "SELECT COUNT(*) FROM P WHERE name < 'd' AND "
                            "qty >= 20")
                ->count,
            2u);  // banana cherry
}

TEST_F(SqlStringTest, SelectStarDecodesStringsInOutput) {
  auto out = *sql::ExecuteSql(&store_, "SELECT * FROM P WHERE name = 'cherry'");
  ASSERT_EQ(out.kind, sql::OutputKind::kRows);
  ASSERT_EQ(out.rows->num_rows(), 1u);
  EXPECT_EQ(out.rows->GetRow(0)[0].AsString(), "cherry");
  EXPECT_EQ(out.rows->GetRow(0)[1].AsInt64(), 30);
  std::string rendered = sql::FormatOutput(out);
  EXPECT_NE(rendered.find("cherry"), std::string::npos);
  EXPECT_NE(rendered.find("name:string"), std::string::npos);
}

TEST_F(SqlStringTest, DmlRoundTripWithStringLiterals) {
  // INSERT an unseen out-of-order string (sorts between existing keys).
  auto ins =
      *sql::ExecuteSql(&store_, "INSERT INTO P VALUES ('blueberry', 70)");
  EXPECT_EQ(ins.count, 1u);
  EXPECT_EQ(sql::ExecuteSql(&store_,
                            "SELECT COUNT(*) FROM P WHERE name BETWEEN "
                            "'b' AND 'bz'")
                ->count,
            2u);  // banana blueberry
  // UPDATE through a string WHERE, SET to a string literal with '' escape.
  auto upd = *sql::ExecuteSql(
      &store_, "UPDATE P SET name = 'bob''s fig' WHERE name = 'fig'");
  EXPECT_EQ(upd.count, 1u);
  EXPECT_EQ(
      sql::ExecuteSql(&store_,
                      "SELECT COUNT(*) FROM P WHERE name = 'bob''s fig'")
          ->count,
      1u);
  EXPECT_EQ(
      sql::ExecuteSql(&store_, "SELECT COUNT(*) FROM P WHERE name = 'fig'")
          ->count,
      0u);
  // DELETE by string range.
  auto del = *sql::ExecuteSql(&store_, "DELETE FROM P WHERE name < 'c'");
  EXPECT_EQ(del.count, 4u);  // apple banana blueberry bob's fig
  EXPECT_EQ(sql::ExecuteSql(&store_, "SELECT COUNT(*) FROM P")->count, 3u);
  // The string WHERE clauses cracked the code column like any SELECT.
  if (store_.options().strategy == AccessStrategy::kCrack) {
    EXPECT_GT(*store_.NumPieces("P", "name"), 1u);
  }
}

TEST_F(SqlStringTest, TypeErrorsSurfaceAsStatuses) {
  EXPECT_TRUE(sql::ExecuteSql(&store_,
                              "SELECT COUNT(*) FROM P WHERE name < 5")
                  .status()
                  .IsTypeMismatch());
  EXPECT_TRUE(sql::ExecuteSql(&store_,
                              "SELECT COUNT(*) FROM P WHERE qty = 'x'")
                  .status()
                  .IsTypeMismatch());
  EXPECT_FALSE(sql::ExecuteSql(&store_, "INSERT INTO P VALUES (5, 'x')").ok());
  EXPECT_FALSE(
      sql::ExecuteSql(&store_, "UPDATE P SET qty = 'many' WHERE qty = 10")
          .ok());
  auto unterminated =
      sql::ExecuteSql(&store_, "SELECT COUNT(*) FROM P WHERE name = 'oops");
  ASSERT_FALSE(unterminated.ok());
  EXPECT_NE(unterminated.status().message().find("unterminated"),
            std::string::npos);
}

}  // namespace
}  // namespace crackstore
