// Copyright 2026 The CrackStore Authors
//
// Tests for the updatable cracker index (the §2.2/§7 updates question):
// pending inserts, tombstones, lazy merging that preserves learned
// boundaries, and a randomized interleaving sweep against a naive
// reference.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "core/updatable_cracker_index.h"
#include "util/rng.h"
#include "workload/tapestry.h"

namespace crackstore {
namespace {

std::shared_ptr<Bat> I64(std::vector<int64_t> v) {
  return Bat::FromVector(v, "col");
}

UpdatableCrackerIndexOptions NoAutoMerge() {
  UpdatableCrackerIndexOptions opts;
  opts.auto_merge_fraction = 0;
  return opts;
}

std::multiset<int64_t> Values(const UpdatableCrackerIndex<int64_t>& index,
                              const UpdatableSelection<int64_t>& sel) {
  std::multiset<int64_t> out;
  index.ForEach(sel, [&out](int64_t v, Oid) { out.insert(v); });
  return out;
}

TEST(UpdatableIndexTest, SelectWithoutUpdatesMatchesPlainIndex) {
  auto col = I64({5, 1, 9, 3, 7});
  UpdatableCrackerIndex<int64_t> index(col, nullptr, NoAutoMerge());
  auto sel = index.Select(3, true, 7, true);
  EXPECT_EQ(sel.count(), 3u);
  EXPECT_EQ(Values(index, sel), (std::multiset<int64_t>{3, 5, 7}));
}

TEST(UpdatableIndexTest, InsertVisibleImmediately) {
  auto col = I64({10, 20, 30});
  UpdatableCrackerIndex<int64_t> index(col, nullptr, NoAutoMerge());
  ASSERT_TRUE(index.Insert(15, 3).ok());
  ASSERT_TRUE(index.Insert(25, 4).ok());
  auto sel = index.Select(10, true, 20, true);
  EXPECT_EQ(sel.count(), 3u);  // 10, 15, 20
  EXPECT_EQ(Values(index, sel), (std::multiset<int64_t>{10, 15, 20}));
  EXPECT_EQ(index.size(), 5u);
  EXPECT_EQ(index.pending_inserts(), 2u);
}

TEST(UpdatableIndexTest, InsertRejectsStaleOids) {
  auto col = I64({10, 20, 30});
  UpdatableCrackerIndex<int64_t> index(col, nullptr, NoAutoMerge());
  EXPECT_TRUE(index.Insert(5, 2).IsInvalidArgument());  // oid 2 is in use
  ASSERT_TRUE(index.Insert(5, 3).ok());
  EXPECT_TRUE(index.Insert(6, 3).IsInvalidArgument());  // reuse
  ASSERT_TRUE(index.Insert(6, 10).ok());  // gaps are allowed
}

TEST(UpdatableIndexTest, DeleteHidesTuples) {
  auto col = I64({10, 20, 30, 40});
  UpdatableCrackerIndex<int64_t> index(col, nullptr, NoAutoMerge());
  ASSERT_TRUE(index.Delete(1).ok());  // value 20
  auto sel = index.Select(0, true, 100, true);
  EXPECT_EQ(sel.count(), 3u);
  EXPECT_EQ(Values(index, sel), (std::multiset<int64_t>{10, 30, 40}));
  EXPECT_EQ(index.size(), 3u);
}

TEST(UpdatableIndexTest, DeleteValidation) {
  auto col = I64({10, 20});
  UpdatableCrackerIndex<int64_t> index(col, nullptr, NoAutoMerge());
  EXPECT_TRUE(index.Delete(99).IsNotFound());
  ASSERT_TRUE(index.Delete(0).ok());
  EXPECT_TRUE(index.Delete(0).IsAlreadyExists());
}

TEST(UpdatableIndexTest, DeletePendingInsertCancelsIt) {
  auto col = I64({10});
  UpdatableCrackerIndex<int64_t> index(col, nullptr, NoAutoMerge());
  ASSERT_TRUE(index.Insert(50, 1).ok());
  ASSERT_TRUE(index.Delete(1).ok());
  EXPECT_EQ(index.pending_inserts(), 0u);
  EXPECT_EQ(index.Select(0, true, 100, true).count(), 1u);
}

TEST(UpdatableIndexTest, CancelledPendingInsertStaysDead) {
  // Regression: a Delete() that cancels a pending insert must leave the oid
  // dead — a later Update() used to fall through the merged-tuple branch
  // and resurrect the row; a second Delete() used to report OK.
  auto col = I64({10});
  UpdatableCrackerIndex<int64_t> index(col, nullptr, NoAutoMerge());
  ASSERT_TRUE(index.Insert(50, 1).ok());
  ASSERT_TRUE(index.Delete(1).ok());
  EXPECT_TRUE(index.Update(60, 1).IsNotFound());
  EXPECT_TRUE(index.Delete(1).IsAlreadyExists());
  EXPECT_EQ(index.Select(0, true, 100, true).count(), 1u);  // only oid 0
}

TEST(UpdatableIndexTest, MergeFoldsDeltasAndPreservesBounds) {
  auto col = BuildPermutationColumn(1000, 3, "perm");
  UpdatableCrackerIndex<int64_t> index(col, nullptr, NoAutoMerge());
  // Learn some boundaries.
  index.Select(100, true, 200, true);
  index.Select(500, true, 700, true);
  size_t pieces_before = index.num_pieces();

  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(index.Insert(150 + i, 1000 + static_cast<Oid>(i)).ok());
  }
  ASSERT_TRUE(index.Delete(0).ok());
  ASSERT_TRUE(index.Merge().ok());

  EXPECT_EQ(index.pending_inserts(), 0u);
  EXPECT_EQ(index.pending_deletes(), 0u);
  EXPECT_EQ(index.size(), 1000u + 50u - 1u);
  // Learned navigation survives the merge.
  EXPECT_GE(index.num_pieces(), pieces_before);
  ASSERT_TRUE(index.Validate().ok());

  // The merged inserts are answered from the cracked area now.
  auto sel = index.Select(100, true, 200, true);
  EXPECT_TRUE(sel.delta.empty());
  // 101 original values in [100,200] (permutation) + 50 inserts of
  // 150..199, possibly minus the deleted row's value.
  int64_t deleted_value = col->Get<int64_t>(0);
  uint64_t expected = 101 + 50 -
                      ((deleted_value >= 100 && deleted_value <= 200) ? 1 : 0);
  EXPECT_EQ(sel.count(), expected);
}

TEST(UpdatableIndexTest, AutoMergeTriggers) {
  auto col = BuildPermutationColumn(100, 5, "perm");
  UpdatableCrackerIndexOptions opts;
  opts.auto_merge_fraction = 0.05;  // merge after ~5 pending ops
  UpdatableCrackerIndex<int64_t> index(col, nullptr, opts);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(index.Insert(1000 + i, 100 + static_cast<Oid>(i)).ok());
  }
  auto sel = index.Select(0, true, 2000, true);
  EXPECT_EQ(sel.count(), 110u);
  EXPECT_EQ(index.pending_inserts(), 0u);  // merged on the way in
  ASSERT_TRUE(index.Validate().ok());
}

TEST(UpdatableIndexTest, OidsStableAcrossMerge) {
  auto col = I64({10, 20, 30});
  UpdatableCrackerIndex<int64_t> index(col, nullptr, NoAutoMerge());
  ASSERT_TRUE(index.Insert(25, 7).ok());
  ASSERT_TRUE(index.Merge().ok());
  auto sel = index.Select(25, true, 25, true);
  ASSERT_EQ(sel.count(), 1u);
  std::vector<Oid> oids;
  index.ForEach(sel, [&](int64_t, Oid oid) { oids.push_back(oid); });
  ASSERT_EQ(oids.size(), 1u);
  EXPECT_EQ(oids[0], 7u);  // original insert oid survived the merge
}

TEST(UpdatableIndexTest, DeleteAfterMergeOfThatOidFails) {
  auto col = I64({10, 20});
  UpdatableCrackerIndex<int64_t> index(col, nullptr, NoAutoMerge());
  ASSERT_TRUE(index.Delete(1).ok());
  ASSERT_TRUE(index.Merge().ok());
  EXPECT_TRUE(index.Delete(1).IsAlreadyExists());  // physically gone
}

TEST(UpdatableIndexTest, StatsChargedForDeltaWork) {
  auto col = BuildPermutationColumn(1000, 9, "perm");
  UpdatableCrackerIndex<int64_t> index(col, nullptr, NoAutoMerge());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(index.Insert(i, 1000 + static_cast<Oid>(i)).ok());
  }
  IoStats stats;
  index.Select(0, true, 500, true, &stats);
  EXPECT_GE(stats.tuples_read, 20u);  // pending list was consulted
  IoStats merge_stats;
  ASSERT_TRUE(index.Merge(&merge_stats).ok());
  EXPECT_GT(merge_stats.tuples_written, 0u);
}

// Randomized interleaving of inserts, deletes, merges and queries against a
// naive map-based reference.
class UpdatableIndexPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(UpdatableIndexPropertyTest, MatchesNaiveReference) {
  uint64_t seed = GetParam();
  Pcg32 rng(seed);
  const int64_t kDomain = 500;
  const size_t kInitial = 300;

  std::vector<int64_t> initial(kInitial);
  for (auto& v : initial) v = rng.NextInRange(0, kDomain);
  auto col = I64(initial);
  UpdatableCrackerIndex<int64_t> index(col, nullptr, NoAutoMerge());

  std::map<Oid, int64_t> reference;
  for (size_t i = 0; i < kInitial; ++i) reference[i] = initial[i];
  Oid next_oid = kInitial;

  for (int op = 0; op < 300; ++op) {
    switch (rng.NextBounded(10)) {
      case 0:
      case 1:
      case 2: {  // insert
        int64_t v = rng.NextInRange(0, kDomain);
        ASSERT_TRUE(index.Insert(v, next_oid).ok());
        reference[next_oid] = v;
        ++next_oid;
        break;
      }
      case 3:
      case 4: {  // delete a random live oid
        if (reference.empty()) break;
        auto it = reference.begin();
        std::advance(it, rng.NextBounded(
                             static_cast<uint32_t>(reference.size())));
        ASSERT_TRUE(index.Delete(it->first).ok());
        reference.erase(it);
        break;
      }
      case 5: {  // merge
        ASSERT_TRUE(index.Merge().ok());
        break;
      }
      default: {  // query
        int64_t a = rng.NextInRange(0, kDomain);
        int64_t b = rng.NextInRange(0, kDomain);
        int64_t lo = std::min(a, b);
        int64_t hi = std::max(a, b);
        auto sel = index.Select(lo, true, hi, true);
        std::multiset<int64_t> expected;
        for (const auto& [oid, v] : reference) {
          if (v >= lo && v <= hi) expected.insert(v);
        }
        ASSERT_EQ(Values(index, sel), expected) << "op " << op;
        ASSERT_EQ(sel.count(), expected.size()) << "op " << op;
        break;
      }
    }
    ASSERT_EQ(index.size(), reference.size()) << "op " << op;
  }
  ASSERT_TRUE(index.Validate().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, UpdatableIndexPropertyTest,
                         ::testing::Values(1, 2, 3, 20040901));

}  // namespace
}  // namespace crackstore
