// Copyright 2026 The CrackStore Authors
//
// End-to-end integration tests: full MQS sessions against the AdaptiveStore
// under every strategy, cross-checked per step; engine-level workloads; the
// §5.1 SQL-level cracking round trip.

#include <gtest/gtest.h>

#include <map>
#include <utility>
#include <vector>

#include "core/adaptive_store.h"
#include "util/rng.h"
#include "engine/colstore_engine.h"
#include "engine/rowstore_engine.h"
#include "sim/crack_sim.h"
#include "workload/sequence.h"
#include "workload/tapestry.h"

namespace crackstore {
namespace {

std::shared_ptr<Relation> Tapestry(uint64_t n, uint64_t seed = 77) {
  TapestryOptions opts;
  opts.num_rows = n;
  opts.seed = seed;
  return *BuildTapestry("R", opts);
}

AdaptiveStoreOptions WithStrategy(AccessStrategy strategy,
                                  bool track_lineage) {
  AdaptiveStoreOptions opts;
  opts.strategy = strategy;
  opts.track_lineage = track_lineage;
  return opts;
}

class MqsSessionTest : public ::testing::TestWithParam<Profile> {};

TEST_P(MqsSessionTest, StrategiesAgreeStepByStep) {
  const uint64_t n = 20000;
  auto rel = Tapestry(n);

  MqsSpec spec;
  spec.num_rows = n;
  spec.sequence_length = 32;
  spec.target_selectivity = 0.05;
  spec.profile = GetParam();
  spec.seed = 4242;
  auto queries = GenerateSequence(spec);
  ASSERT_TRUE(queries.ok());

  AdaptiveStore scan(WithStrategy(AccessStrategy::kScan, false));
  AdaptiveStore crack(WithStrategy(AccessStrategy::kCrack, true));
  AdaptiveStore sort(WithStrategy(AccessStrategy::kSort, false));
  for (AdaptiveStore* s : {&scan, &crack, &sort}) {
    ASSERT_TRUE(s->AddTable(rel).ok());
  }

  for (const RangeQuery& q : *queries) {
    RangeBounds range = RangeBounds::Closed(q.lo, q.hi);
    auto a = scan.SelectRange("R", "c0", range);
    auto b = crack.SelectRange("R", "c0", range);
    auto c = sort.SelectRange("R", "c0", range);
    ASSERT_TRUE(a.ok() && b.ok() && c.ok());
    ASSERT_EQ(a->count, b->count) << "step " << q.step;
    ASSERT_EQ(a->count, c->count) << "step " << q.step;
    // Tapestry columns are permutations: count == window width.
    ASSERT_EQ(a->count, static_cast<uint64_t>(q.width())) << "step " << q.step;
  }

  // Cracking accumulated less read volume than scanning by the end.
  EXPECT_LT(crack.total_io().tuples_read, scan.total_io().tuples_read);
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, MqsSessionTest,
                         ::testing::Values(Profile::kHomerun,
                                           Profile::kHiking,
                                           Profile::kStrolling,
                                           Profile::kStrollingConverge));

TEST(IntegrationTest, HomerunCrackBeatsScanInTouchedTuples) {
  const uint64_t n = 100000;
  auto rel = Tapestry(n);
  MqsSpec spec;
  spec.num_rows = n;
  spec.sequence_length = 64;
  spec.target_selectivity = 0.05;
  // The exponential user trims the candidate set early (paper §4); from
  // then on cracking touches only the small target region while the scan
  // keeps reading everything — the factor-4+ win of Fig. 10.
  spec.rho = ContractionModel::kExponential;
  spec.profile = Profile::kHomerun;
  auto queries = *GenerateSequence(spec);

  AdaptiveStore scan(WithStrategy(AccessStrategy::kScan, false));
  AdaptiveStore crack(WithStrategy(AccessStrategy::kCrack, false));
  ASSERT_TRUE(scan.AddTable(rel).ok());
  ASSERT_TRUE(crack.AddTable(rel).ok());
  for (const RangeQuery& q : queries) {
    RangeBounds range = RangeBounds::Closed(q.lo, q.hi);
    ASSERT_TRUE(scan.SelectRange("R", "c0", range).ok());
    ASSERT_TRUE(crack.SelectRange("R", "c0", range).ok());
  }
  // Fig. 10's claim: the cracking total is a multiple below the scan total.
  EXPECT_LT(crack.total_io().tuples_read * 3,
            scan.total_io().tuples_read);
}

TEST(IntegrationTest, LineageStaysLosslessThroughSession) {
  auto rel = Tapestry(5000);
  AdaptiveStore store;
  ASSERT_TRUE(store.AddTable(rel).ok());
  Pcg32 rng(5);
  for (int q = 0; q < 25; ++q) {
    int64_t lo = rng.NextInRange(1, 4500);
    ASSERT_TRUE(
        store.SelectRange("R", "c0", RangeBounds::Closed(lo, lo + 400)).ok());
  }
  ASSERT_GT(store.lineage().num_pieces(), 10u);
  EXPECT_TRUE(store.lineage().CheckLossless(0).ok());
  // Leaves of the lineage root tile the column exactly.
  uint64_t leaf_sum = 0;
  for (PieceId leaf : store.lineage().Leaves(0)) {
    leaf_sum += store.lineage().piece(leaf).size;
  }
  EXPECT_EQ(leaf_sum, 5000u);
}

TEST(IntegrationTest, SqlLevelCrackingRoundTrip) {
  // §5.1: crack at the SQL level, then answer the same query from the
  // partitioned table and compare against the monolithic table.
  RowEngine engine;
  ASSERT_TRUE(engine.ImportRelation(*Tapestry(2000)).ok());
  ASSERT_TRUE(
      engine.CrackTableSql("R", "c0", RangeBounds::AtMost(800), "Rp").ok());

  for (auto [lo, hi] : std::vector<std::pair<int64_t, int64_t>>{
           {1, 100}, {700, 900}, {900, 2000}, {1, 2000}}) {
    auto direct = engine.RunSelect("R", "c0", RangeBounds::Closed(lo, hi),
                                   DeliveryMode::kCount);
    auto partitioned = engine.RunSelectPartitioned(
        "Rp", "c0", RangeBounds::Closed(lo, hi), DeliveryMode::kCount);
    ASSERT_TRUE(direct.ok() && partitioned.ok());
    EXPECT_EQ(direct->count, partitioned->count) << lo << ".." << hi;
  }

  // Pruned query reads fewer tuples than the monolithic scan.
  auto pruned = engine.RunSelectPartitioned(
      "Rp", "c0", RangeBounds::Closed(1, 100), DeliveryMode::kCount);
  ASSERT_TRUE(pruned.ok());
  EXPECT_LT(pruned->io.tuples_read, 2000u);
}

TEST(IntegrationTest, WedgeThenXiComposition) {
  // The paper's Fig. 5 session shape: Ξ on R.a, then ^ on R.k = S.k, then a
  // Ξ on S.b — all through the facade, checking counts against scans.
  TapestryOptions opts;
  opts.num_rows = 3000;
  opts.seed = 9;
  auto r = *BuildTapestry("R", opts);
  opts.seed = 10;
  auto s = *BuildTapestry("S", opts);

  AdaptiveStore crack(WithStrategy(AccessStrategy::kCrack, true));
  AdaptiveStore scan(WithStrategy(AccessStrategy::kScan, false));
  for (AdaptiveStore* store : {&crack, &scan}) {
    ASSERT_TRUE(store->AddTable(r).ok());
    ASSERT_TRUE(store->AddTable(s).ok());
  }

  for (AdaptiveStore* store : {&crack, &scan}) {
    auto q1 = store->SelectRange("R", "c1", RangeBounds::LessThan(10));
    ASSERT_TRUE(q1.ok());
    EXPECT_EQ(q1->count, 9u);
    auto q2 = store->JoinOids("R", "c0", "S", "c0");
    ASSERT_TRUE(q2.ok());
    EXPECT_EQ(q2->size(), 3000u);
    auto q3 = store->SelectRange("S", "c1", RangeBounds::GreaterThan(2975));
    ASSERT_TRUE(q3.ok());
    EXPECT_EQ(q3->count, 25u);
  }
}

TEST(IntegrationTest, GroupByAfterCracking) {
  // Ω composed with Ξ: crack a column, then group-aggregate another.
  Schema schema({{"g", ValueType::kInt64}, {"v", ValueType::kInt64}});
  auto rel = *Relation::Create("G", schema);
  Pcg32 rng(21);
  std::map<int64_t, int64_t> expected_sum;
  for (int i = 0; i < 2000; ++i) {
    int64_t g = rng.NextInRange(0, 9);
    int64_t v = rng.NextInRange(-50, 50);
    ASSERT_TRUE(rel->AppendRow({Value(g), Value(v)}).ok());
    expected_sum[g] += v;
  }
  AdaptiveStore store;
  ASSERT_TRUE(store.AddTable(rel).ok());
  ASSERT_TRUE(store.SelectRange("G", "v", RangeBounds::AtLeast(0)).ok());
  auto sums = store.GroupBy("G", "g", "v", AggKind::kSum);
  ASSERT_TRUE(sums.ok());
  ASSERT_EQ(sums->size(), 10u);
  for (const auto& agg : *sums) {
    EXPECT_EQ(agg.value, expected_sum[agg.group]) << "group " << agg.group;
  }
}

TEST(IntegrationTest, CrackingAVerticalFragment) {
  // Ψ then Ξ: crack a table vertically, register the projected fragment as
  // its own table, and range-crack inside it — the oid surrogates keep the
  // fragment joinable back to the remainder afterwards.
  auto rel = Tapestry(2000);
  AdaptiveStore store;
  ASSERT_TRUE(store.AddTable(rel).ok());
  auto psi = store.Project("R", {"c0"});
  ASSERT_TRUE(psi.ok());
  ASSERT_TRUE(store.AddTable(psi->projected).ok());

  auto result = store.SelectRange(psi->projected->name(), "c0",
                                  RangeBounds::Closed(100, 200),
                                  Delivery::kView);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->count, 101u);

  // Reconstruct the original through the surrogates and spot-check rows.
  auto rebuilt = ReconstructProjection(*psi, rel->schema(), "R2");
  ASSERT_TRUE(rebuilt.ok());
  for (size_t i : {size_t{0}, size_t{999}, size_t{1999}}) {
    EXPECT_EQ((*rebuilt)->GetRow(i), rel->GetRow(i));
  }
}

TEST(IntegrationTest, MergeBudgetSessionKeepsLineageConsistent) {
  // Long session with an aggressive fusion budget: every drop trims the
  // lineage subtree (§3.2's inverse operation); the DAG must stay loss-less
  // throughout.
  auto rel = Tapestry(10000);
  AdaptiveStoreOptions opts;
  opts.strategy = AccessStrategy::kCrack;
  opts.merge_budget = MergeBudget{MergePolicyKind::kLeastRecentlyUsed, 6};
  AdaptiveStore store(opts);
  ASSERT_TRUE(store.AddTable(rel).ok());
  Pcg32 rng(3);
  for (int q = 0; q < 60; ++q) {
    int64_t lo = rng.NextInRange(1, 9000);
    auto result =
        store.SelectRange("R", "c0", RangeBounds::Closed(lo, lo + 500));
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->count, 501u) << "query " << q;
    ASSERT_TRUE(store.lineage().CheckLossless(0).ok()) << "query " << q;
  }
  // Budget 6 bounds -> at most 13 pieces.
  EXPECT_LE(*store.NumPieces("R", "c0"), 13u);
  // Leaves of the (repeatedly trimmed) root still tile the column.
  uint64_t leaf_sum = 0;
  for (PieceId leaf : store.lineage().Leaves(0)) {
    leaf_sum += store.lineage().piece(leaf).size;
  }
  EXPECT_EQ(leaf_sum, 10000u);
}

TEST(IntegrationTest, SimAgreesWithRealStoreOnTouchedTuples) {
  // The §2.2 simulation and the real cracker must tell the same story: the
  // first query touches everything, later ones touch little.
  CrackSimOptions opts;
  opts.num_granules = 20000;
  opts.selectivity = 0.05;
  opts.steps = 20;
  auto sim = RunCrackSimulation(opts);
  ASSERT_TRUE(sim.ok());

  auto rel = Tapestry(20000);
  AdaptiveStore store;
  ASSERT_TRUE(store.AddTable(rel).ok());
  Pcg32 rng(opts.seed ^ 0xC0FFEE);
  uint64_t store_first = 0, store_last = 0;
  for (int q = 0; q < 20; ++q) {
    int64_t lo = rng.NextInRange(1, 19000);
    auto result =
        store.SelectRange("R", "c0", RangeBounds::Closed(lo, lo + 999));
    ASSERT_TRUE(result.ok());
    if (q == 0) store_first = result->io.tuples_read;
    store_last = result->io.tuples_read;
  }
  EXPECT_GE(store_first, 20000u);
  EXPECT_LT(store_last, 6000u);
  EXPECT_EQ(sim->steps.front().crack_touched, 20000u);
  EXPECT_LT(sim->steps.back().crack_touched, 6000u);
}

}  // namespace
}  // namespace crackstore
