// Copyright 2026 The CrackStore Authors
//
// Tests for the §2.2 granule-vector simulation (Figs. 2-3).

#include <gtest/gtest.h>

#include "sim/crack_sim.h"

namespace crackstore {
namespace {

CrackSimOptions Opts(double sigma, size_t steps = 20,
                     uint64_t n = 50000) {
  CrackSimOptions o;
  o.num_granules = n;
  o.selectivity = sigma;
  o.steps = steps;
  o.seed = 7;
  o.repetitions = 5;
  return o;
}

TEST(CrackSimTest, ValidatesOptions) {
  EXPECT_TRUE(RunCrackSimulation(Opts(0.0)).status().IsInvalidArgument());
  EXPECT_TRUE(RunCrackSimulation(Opts(1.5)).status().IsInvalidArgument());
  EXPECT_TRUE(RunCrackSimulation(Opts(0.1, 0)).status().IsInvalidArgument());
  CrackSimOptions zero = Opts(0.1);
  zero.num_granules = 0;
  EXPECT_TRUE(RunCrackSimulation(zero).status().IsInvalidArgument());
}

TEST(CrackSimTest, ProducesOneRecordPerStep) {
  auto result = RunCrackSimulation(Opts(0.05, 20));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->steps.size(), 20u);
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(result->steps[i].step, i + 1);
  }
}

TEST(CrackSimTest, AnswerMatchesSelectivity) {
  auto result = RunCrackSimulation(Opts(0.05));
  ASSERT_TRUE(result.ok());
  for (const auto& s : result->steps) {
    EXPECT_NEAR(static_cast<double>(s.answer) / 50000.0, 0.05, 0.001);
  }
}

TEST(CrackSimTest, FirstStepRewritesDatabase) {
  // Paper: "Selecting a few tuples (1%) in the first step generates a
  // sizable overhead, because the database is effectively completely
  // rewritten." — the whole vector is cracked: overhead fraction 1.0.
  auto result = RunCrackSimulation(Opts(0.01));
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->steps.front().fractional_write_overhead, 1.0, 0.02);
}

TEST(CrackSimTest, OverheadDwindlesRapidly) {
  // Paper: after a few steps the cracking write overhead dwindles (the
  // text claims below the answer size by step 5; the conservative
  // rewrite-the-piece cost model reaches ~2x the answer size by the end of
  // the 40-step sequence — the decay shape is what Fig. 2 shows).
  auto result = RunCrackSimulation(Opts(0.05, 40));
  ASSERT_TRUE(result.ok());
  double first = result->steps.front().fractional_write_overhead;
  double tail = 0.0;
  for (size_t i = 30; i < 40; ++i) {
    tail += result->steps[i].fractional_write_overhead;
  }
  tail /= 10.0;
  EXPECT_GT(first, 0.9);
  EXPECT_LT(tail, first / 5);
  EXPECT_LT(tail, 0.12);
}

TEST(CrackSimTest, CumulativeStartsAtTwo) {
  // Step 1: the crack reads and rewrites the vector and delivers the
  // answer; the baseline reads the vector and writes the answer -> exactly
  // 2.0 (the top of Fig. 3's y-axis).
  auto result = RunCrackSimulation(Opts(0.05));
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->steps.front().cumulative_overhead, 2.0, 0.01);
}

TEST(CrackSimTest, BreakEvenWithinHandfulOfQueries) {
  // Fig. 3: "the break-even point is already reached after a handful of
  // queries" — cumulative overhead drops below 1.0.
  auto result = RunCrackSimulation(Opts(0.05));
  ASSERT_TRUE(result.ok());
  size_t break_even = 0;
  for (const auto& s : result->steps) {
    if (s.cumulative_overhead < 1.0) {
      break_even = s.step;
      break;
    }
  }
  EXPECT_GT(break_even, 0u);
  EXPECT_LE(break_even, 12u);
}

TEST(CrackSimTest, CumulativeConvergesTowardSigmaFloor) {
  // The steady-state crack cost is answering only: ~2σN per query against
  // a (1+σ)N baseline; residual cracking keeps the measured value slightly
  // above the 2σ/(1+σ) floor.
  auto result = RunCrackSimulation(Opts(0.2, 100));
  ASSERT_TRUE(result.ok());
  double floor = 2 * 0.2 / (1 + 0.2);
  double final_overhead = result->steps.back().cumulative_overhead;
  EXPECT_GT(final_overhead, floor - 0.05);
  EXPECT_LT(final_overhead, 0.6);
}

TEST(CrackSimTest, HigherSelectivityKeepsHigherFloor) {
  auto low = RunCrackSimulation(Opts(0.05, 50));
  auto high = RunCrackSimulation(Opts(0.6, 50));
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(high.ok());
  EXPECT_LT(low->steps.back().cumulative_overhead,
            high->steps.back().cumulative_overhead);
}

TEST(CrackSimTest, PiecesGrowMonotonically) {
  auto result = RunCrackSimulation(Opts(0.1, 30));
  ASSERT_TRUE(result.ok());
  size_t prev = 0;
  for (const auto& s : result->steps) {
    EXPECT_GE(s.pieces, prev);
    prev = s.pieces;
  }
  EXPECT_GT(prev, 10u);  // 30 random ranges delimit many pieces
}

TEST(CrackSimTest, SortBaselineClosedForm) {
  auto result = RunCrackSimulation(Opts(0.05, 5, 1 << 16));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->sort_upfront_writes, (1u << 16) * 16u);
  EXPECT_DOUBLE_EQ(result->sort_breakeven_queries, 16.0);
}

TEST(CrackSimTest, DeterministicInSeed) {
  auto a = RunCrackSimulation(Opts(0.1));
  auto b = RunCrackSimulation(Opts(0.1));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < a->steps.size(); ++i) {
    EXPECT_EQ(a->steps[i].crack_touched, b->steps[i].crack_touched);
    EXPECT_EQ(a->steps[i].answer, b->steps[i].answer);
  }
}

TEST(CrackSimTest, CrackCostDecaysPerStep) {
  auto result = RunCrackSimulation(Opts(0.05, 40));
  ASSERT_TRUE(result.ok());
  uint64_t first = result->steps.front().crack_touched;
  uint64_t late = result->steps.back().crack_touched;
  EXPECT_EQ(first, 50000u);  // whole vector cracked at step 1
  EXPECT_LT(late, first / 5);
}

}  // namespace
}  // namespace crackstore
