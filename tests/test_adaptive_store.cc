// Copyright 2026 The CrackStore Authors
//
// Tests for the AdaptiveStore facade: strategy equivalence, delivery modes,
// joins, group-bys, lineage integration and merge budgets.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/adaptive_store.h"
#include "util/rng.h"
#include "workload/tapestry.h"

namespace crackstore {
namespace {

std::shared_ptr<Relation> SmallTapestry(uint64_t n = 2000,
                                        uint64_t seed = 42) {
  TapestryOptions opts;
  opts.num_rows = n;
  opts.num_columns = 2;
  opts.seed = seed;
  return *BuildTapestry("R", opts);
}

AdaptiveStoreOptions WithStrategy(AccessStrategy s) {
  AdaptiveStoreOptions opts;
  opts.strategy = s;
  return opts;
}

TEST(AdaptiveStoreTest, AddAndLookupTables) {
  AdaptiveStore store;
  ASSERT_TRUE(store.AddTable(SmallTapestry()).ok());
  EXPECT_TRUE(store.table("R").ok());
  EXPECT_TRUE(store.table("S").status().IsNotFound());
  EXPECT_TRUE(store.AddTable(SmallTapestry()).IsAlreadyExists());
  EXPECT_TRUE(store.AddTable(nullptr).IsInvalidArgument());
  EXPECT_EQ(store.TableNames(), std::vector<std::string>{"R"});
}

TEST(AdaptiveStoreTest, CountQueryOnPermutation) {
  AdaptiveStore store;
  ASSERT_TRUE(store.AddTable(SmallTapestry()).ok());
  auto result = store.SelectRange("R", "c0", RangeBounds::Closed(100, 299));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->count, 200u);  // permutation of 1..N
}

TEST(AdaptiveStoreTest, AllStrategiesAgreeOnCounts) {
  auto rel = SmallTapestry();
  AdaptiveStore scan(WithStrategy(AccessStrategy::kScan));
  AdaptiveStore crack(WithStrategy(AccessStrategy::kCrack));
  AdaptiveStore sort(WithStrategy(AccessStrategy::kSort));
  ASSERT_TRUE(scan.AddTable(rel).ok());
  ASSERT_TRUE(crack.AddTable(rel).ok());
  ASSERT_TRUE(sort.AddTable(rel).ok());

  Pcg32 rng(7);
  for (int q = 0; q < 25; ++q) {
    int64_t lo = rng.NextInRange(-50, 2100);
    int64_t hi = lo + rng.NextInRange(0, 500);
    RangeBounds range{lo, rng.NextBounded(2) == 0, hi,
                      rng.NextBounded(2) == 0};
    auto a = scan.SelectRange("R", "c0", range);
    auto b = crack.SelectRange("R", "c0", range);
    auto c = sort.SelectRange("R", "c0", range);
    ASSERT_TRUE(a.ok() && b.ok() && c.ok());
    EXPECT_EQ(a->count, b->count) << "query " << q;
    EXPECT_EQ(a->count, c->count) << "query " << q;
  }
}

TEST(AdaptiveStoreTest, ViewDeliveryReturnsAlignedOids) {
  AdaptiveStore store;
  ASSERT_TRUE(store.AddTable(SmallTapestry()).ok());
  auto result = store.SelectRange("R", "c0", RangeBounds::Closed(1, 50),
                                  Delivery::kView);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->has_selection);
  auto rel = *store.table("R");
  auto c0 = *rel->column("c0");
  for (size_t i = 0; i < result->selection.count(); ++i) {
    Oid oid = result->selection.oids.Get<Oid>(i);
    EXPECT_EQ(c0->Get<int64_t>(static_cast<size_t>(oid)),
              result->selection.values.Get<int64_t>(i));
  }
}

TEST(AdaptiveStoreTest, ScanStrategyViewDeliversOidList) {
  AdaptiveStore store(WithStrategy(AccessStrategy::kScan));
  ASSERT_TRUE(store.AddTable(SmallTapestry()).ok());
  auto result = store.SelectRange("R", "c0", RangeBounds::Closed(1, 10),
                                  Delivery::kView);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->has_selection);
  EXPECT_EQ(result->scan_oids.size(), 10u);
}

TEST(AdaptiveStoreTest, MaterializeBuildsCorrectRelation) {
  auto rel = SmallTapestry();
  for (AccessStrategy s : {AccessStrategy::kScan, AccessStrategy::kCrack,
                           AccessStrategy::kSort}) {
    AdaptiveStore store(WithStrategy(s));
    ASSERT_TRUE(store.AddTable(rel).ok());
    auto result = store.SelectRange("R", "c0", RangeBounds::Closed(10, 19),
                                    Delivery::kMaterialize);
    ASSERT_TRUE(result.ok()) << AccessStrategyName(s);
    ASSERT_NE(result->materialized, nullptr);
    EXPECT_EQ(result->materialized->num_rows(), 10u);
    // Every materialized row must be a genuine source row.
    std::set<int64_t> c0_values;
    auto mat_c0 = *result->materialized->column("c0");
    for (size_t i = 0; i < 10; ++i) {
      int64_t v = mat_c0->Get<int64_t>(i);
      EXPECT_GE(v, 10);
      EXPECT_LE(v, 19);
      c0_values.insert(v);
    }
    EXPECT_EQ(c0_values.size(), 10u);
  }
}

TEST(AdaptiveStoreTest, MaterializedRowsKeepColumnAlignment) {
  AdaptiveStore store;
  auto rel = SmallTapestry();
  ASSERT_TRUE(store.AddTable(rel).ok());
  auto result = store.SelectRange("R", "c0", RangeBounds::Closed(500, 520),
                                  Delivery::kMaterialize);
  ASSERT_TRUE(result.ok());
  // For each materialized row, (c0, c1) must be a pair that exists in R.
  std::map<int64_t, int64_t> source_pairs;
  auto c0 = *rel->column("c0");
  auto c1 = *rel->column("c1");
  for (size_t i = 0; i < rel->num_rows(); ++i) {
    source_pairs[c0->Get<int64_t>(i)] = c1->Get<int64_t>(i);
  }
  auto mat = result->materialized;
  auto m0 = *mat->column("c0");
  auto m1 = *mat->column("c1");
  for (size_t i = 0; i < mat->num_rows(); ++i) {
    EXPECT_EQ(source_pairs.at(m0->Get<int64_t>(i)), m1->Get<int64_t>(i));
  }
}

TEST(AdaptiveStoreTest, CrackingGetsCheaperOverSequence) {
  AdaptiveStore store;
  ASSERT_TRUE(store.AddTable(SmallTapestry(50000)).ok());
  Pcg32 rng(9);
  uint64_t first = 0;
  uint64_t last = 0;
  for (int q = 0; q < 30; ++q) {
    int64_t lo = rng.NextInRange(1, 45000);
    auto result =
        store.SelectRange("R", "c0", RangeBounds::Closed(lo, lo + 2500));
    ASSERT_TRUE(result.ok());
    if (q == 0) first = result->io.tuples_read;
    last = result->io.tuples_read;
  }
  EXPECT_LT(last, first / 4);
}

TEST(AdaptiveStoreTest, NumPiecesGrowsUnderCracking) {
  AdaptiveStore store;
  ASSERT_TRUE(store.AddTable(SmallTapestry()).ok());
  EXPECT_EQ(*store.NumPieces("R", "c0"), 1u);
  ASSERT_TRUE(store.SelectRange("R", "c0", RangeBounds::Closed(10, 50)).ok());
  EXPECT_EQ(*store.NumPieces("R", "c0"), 3u);
  ASSERT_TRUE(
      store.SelectRange("R", "c0", RangeBounds::Closed(100, 200)).ok());
  EXPECT_GT(*store.NumPieces("R", "c0"), 3u);
}

TEST(AdaptiveStoreTest, MergeBudgetCapsBounds) {
  AdaptiveStoreOptions opts;
  opts.strategy = AccessStrategy::kCrack;
  opts.merge_budget = MergeBudget{MergePolicyKind::kLeastRecentlyUsed, 4};
  AdaptiveStore store(opts);
  ASSERT_TRUE(store.AddTable(SmallTapestry(10000)).ok());
  Pcg32 rng(11);
  for (int q = 0; q < 30; ++q) {
    int64_t lo = rng.NextInRange(1, 9000);
    auto result =
        store.SelectRange("R", "c0", RangeBounds::Closed(lo, lo + 500));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->count, 501u);
  }
  // <= 4 bounds -> at most 9 pieces (each bound contributes <= 2 cuts).
  EXPECT_LE(*store.NumPieces("R", "c0"), 9u);
}

TEST(AdaptiveStoreTest, LineageTracksXiSplits) {
  AdaptiveStore store;
  ASSERT_TRUE(store.AddTable(SmallTapestry()).ok());
  ASSERT_TRUE(
      store.SelectRange("R", "c0", RangeBounds::Closed(100, 200)).ok());
  const LineageGraph& lineage = store.lineage();
  ASSERT_GE(lineage.num_pieces(), 4u);  // root + 3 pieces
  // The root piece is the whole column and lossless-checkable.
  EXPECT_TRUE(lineage.CheckLossless(0).ok());
  EXPECT_EQ(lineage.Leaves(0).size(), 3u);
}

TEST(AdaptiveStoreTest, LineageDisabledWhenConfiguredOff) {
  AdaptiveStoreOptions opts;
  opts.track_lineage = false;
  AdaptiveStore store(opts);
  ASSERT_TRUE(store.AddTable(SmallTapestry()).ok());
  ASSERT_TRUE(
      store.SelectRange("R", "c0", RangeBounds::Closed(100, 200)).ok());
  EXPECT_EQ(store.lineage().num_pieces(), 0u);
}

TEST(AdaptiveStoreTest, SelectRangeValidatesInputs) {
  AdaptiveStore store;
  ASSERT_TRUE(store.AddTable(SmallTapestry()).ok());
  EXPECT_TRUE(store.SelectRange("X", "c0", RangeBounds::Closed(1, 2))
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(store.SelectRange("R", "zz", RangeBounds::Closed(1, 2))
                  .status()
                  .IsNotFound());
}

TEST(AdaptiveStoreTest, JoinOidsMatchesAcrossStrategies) {
  TapestryOptions opts;
  opts.num_rows = 500;
  auto r = *BuildTapestry("R", opts);
  opts.seed += 1;
  auto s = *BuildTapestry("S", opts);

  AdaptiveStore crack(WithStrategy(AccessStrategy::kCrack));
  AdaptiveStore scan(WithStrategy(AccessStrategy::kScan));
  for (AdaptiveStore* store : {&crack, &scan}) {
    ASSERT_TRUE(store->AddTable(r).ok());
    ASSERT_TRUE(store->AddTable(s).ok());
  }
  auto a = crack.JoinOids("R", "c0", "S", "c0");
  auto b = scan.JoinOids("R", "c0", "S", "c0");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Permutation x permutation: every tuple matches exactly once.
  EXPECT_EQ(a->size(), 500u);
  EXPECT_EQ(b->size(), 500u);
}

TEST(AdaptiveStoreTest, JoinEqualsCachesWedgeCrack) {
  TapestryOptions opts;
  opts.num_rows = 1000;
  auto r = *BuildTapestry("R", opts);
  opts.seed += 1;
  auto s = *BuildTapestry("S", opts);
  AdaptiveStore store;
  ASSERT_TRUE(store.AddTable(r).ok());
  ASSERT_TRUE(store.AddTable(s).ok());

  auto first = store.JoinEquals("R", "c0", "S", "c0");
  ASSERT_TRUE(first.ok());
  auto second = store.JoinEquals("R", "c0", "S", "c0");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->count, second->count);
  // The cached ^ crack means no new crack work on the repeat.
  EXPECT_EQ(second->io.cracks, 0u);
  EXPECT_LT(second->io.tuples_read, first->io.tuples_read);
}

TEST(AdaptiveStoreTest, GroupByAggregates) {
  Schema schema({{"g", ValueType::kInt64}, {"v", ValueType::kInt64}});
  auto rel = *Relation::Create("G", schema);
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(rel->AppendRow({Value(i % 4), Value(i)}).ok());
  }
  AdaptiveStore store;
  ASSERT_TRUE(store.AddTable(rel).ok());
  auto counts = store.GroupBy("G", "g", "v", AggKind::kCount);
  ASSERT_TRUE(counts.ok());
  ASSERT_EQ(counts->size(), 4u);
  for (const auto& agg : *counts) EXPECT_EQ(agg.value, 25);
  auto sums = store.GroupBy("G", "g", "v", AggKind::kSum);
  ASSERT_TRUE(sums.ok());
  int64_t total = 0;
  for (const auto& agg : *sums) total += agg.value;
  EXPECT_EQ(total, 99 * 100 / 2);
}

TEST(AdaptiveStoreTest, ProjectRegistersPsiLineage) {
  AdaptiveStore store;
  ASSERT_TRUE(store.AddTable(SmallTapestry()).ok());
  auto cracked = store.Project("R", {"c0"});
  ASSERT_TRUE(cracked.ok());
  EXPECT_EQ(cracked->projected->num_columns(), 2u);  // oid + c0
  bool saw_psi = false;
  for (size_t i = 0; i < store.lineage().num_pieces(); ++i) {
    saw_psi |= !store.lineage().piece(static_cast<PieceId>(i)).is_root &&
               store.lineage().piece(static_cast<PieceId>(i)).produced_by ==
                   CrackOp::kPsi;
  }
  EXPECT_TRUE(saw_psi);
}

TEST(AdaptiveStoreTest, TotalIoAccumulates) {
  AdaptiveStore store;
  ASSERT_TRUE(store.AddTable(SmallTapestry()).ok());
  ASSERT_TRUE(store.SelectRange("R", "c0", RangeBounds::Closed(1, 10)).ok());
  EXPECT_GT(store.total_io().tuples_read, 0u);
  store.ResetTotalIo();
  EXPECT_EQ(store.total_io().tuples_read, 0u);
}

TEST(AdaptiveStoreTest, SentinelBoundsActAsOneSided) {
  AdaptiveStore store;
  ASSERT_TRUE(store.AddTable(SmallTapestry()).ok());
  auto less = store.SelectRange("R", "c0", RangeBounds::AtMost(100));
  ASSERT_TRUE(less.ok());
  EXPECT_EQ(less->count, 100u);
  auto greater = store.SelectRange("R", "c0", RangeBounds::GreaterThan(1900));
  ASSERT_TRUE(greater.ok());
  EXPECT_EQ(greater->count, 100u);
  auto all = store.SelectRange("R", "c0", RangeBounds::All());
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->count, 2000u);
}

TEST(AdaptiveStoreTest, ExplainColumnReportsState) {
  AdaptiveStore store;
  ASSERT_TRUE(store.AddTable(SmallTapestry()).ok());
  auto before = store.ExplainColumn("R", "c0");
  ASSERT_TRUE(before.ok());
  EXPECT_NE(before->find("no accelerator yet"), std::string::npos);

  ASSERT_TRUE(
      store.SelectRange("R", "c0", RangeBounds::Closed(100, 200)).ok());
  auto after = store.ExplainColumn("R", "c0");
  ASSERT_TRUE(after.ok());
  EXPECT_NE(after->find("3 pieces"), std::string::npos);
  EXPECT_NE(after->find("piece [0,"), std::string::npos);
  EXPECT_NE(after->find(">=100"), std::string::npos);

  EXPECT_TRUE(store.ExplainColumn("R", "zz").status().IsNotFound());
  EXPECT_TRUE(store.ExplainColumn("X", "c0").status().IsNotFound());
}

TEST(AdaptiveStoreTest, ExplainColumnSortStrategy) {
  AdaptiveStore store(WithStrategy(AccessStrategy::kSort));
  ASSERT_TRUE(store.AddTable(SmallTapestry()).ok());
  ASSERT_TRUE(
      store.SelectRange("R", "c0", RangeBounds::Closed(10, 20)).ok());
  auto report = store.ExplainColumn("R", "c0");
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->find("sorted copy present"), std::string::npos);
}

TEST(AdaptiveStoreTest, EqualRangeHelper) {
  AdaptiveStore store;
  ASSERT_TRUE(store.AddTable(SmallTapestry()).ok());
  auto eq = store.SelectRange("R", "c0", RangeBounds::Equal(1234));
  ASSERT_TRUE(eq.ok());
  EXPECT_EQ(eq->count, 1u);
}

}  // namespace
}  // namespace crackstore
