// Copyright 2026 The CrackStore Authors
//
// Tests for piece-fusion budgets and victim-selection policies.

#include <gtest/gtest.h>

#include "core/merge_policy.h"
#include "util/rng.h"
#include "workload/tapestry.h"

namespace crackstore {
namespace {

std::unique_ptr<CrackerIndex<int64_t>> MakeCrackedIndex(size_t n,
                                                        size_t queries,
                                                        uint64_t seed) {
  auto col = BuildPermutationColumn(n, seed, "perm");
  auto index = std::make_unique<CrackerIndex<int64_t>>(col);
  Pcg32 rng(seed ^ 0xFEED);
  for (size_t q = 0; q < queries; ++q) {
    int64_t lo = rng.NextInRange(1, static_cast<int64_t>(n) - 10);
    index->Select(lo, true, lo + 9, true);
  }
  return index;
}

TEST(MergePolicyTest, UnlimitedBudgetNeverDrops) {
  auto index = MakeCrackedIndex(1000, 20, 1);
  size_t bounds = index->num_bounds();
  MergeBudget none;  // kNone
  EXPECT_EQ(EnforceMergeBudget(index.get(), none), 0u);
  MergeBudget zero_cap{MergePolicyKind::kLeastRecentlyUsed, 0};
  EXPECT_EQ(EnforceMergeBudget(index.get(), zero_cap), 0u);
  EXPECT_EQ(index->num_bounds(), bounds);
}

TEST(MergePolicyTest, BudgetEnforced) {
  auto index = MakeCrackedIndex(1000, 30, 2);
  ASSERT_GT(index->num_bounds(), 8u);
  MergeBudget budget{MergePolicyKind::kLeastRecentlyUsed, 8};
  size_t dropped = EnforceMergeBudget(index.get(), budget);
  EXPECT_GT(dropped, 0u);
  EXPECT_LE(index->num_bounds(), 8u);
  EXPECT_TRUE(index->Validate().ok());
}

TEST(MergePolicyTest, LruDropsColdestBoundary) {
  auto col = BuildPermutationColumn(1000, 3, "perm");
  CrackerIndex<int64_t> index(col);
  index.Select(100, true, 200, true);  // bounds 100, 200
  index.Select(500, true, 600, true);  // bounds 500, 600
  // Re-touch 100/200 so 500 becomes the coldest.
  index.Select(100, true, 200, true);
  // 600 was touched later than 500 within the same query; re-touch it too.
  index.SelectLessThan(600, true);

  MergeBudget budget{MergePolicyKind::kLeastRecentlyUsed, 3};
  EXPECT_EQ(EnforceMergeBudget(&index, budget), 1u);
  bool has500 = false;
  for (const auto& b : index.Bounds()) has500 |= (b.value == 500);
  EXPECT_FALSE(has500);
}

TEST(MergePolicyTest, FifoDropsOldestBoundary) {
  auto col = BuildPermutationColumn(1000, 4, "perm");
  CrackerIndex<int64_t> index(col);
  index.Select(100, true, 200, true);
  index.Select(500, true, 600, true);
  // Touching 100 again must NOT save it under FIFO (creation order rules).
  index.Select(100, true, 150, true);

  MergeBudget budget{MergePolicyKind::kOldestFirst, 4};
  EXPECT_EQ(EnforceMergeBudget(&index, budget), 1u);
  bool has100 = false;
  for (const auto& b : index.Bounds()) has100 |= (b.value == 100);
  EXPECT_FALSE(has100);  // 100 was created first -> dropped first
}

TEST(MergePolicyTest, SmallestPiecesFusesCrumbs) {
  auto col = BuildPermutationColumn(10000, 5, "perm");
  CrackerIndex<int64_t> index(col);
  // A big cut at 5000 and a crumb cut at 10-12 (tiny adjacent pieces).
  index.Select(1, true, 5000, true);
  index.Select(10, true, 12, true);
  MergeBudget budget{MergePolicyKind::kSmallestPieces, 2};
  size_t dropped = EnforceMergeBudget(&index, budget);
  EXPECT_GE(dropped, 1u);
  // The big boundary at 5000 must survive; crumbs around 10-12 fuse first.
  bool has5000 = false;
  for (const auto& b : index.Bounds()) has5000 |= (b.value == 5000);
  EXPECT_TRUE(has5000);
}

TEST(MergePolicyTest, QueriesStayCorrectAfterFusion) {
  auto col = BuildPermutationColumn(2000, 6, "perm");
  CrackerIndex<int64_t> index(col);
  Pcg32 rng(77);
  MergeBudget budget{MergePolicyKind::kLeastRecentlyUsed, 4};
  for (int q = 0; q < 40; ++q) {
    int64_t lo = rng.NextInRange(1, 1900);
    int64_t hi = lo + 99;
    CrackSelection sel = index.Select(lo, true, hi, true);
    EXPECT_EQ(sel.count(), 100u) << "query " << q;  // permutation of 1..N
    EnforceMergeBudget(&index, budget);
    ASSERT_TRUE(index.Validate().ok());
    ASSERT_LE(index.num_bounds(), 4u);
  }
}

TEST(MergePolicyTest, KindNamesAndParsing) {
  EXPECT_STREQ(MergePolicyKindName(MergePolicyKind::kNone), "none");
  EXPECT_STREQ(MergePolicyKindName(MergePolicyKind::kLeastRecentlyUsed),
               "lru");
  EXPECT_STREQ(MergePolicyKindName(MergePolicyKind::kOldestFirst), "fifo");
  EXPECT_STREQ(MergePolicyKindName(MergePolicyKind::kSmallestPieces),
               "smallest");
  EXPECT_EQ(MergePolicyKindFromString("lru"),
            MergePolicyKind::kLeastRecentlyUsed);
  EXPECT_EQ(MergePolicyKindFromString("fifo"), MergePolicyKind::kOldestFirst);
  EXPECT_EQ(MergePolicyKindFromString("smallest"),
            MergePolicyKind::kSmallestPieces);
  EXPECT_EQ(MergePolicyKindFromString("whatever"), MergePolicyKind::kNone);
}

TEST(MergePolicyTest, BudgetUnlimitedPredicate) {
  MergeBudget a;
  EXPECT_TRUE(a.unlimited());
  MergeBudget b{MergePolicyKind::kLeastRecentlyUsed, 0};
  EXPECT_TRUE(b.unlimited());
  MergeBudget c{MergePolicyKind::kLeastRecentlyUsed, 5};
  EXPECT_FALSE(c.unlimited());
}

}  // namespace
}  // namespace crackstore
