// Copyright 2026 The CrackStore Authors
//
// MVCC / snapshot-visibility suite: the versioned delta layer
// (core/txn_manager.h) end to end through the AdaptiveStore facade.
//
//   * timestamp / version-log units (TxnManager, VersionedTable);
//   * snapshot isolation across every {scan, crack, sort} x {standard,
//     stochastic, coarse} x string-dictionary access path: a reader that
//     opened its snapshot before a concurrent committed DELETE/UPDATE
//     keeps seeing the old rows and the old values;
//   * first-committer-wins write-write conflicts (the second committer
//     aborts) and full rollback (base values, accelerators, stamps);
//   * a randomized vacuum suite interleaving long-lived snapshots with
//     churn: old snapshots stay exact, post-vacuum storage shrinks, purged
//     rows stay dead;
//   * a free-running concurrent stress section (the TSan target): reader
//     transactions must observe frozen counts while writers churn.
//
// Randomized sections print their seed on failure; rerun a reported seed
// with CRACKSTORE_TEST_SEED=<seed>.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/adaptive_store.h"
#include "core/simd_dispatch.h"
#include "core/txn_manager.h"
#include "sql/executor.h"
#include "storage/relation.h"
#include "util/rng.h"

namespace crackstore {
namespace {

uint64_t TestSeed(uint64_t fallback) {
  const char* env = std::getenv("CRACKSTORE_TEST_SEED");
  if (env != nullptr && *env != '\0') return std::strtoull(env, nullptr, 10);
  return fallback;
}

// ---------------------------------------------------------------------------
// Unit layer: TxnManager and VersionedTable.
// ---------------------------------------------------------------------------

TEST(TxnManagerTest, TimestampsAndLowWater) {
  TxnManager mgr;
  EXPECT_EQ(mgr.LatestSnapshot().read_ts, 0u);
  EXPECT_EQ(mgr.low_water(), 0u);

  TxnId t1 = mgr.Begin();
  ASSERT_TRUE(mgr.IsActive(t1));
  EXPECT_EQ(mgr.SnapshotOf(t1)->read_ts, 0u);

  auto cts = mgr.FinishCommit(t1);
  ASSERT_TRUE(cts.ok());
  EXPECT_EQ(*cts, 1u);
  EXPECT_FALSE(mgr.IsActive(t1));
  EXPECT_EQ(mgr.LatestSnapshot().read_ts, 1u);

  // A transaction pinned before later commits holds the low-water mark.
  TxnId old_reader = mgr.Begin();
  TxnId writer = mgr.Begin();
  ASSERT_TRUE(mgr.FinishCommit(writer).ok());
  EXPECT_EQ(mgr.LatestSnapshot().read_ts, 2u);
  EXPECT_EQ(mgr.low_water(), 1u);  // pinned by old_reader
  ASSERT_TRUE(mgr.FinishRollback(old_reader).ok());
  EXPECT_EQ(mgr.low_water(), 2u);

  EXPECT_TRUE(mgr.FinishCommit(old_reader).status().IsNotFound());
}

TEST(TxnManagerTest, StampVisibility) {
  Snapshot snap{5, 7};
  EXPECT_TRUE(StampVisible(0, snap));    // since load
  EXPECT_TRUE(StampVisible(5, snap));    // committed at the snapshot
  EXPECT_FALSE(StampVisible(6, snap));   // committed after
  EXPECT_FALSE(StampVisible(kTsInfinity, snap));
  EXPECT_TRUE(StampVisible(TxnStamp(7), snap));   // own writes
  EXPECT_FALSE(StampVisible(TxnStamp(8), snap));  // someone else's
  EXPECT_FALSE(StampVisible(kTsAborted, snap));   // aborted insert
}

TEST(VersionedTableTest, AdmissionAndConflicts) {
  VersionedTable vt(/*base_oid=*/0, /*initial_rows=*/10);
  Snapshot s1{0, 1};
  Snapshot s2{0, 2};

  // Txn 1 locks row 3; txn 2 conflicts; txn 1 again is fine.
  EXPECT_EQ(vt.AdmitWrite(3, s1, 1, nullptr),
            VersionedTable::Admission::kOk);
  std::string why;
  EXPECT_EQ(vt.AdmitWrite(3, s2, 2, &why),
            VersionedTable::Admission::kConflict);
  EXPECT_FALSE(why.empty());
  EXPECT_EQ(vt.AdmitWrite(3, s1, 1, nullptr),
            VersionedTable::Admission::kOk);

  // Commit the delete at ts 4: a snapshot from ts 3 still sees the row, a
  // later one does not, and a writer with an older snapshot conflicts.
  vt.StampDelete(3, TxnStamp(1));
  vt.CommitTxn(1, 4, {3});
  EXPECT_TRUE(vt.RowVisibleAt(3, Snapshot{3, 0}));
  EXPECT_FALSE(vt.RowVisibleAt(3, Snapshot{4, 0}));
  EXPECT_EQ(vt.AdmitWrite(3, Snapshot{3, 2}, 2, &why),
            VersionedTable::Admission::kConflict);
  // At a current snapshot the row is simply gone: skip.
  EXPECT_EQ(vt.AdmitWrite(3, Snapshot{4, 2}, 2, nullptr),
            VersionedTable::Admission::kSkip);

  // Rows beyond the horizon postdate everything.
  EXPECT_FALSE(vt.RowVisibleAt(10, Snapshot{100, 0}));
  vt.NoteInsert(10, 5);
  EXPECT_TRUE(vt.RowVisibleAt(10, Snapshot{5, 0}));
  EXPECT_FALSE(vt.RowVisibleAt(10, Snapshot{4, 0}));
}

TEST(VersionedTableTest, VacuumHonorsLowWater) {
  VersionedTable vt(0, 10);
  // Delete row 1 at ts 2, row 2 at ts 5.
  EXPECT_EQ(vt.AdmitWrite(1, Snapshot{1, 0}, kNoTxn, nullptr),
            VersionedTable::Admission::kOk);
  vt.StampDelete(1, 2);
  EXPECT_EQ(vt.AdmitWrite(2, Snapshot{4, 0}, kNoTxn, nullptr),
            VersionedTable::Admission::kOk);
  vt.StampDelete(2, 5);

  // Low water 3: only the ts-2 delete is invisible to every snapshot.
  auto res = vt.Vacuum(3);
  EXPECT_EQ(res.purged, std::vector<Oid>{1});
  EXPECT_FALSE(vt.RowVisibleAt(1, Snapshot{1, 0}));  // purged: dead to all
  EXPECT_TRUE(vt.RowVisibleAt(2, Snapshot{4, 0}));   // still versioned

  res = vt.Vacuum(5);
  EXPECT_EQ(res.purged, std::vector<Oid>{2});
  EXPECT_EQ(vt.counts().row_versions, 0u);
  EXPECT_EQ(vt.counts().purged, 2u);
}

// ---------------------------------------------------------------------------
// Snapshot isolation across every access-path configuration.
// ---------------------------------------------------------------------------

struct StoreConfig {
  AccessStrategy strategy;
  CrackPolicy policy;
};

std::vector<StoreConfig> AllStoreConfigs() {
  std::vector<StoreConfig> configs{{AccessStrategy::kScan,
                                    CrackPolicy::kStandard},
                                   {AccessStrategy::kSort,
                                    CrackPolicy::kStandard}};
  for (CrackPolicy policy : {CrackPolicy::kStandard, CrackPolicy::kStochastic,
                             CrackPolicy::kCoarse}) {
    configs.push_back({AccessStrategy::kCrack, policy});
  }
  return configs;
}

std::string ConfigName(const StoreConfig& config) {
  return std::string(AccessStrategyName(config.strategy)) + "/" +
         CrackPolicyName(config.policy);
}

std::unique_ptr<AdaptiveStore> MakeStore(const StoreConfig& config,
                                         bool concurrent = false) {
  AdaptiveStoreOptions opts;
  opts.strategy = config.strategy;
  opts.policy.policy = config.policy;
  opts.policy.min_piece_size = 32;
  opts.delta_merge.policy = DeltaMergePolicy::kThreshold;
  opts.delta_merge.threshold_fraction = 0.1;
  opts.concurrent = concurrent;
  opts.track_lineage = false;
  return std::make_unique<AdaptiveStore>(opts);
}

TEST(SnapshotIsolationTest, ReaderKeepsOldRowsAcrossAllPaths) {
  for (const StoreConfig& config : AllStoreConfigs()) {
    SCOPED_TRACE("config=" + ConfigName(config));
    auto store = MakeStore(config);
    auto rel = *Relation::Create("t", Schema({{"v", ValueType::kInt64}}));
    for (int64_t i = 1; i <= 100; ++i) {
      ASSERT_TRUE(rel->AppendRow({Value(i)}).ok());
    }
    ASSERT_TRUE(store->AddTable(rel).ok());
    // Warm the accelerator before the snapshot opens.
    ASSERT_TRUE(store->SelectRange("t", "v", RangeBounds::Closed(1, 100)).ok());

    CRACK_CHECK(store->Begin().ok());
    TxnId reader = *store->Begin();

    // Concurrent committed DELETE (v <= 10) and UPDATE (v in [41, 50] ->
    // 1000) land after the reader's snapshot.
    ASSERT_TRUE(store->Delete("t", {{"v", RangeBounds::AtMost(10)}}).ok());
    ASSERT_TRUE(store
                    ->Update("t", {{"v", Value(int64_t{1000})}},
                             {{"v", RangeBounds::Closed(41, 50)}})
                    .ok());

    // The reader still sees the pre-DML state: all 100 rows, the deleted
    // band intact, the updated band at its old values, nothing at 1000.
    EXPECT_EQ(*store->LiveRowCount("t", reader), 100u);
    auto old_band =
        store->SelectRange("t", "v", RangeBounds::AtMost(10),
                           Delivery::kView, reader);
    ASSERT_TRUE(old_band.ok());
    EXPECT_EQ(old_band->count, 10u);
    EXPECT_EQ(old_band->CollectOids().size(), 10u);
    auto updated_band =
        store->SelectRange("t", "v", RangeBounds::Closed(41, 50),
                           Delivery::kView, reader);
    ASSERT_TRUE(updated_band.ok());
    EXPECT_EQ(updated_band->count, 10u);
    auto moved = store->SelectRange("t", "v", RangeBounds::Equal(1000),
                                    Delivery::kCount, reader);
    ASSERT_TRUE(moved.ok());
    EXPECT_EQ(moved->count, 0u);

    // A fresh auto-commit reader sees the committed state.
    EXPECT_EQ(*store->LiveRowCount("t"), 90u);
    EXPECT_EQ(store->SelectRange("t", "v", RangeBounds::AtMost(10))->count,
              0u);
    EXPECT_EQ(store->SelectRange("t", "v", RangeBounds::Equal(1000))->count,
              10u);

    // Ending the reader moves it to the committed state too.
    ASSERT_TRUE(store->Commit(reader).ok());
    EXPECT_EQ(*store->LiveRowCount("t"), 90u);
  }
}

TEST(SnapshotIsolationTest, StringDictionaryPathHonorsSnapshots) {
  for (const StoreConfig& config : AllStoreConfigs()) {
    SCOPED_TRACE("config=" + ConfigName(config));
    auto store = MakeStore(config);
    auto rel = *Relation::Create(
        "p", Schema({{"s", ValueType::kString}, {"v", ValueType::kInt64}}));
    for (int i = 0; i < 50; ++i) {
      char key[16];
      std::snprintf(key, sizeof(key), "k%03d", i);
      ASSERT_TRUE(
          rel->AppendRow({Value(std::string(key)), Value(int64_t{i})}).ok());
    }
    ASSERT_TRUE(store->AddTable(rel).ok());
    TypedRange low_band = TypedRange::AtMost(Value(std::string("k009")));
    ASSERT_TRUE(store->SelectRange("p", "s", low_band).ok());  // warm dict

    TxnId reader = *store->Begin();
    // Delete the low band, rename k020 out of its sort position.
    ASSERT_TRUE(store->Delete("p", {{"s", low_band}}).ok());
    ASSERT_TRUE(store
                    ->Update("p", {{"s", Value(std::string("zzz"))}},
                             {{"s", TypedRange::Equal(
                                        Value(std::string("k020")))}})
                    .ok());

    auto old_low = store->SelectRange("p", "s", low_band, Delivery::kView,
                                      reader);
    ASSERT_TRUE(old_low.ok());
    EXPECT_EQ(old_low->count, 10u);
    auto old_name = store->SelectRange(
        "p", "s", TypedRange::Equal(Value(std::string("k020"))),
        Delivery::kView, reader);
    ASSERT_TRUE(old_name.ok());
    EXPECT_EQ(old_name->count, 1u);
    auto renamed = store->SelectRange(
        "p", "s", TypedRange::Equal(Value(std::string("zzz"))),
        Delivery::kCount, reader);
    ASSERT_TRUE(renamed.ok());
    EXPECT_EQ(renamed->count, 0u);

    // Latest committed state.
    EXPECT_EQ(store->SelectRange("p", "s", low_band)->count, 0u);
    EXPECT_EQ(store
                  ->SelectRange("p", "s",
                                TypedRange::Equal(Value(std::string("zzz"))))
                  ->count,
              1u);
    ASSERT_TRUE(store->Rollback(reader).ok());
  }
}

// ---------------------------------------------------------------------------
// Write-write conflicts and rollback.
// ---------------------------------------------------------------------------

TEST(TxnConflictTest, SecondCommitterAborts) {
  auto store = MakeStore({AccessStrategy::kCrack, CrackPolicy::kStandard});
  auto rel = *Relation::Create("t", Schema({{"v", ValueType::kInt64}}));
  for (int64_t i = 1; i <= 20; ++i) {
    ASSERT_TRUE(rel->AppendRow({Value(i)}).ok());
  }
  ASSERT_TRUE(store->AddTable(rel).ok());

  TxnId t1 = *store->Begin();
  TxnId t2 = *store->Begin();
  // T1 updates row v=5 and commits first.
  ASSERT_TRUE(store
                  ->Update("t", {{"v", Value(int64_t{500})}},
                           {{"v", RangeBounds::Equal(5)}}, t1)
                  .ok());
  ASSERT_TRUE(store->Commit(t1).ok());

  // T2's snapshot predates T1's commit; its write to the same row must
  // abort (first committer wins), and its COMMIT reports the abort.
  auto conflicted = store->Update("t", {{"v", Value(int64_t{555})}},
                                  {{"v", RangeBounds::Equal(5)}}, t2);
  ASSERT_FALSE(conflicted.ok());
  EXPECT_TRUE(conflicted.status().IsAborted()) << conflicted.status();
  Status commit = store->Commit(t2);
  EXPECT_TRUE(commit.IsAborted()) << commit.ToString();
  EXPECT_FALSE(store->TxnActive(t2));

  // T1's write survives, T2 left no trace.
  EXPECT_EQ(store->SelectRange("t", "v", RangeBounds::Equal(500))->count, 1u);
  EXPECT_EQ(store->SelectRange("t", "v", RangeBounds::Equal(555))->count, 0u);

  // An uncommitted writer's row lock also aborts a competitor eagerly.
  TxnId t3 = *store->Begin();
  TxnId t4 = *store->Begin();
  ASSERT_TRUE(store
                  ->Delete("t", {{"v", RangeBounds::Equal(7)}}, t3)
                  .ok());
  auto locked = store->Update("t", {{"v", Value(int64_t{700})}},
                              {{"v", RangeBounds::Equal(7)}}, t4);
  ASSERT_FALSE(locked.ok());
  EXPECT_TRUE(locked.status().IsAborted());
  ASSERT_TRUE(store->Rollback(t3).ok());
  EXPECT_TRUE(store->Commit(t4).IsAborted());
  EXPECT_EQ(*store->LiveRowCount("t"), 20u);  // both left no trace
}

TEST(TxnRollbackTest, RestoresBaseAcceleratorsAndVisibility) {
  for (const StoreConfig& config : AllStoreConfigs()) {
    SCOPED_TRACE("config=" + ConfigName(config));
    auto store = MakeStore(config);
    auto rel = *Relation::Create("t", Schema({{"v", ValueType::kInt64}}));
    for (int64_t i = 1; i <= 50; ++i) {
      ASSERT_TRUE(rel->AppendRow({Value(i)}).ok());
    }
    ASSERT_TRUE(store->AddTable(rel).ok());
    ASSERT_TRUE(store->SelectRange("t", "v", RangeBounds::All()).ok());

    TxnId txn = *store->Begin();
    auto ins = store->Insert("t", {Value(int64_t{999})}, txn);
    ASSERT_TRUE(ins.ok());
    EXPECT_NE(ins->inserted_oid, kInvalidOid);
    ASSERT_TRUE(
        store->Delete("t", {{"v", RangeBounds::AtMost(5)}}, txn).ok());
    ASSERT_TRUE(store
                    ->Update("t", {{"v", Value(int64_t{777})}},
                             {{"v", RangeBounds::Closed(10, 12)}}, txn)
                    .ok());
    // The transaction sees its own effects...
    EXPECT_EQ(*store->LiveRowCount("t", txn), 46u);  // 50 - 5 + 1
    EXPECT_EQ(store
                  ->SelectRange("t", "v", RangeBounds::Equal(777),
                                Delivery::kCount, txn)
                  ->count,
              3u);
    // ...while auto-commit readers see none of them.
    EXPECT_EQ(*store->LiveRowCount("t"), 50u);
    EXPECT_EQ(store->SelectRange("t", "v", RangeBounds::Equal(777))->count,
              0u);

    ASSERT_TRUE(store->Rollback(txn).ok());
    EXPECT_EQ(*store->LiveRowCount("t"), 50u);
    EXPECT_EQ(store->SelectRange("t", "v", RangeBounds::Equal(999))->count,
              0u);
    EXPECT_EQ(store->SelectRange("t", "v", RangeBounds::Equal(777))->count,
              0u);
    EXPECT_EQ(store->SelectRange("t", "v", RangeBounds::AtMost(5))->count,
              5u);
    EXPECT_EQ(store->SelectRange("t", "v", RangeBounds::Closed(10, 12))->count,
              3u);
    // Vacuum reclaims the aborted insert's physical garbage.
    auto stats = store->Vacuum();
    ASSERT_TRUE(stats.ok());
    EXPECT_GE(stats->rows_purged, 1u);
    EXPECT_EQ(*store->LiveRowCount("t"), 50u);
  }
}

// ---------------------------------------------------------------------------
// Randomized vacuum suite: long-lived snapshots vs churn.
// ---------------------------------------------------------------------------

TEST(VacuumTest, RandomizedChurnKeepsOldSnapshotsExactAndShrinksStorage) {
  const uint64_t base_seed = TestSeed(90210);
  size_t config_index = 0;
  for (const StoreConfig& config : AllStoreConfigs()) {
    uint64_t seed = base_seed + 17 * config_index++;
    SCOPED_TRACE("config=" + ConfigName(config) +
                 " seed=" + std::to_string(seed) +
                 " (rerun with CRACKSTORE_TEST_SEED)");
    Pcg32 rng(seed);
    const int64_t domain = 500;
    const size_t n0 = 400;

    auto store = MakeStore(config);
    auto rel = *Relation::Create("t", Schema({{"v", ValueType::kInt64}}));
    std::map<Oid, int64_t> latest;  // live oracle at the latest snapshot
    for (size_t i = 0; i < n0; ++i) {
      int64_t v = rng.NextInRange(1, domain);
      ASSERT_TRUE(rel->AppendRow({Value(v)}).ok());
      latest[i] = v;
    }
    ASSERT_TRUE(store->AddTable(rel).ok());
    ASSERT_TRUE(store->SelectRange("t", "v", RangeBounds::All()).ok());

    auto check = [&](const std::map<Oid, int64_t>& oracle, TxnId txn,
                     const char* what) {
      for (int q = 0; q < 6; ++q) {
        int64_t lo = rng.NextInRange(1, domain);
        int64_t hi = lo + rng.NextInRange(0, domain / 2);
        auto r = store->SelectRange("t", "v", RangeBounds::Closed(lo, hi),
                                    Delivery::kView, txn);
        ASSERT_TRUE(r.ok()) << what;
        std::vector<Oid> want;
        for (const auto& [oid, v] : oracle) {
          if (v >= lo && v <= hi) want.push_back(oid);
        }
        ASSERT_EQ(r->CollectOids(), want)
            << what << " range [" << lo << "," << hi << "]";
      }
      auto live = store->LiveRowCount("t", txn);
      ASSERT_TRUE(live.ok());
      ASSERT_EQ(*live, oracle.size()) << what;
    };

    for (int round = 0; round < 3; ++round) {
      SCOPED_TRACE("round=" + std::to_string(round));
      // Freeze a long-lived snapshot and its oracle.
      TxnId old_reader = *store->Begin();
      std::map<Oid, int64_t> frozen = latest;

      // Churn: inserts, deletes, updates — all auto-commit.
      for (int op = 0; op < 120; ++op) {
        uint32_t dice = rng.NextBounded(100);
        if (dice < 40 || latest.empty()) {
          int64_t v = rng.NextInRange(1, domain);
          auto r = store->Insert("t", {Value(v)});
          ASSERT_TRUE(r.ok());
          latest[r->inserted_oid] = v;
        } else if (dice < 75) {
          auto it = latest.begin();
          std::advance(it,
                       rng.NextBounded(static_cast<uint32_t>(latest.size())));
          ASSERT_TRUE(store->DeleteOids("t", {it->first}).ok());
          latest.erase(it);
        } else {
          auto it = latest.begin();
          std::advance(it,
                       rng.NextBounded(static_cast<uint32_t>(latest.size())));
          int64_t v = rng.NextInRange(1, domain);
          // `it` points into `latest`: capture the WHERE value before the
          // oracle loop rewrites it.
          int64_t from = it->second;
          auto r = store->Update("t", {{"v", Value(v)}},
                                 {{"v", RangeBounds::Equal(from)}});
          ASSERT_TRUE(r.ok());
          for (auto& [oid, value] : latest) {
            if (value == from) value = v;
          }
        }
      }

      // (a) The old snapshot still reads its frozen version, even after a
      // vacuum pass that runs *while it is open*.
      check(frozen, old_reader, "frozen pre-vacuum");
      auto guarded = store->Vacuum();
      ASSERT_TRUE(guarded.ok());
      check(frozen, old_reader, "frozen post-guarded-vacuum");
      check(latest, kNoTxn, "latest");

      // Close the snapshot; now vacuum may reclaim everything old.
      ASSERT_TRUE(store->Commit(old_reader).ok());
      auto before = store->VersionCountsFor("t");
      ASSERT_TRUE(before.ok());
      size_t accel_before = 0;
      auto path = store->AccessPathFor("t", "v");
      if (path.ok()) accel_before = (*path)->accel_tuples();
      auto stats = store->Vacuum();
      ASSERT_TRUE(stats.ok());
      auto after = store->VersionCountsFor("t");
      ASSERT_TRUE(after.ok());
      // (b) Post-vacuum storage shrinks: the version log got smaller and
      // deleted rows merged out of the accelerator.
      EXPECT_LT(after->row_versions + after->chain_entries,
                before->row_versions + before->chain_entries);
      if (path.ok() && config.strategy != AccessStrategy::kScan &&
          stats->rows_purged > 0) {
        EXPECT_LT((*path)->accel_tuples(), accel_before);
      }
      check(latest, kNoTxn, "latest post-vacuum");
    }
  }
}

// ---------------------------------------------------------------------------
// Concurrent stress: frozen snapshot reads while writers churn (TSan
// target; run with `ctest -L slow` for the long lane).
// ---------------------------------------------------------------------------

TEST(TxnConcurrencyStress, SnapshotReadersSeeFrozenStateUnderChurn) {
  const uint64_t seed = TestSeed(777001);
  SCOPED_TRACE("seed=" + std::to_string(seed) +
               " (rerun with CRACKSTORE_TEST_SEED)");
  const int64_t domain = 1000;
  const size_t n0 = 500;
  for (AccessStrategy strategy :
       {AccessStrategy::kCrack, AccessStrategy::kSort, AccessStrategy::kScan}) {
    SCOPED_TRACE(std::string("strategy=") + AccessStrategyName(strategy));
    auto store = MakeStore({strategy, CrackPolicy::kStandard},
                           /*concurrent=*/true);
    auto rel = *Relation::Create("t", Schema({{"v", ValueType::kInt64}}));
    Pcg32 init_rng(seed);
    for (size_t i = 0; i < n0; ++i) {
      ASSERT_TRUE(
          rel->AppendRow({Value(init_rng.NextInRange(1, domain))}).ok());
    }
    ASSERT_TRUE(store->AddTable(rel).ok());
    ASSERT_TRUE(store->SelectRange("t", "v", RangeBounds::All()).ok());

    std::atomic<bool> failed{false};
    std::atomic<bool> done{false};

    // Writers: auto-commit churn on private oid sets.
    std::vector<std::thread> threads;
    const size_t kWriters = 2;
    for (size_t w = 0; w < kWriters; ++w) {
      threads.emplace_back([&, w] {
        Pcg32 rng(seed + 131 * (w + 1));
        std::vector<Oid> mine;
        for (int op = 0; op < 150 && !failed; ++op) {
          if (rng.NextBounded(2) == 0 || mine.empty()) {
            auto r = store->Insert(
                "t", {Value(rng.NextInRange(1, domain))});
            if (!r.ok() || r->inserted_oid == kInvalidOid) {
              ADD_FAILURE() << "insert: " << r.status().ToString();
              failed = true;
              return;
            }
            mine.push_back(r->inserted_oid);
          } else {
            size_t pick = rng.NextBounded(static_cast<uint32_t>(mine.size()));
            auto r = store->DeleteOids("t", {mine[pick]});
            if (!r.ok()) {
              ADD_FAILURE() << "delete: " << r.status().ToString();
              failed = true;
              return;
            }
            mine.erase(mine.begin() + static_cast<ptrdiff_t>(pick));
          }
        }
      });
    }
    // Snapshot readers: open a transaction, remember the count, re-read it
    // repeatedly while writers churn — it must never move.
    for (int r = 0; r < 2; ++r) {
      threads.emplace_back([&, r] {
        Pcg32 rng(seed + 9001 * (r + 1));
        for (int round = 0; round < 6 && !failed; ++round) {
          auto txn = store->Begin();
          if (!txn.ok()) {
            ADD_FAILURE() << "begin: " << txn.status().ToString();
            failed = true;
            return;
          }
          auto first = store->LiveRowCount("t", *txn);
          if (!first.ok()) {
            ADD_FAILURE() << "count: " << first.status().ToString();
            failed = true;
            return;
          }
          for (int probe = 0; probe < 8 && !failed; ++probe) {
            auto again = store->LiveRowCount("t", *txn);
            auto full = store->SelectRange("t", "v",
                                           RangeBounds::Closed(1, domain),
                                           Delivery::kCount, *txn);
            if (!again.ok() || !full.ok() || *again != *first ||
                full->count != *first) {
              ADD_FAILURE() << "snapshot moved: first " << *first << " again "
                            << (again.ok() ? *again : 0) << " select "
                            << (full.ok() ? full->count : 0);
              failed = true;
              return;
            }
            if (done.load(std::memory_order_acquire)) break;
          }
          (void)store->Commit(*txn);
        }
      });
    }
    for (size_t w = 0; w < kWriters; ++w) threads[w].join();
    done.store(true, std::memory_order_release);
    for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();
    ASSERT_FALSE(failed);

    // Quiesced: vacuum, then live count equals a full select.
    ASSERT_TRUE(store->Vacuum().ok());
    auto live = store->LiveRowCount("t");
    ASSERT_TRUE(live.ok());
    EXPECT_EQ(store->SelectRange("t", "v", RangeBounds::Closed(1, domain))
                  ->count,
              *live);
  }
}

// ---------------------------------------------------------------------------
// SQL surface: BEGIN/COMMIT/ROLLBACK/VACUUM through a session.
// ---------------------------------------------------------------------------

TEST(SqlTxnTest, SessionRoundTrip) {
  auto store = MakeStore({AccessStrategy::kCrack, CrackPolicy::kStandard});
  auto rel = *Relation::Create("t", Schema({{"v", ValueType::kInt64}}));
  for (int64_t i = 1; i <= 10; ++i) {
    ASSERT_TRUE(rel->AppendRow({Value(i)}).ok());
  }
  ASSERT_TRUE(store->AddTable(rel).ok());

  sql::SqlSession session(store.get());
  sql::SqlSession other(store.get());

  ASSERT_TRUE(session.ExecuteSql("BEGIN").ok());
  EXPECT_TRUE(session.in_txn());
  EXPECT_FALSE(session.ExecuteSql("BEGIN TRANSACTION").ok());  // no nesting
  ASSERT_TRUE(session.ExecuteSql("DELETE FROM t WHERE v <= 4").ok());
  auto mine = session.ExecuteSql("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(mine.ok());
  EXPECT_EQ(mine->count, 6u);
  // The other session still reads the committed state.
  auto theirs = other.ExecuteSql("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(theirs.ok());
  EXPECT_EQ(theirs->count, 10u);

  ASSERT_TRUE(session.ExecuteSql("ROLLBACK").ok());
  EXPECT_FALSE(session.in_txn());
  EXPECT_EQ(session.ExecuteSql("SELECT COUNT(*) FROM t")->count, 10u);

  ASSERT_TRUE(session.ExecuteSql("BEGIN").ok());
  ASSERT_TRUE(session.ExecuteSql("UPDATE t SET v = 99 WHERE v = 9").ok());
  ASSERT_TRUE(session.ExecuteSql("COMMIT").ok());
  EXPECT_EQ(other.ExecuteSql("SELECT COUNT(*) FROM t WHERE v = 99")->count,
            1u);

  // SELECT * inside a transaction materializes snapshot-correct values.
  ASSERT_TRUE(other.ExecuteSql("BEGIN").ok());
  ASSERT_TRUE(session.ExecuteSql("UPDATE t SET v = 123 WHERE v = 99").ok());
  auto rows = other.ExecuteSql("SELECT * FROM t WHERE v = 99");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->count, 1u);
  EXPECT_EQ(rows->rows->GetRow(0)[0].ToInt64(), 99);
  ASSERT_TRUE(other.ExecuteSql("COMMIT").ok());

  auto vacuumed = session.ExecuteSql("VACUUM");
  ASSERT_TRUE(vacuumed.ok());
  EXPECT_EQ(vacuumed->kind, sql::OutputKind::kTxn);

  // Statement-level conflict surfaces as Aborted through SQL.
  ASSERT_TRUE(session.ExecuteSql("BEGIN").ok());
  ASSERT_TRUE(other.ExecuteSql("BEGIN").ok());
  ASSERT_TRUE(session.ExecuteSql("UPDATE t SET v = 5 WHERE v = 123").ok());
  ASSERT_TRUE(session.ExecuteSql("COMMIT").ok());
  auto conflict = other.ExecuteSql("UPDATE t SET v = 6 WHERE v = 123");
  ASSERT_FALSE(conflict.ok());
  EXPECT_TRUE(conflict.status().IsAborted());
  EXPECT_TRUE(other.ExecuteSql("COMMIT").status().IsAborted());
  EXPECT_FALSE(other.in_txn());
}

// ---------------------------------------------------------------------------
// Batch visibility: the bitmap API must agree bit-for-bit with the per-row
// probes it replaces in the hot scan loops.
// ---------------------------------------------------------------------------

TEST(SnapshotViewBatchTest, MasksAgreeWithPerRowProbes) {
  VersionedTable vt(/*base_oid=*/0, /*initial_rows=*/200);
  for (Oid oid = 0; oid < 200; oid += 7) vt.StampDelete(oid, 2 + oid % 5);
  for (Oid oid = 3; oid < 200; oid += 11) {
    vt.StampUpdate(oid, "v", Value(static_cast<int64_t>(oid * 10)), 4);
  }

  for (Ts ts : {Ts{0}, Ts{3}, Ts{6}}) {
    SCOPED_TRACE("read_ts=" + std::to_string(ts));
    SnapshotView view = vt.ViewFor(Snapshot{ts, 0}, "v");
    ASSERT_TRUE(view.active());

    // Scattered batch, including oids beyond the horizon.
    std::vector<Oid> oids;
    for (size_t i = 0; i < 210; ++i) oids.push_back((i * 13) % 211);
    std::vector<uint64_t> bm(BitmapWords(oids.size()));
    view.VisibleMask(oids.data(), oids.size(), bm.data());
    for (size_t i = 0; i < oids.size(); ++i) {
      EXPECT_EQ(BitmapTest(bm.data(), i), !view.Hides(oids[i]))
          << "oid " << oids[i];
    }

    // Contiguous spans at assorted offsets, including one straddling the
    // horizon; bits past n must stay zero.
    for (Oid first : {Oid{0}, Oid{5}, Oid{64}, Oid{190}}) {
      constexpr size_t kSpan = 40;
      std::vector<uint64_t> rm(BitmapWords(kSpan), ~uint64_t{0});
      view.VisibleRangeMask(first, kSpan, rm.data());
      for (size_t i = 0; i < kSpan; ++i) {
        EXPECT_EQ(BitmapTest(rm.data(), i), !view.Hides(first + i))
            << "oid " << (first + i);
      }
      EXPECT_EQ(rm.back() >> (kSpan % 64), 0u);
    }
  }

  // An inactive view hides nothing: the mask is all ones.
  SnapshotView inactive;
  std::vector<uint64_t> bm(BitmapWords(70));
  std::vector<Oid> oids(70, 12345);
  inactive.VisibleMask(oids.data(), oids.size(), bm.data());
  EXPECT_EQ(BitmapCount(bm.data(), 70), 70u);
}

TEST(SnapshotViewBatchTest, OverrideForFindsSnapshotValues) {
  VersionedTable vt(/*base_oid=*/0, /*initial_rows=*/50);
  for (Oid oid = 3; oid < 50; oid += 11) {
    vt.StampUpdate(oid, "v", Value(static_cast<int64_t>(oid * 10)), 4);
  }
  SnapshotView old_view = vt.ViewFor(Snapshot{3, 0}, "v");
  for (Oid oid = 0; oid < 50; ++oid) {
    const Value* ov = old_view.OverrideFor(oid);
    if (oid >= 3 && (oid - 3) % 11 == 0) {
      ASSERT_NE(ov, nullptr) << "oid " << oid;
      EXPECT_EQ(ov->ToInt64(), static_cast<int64_t>(oid * 10));
    } else {
      EXPECT_EQ(ov, nullptr) << "oid " << oid;
    }
  }
  // At a snapshot past the update commit the physical value is current.
  SnapshotView new_view = vt.ViewFor(Snapshot{6, 0}, "v");
  EXPECT_EQ(new_view.OverrideFor(3), nullptr);
}

// ---------------------------------------------------------------------------
// Transactional join / group-by: snapshot views thread through the ^ and Ω
// crackers, and the caches rebuild on version churn.
// ---------------------------------------------------------------------------

TEST(TransactionalJoinGroupTest, JoinOidsRespectSnapshots) {
  for (AccessStrategy strategy :
       {AccessStrategy::kCrack, AccessStrategy::kScan}) {
    SCOPED_TRACE(AccessStrategyName(strategy));
    auto store = MakeStore({strategy, CrackPolicy::kStandard});
    auto r = *Relation::Create("R", Schema({{"k", ValueType::kInt64}}));
    auto s = *Relation::Create("S", Schema({{"k", ValueType::kInt64}}));
    for (int64_t i = 0; i < 20; ++i) {
      ASSERT_TRUE(r->AppendRow({Value(i)}).ok());
      ASSERT_TRUE(s->AppendRow({Value(i)}).ok());
    }
    ASSERT_TRUE(store->AddTable(r).ok());
    ASSERT_TRUE(store->AddTable(s).ok());
    ASSERT_EQ(store->JoinOids("R", "k", "S", "k")->size(), 20u);  // warm ^

    TxnId reader = *store->Begin();
    // Committed after the snapshot: R.k=3 deleted, R.k=7 rewritten to 100
    // (loses its partner), S.k=15 rewritten to 5 (R.k=5 gains a second
    // partner, R.k=15 loses its only one).
    ASSERT_TRUE(store->Delete("R", {{"k", RangeBounds::Equal(3)}}).ok());
    ASSERT_TRUE(store
                    ->Update("R", {{"k", Value(int64_t{100})}},
                             {{"k", RangeBounds::Equal(7)}})
                    .ok());
    ASSERT_TRUE(store
                    ->Update("S", {{"k", Value(int64_t{5})}},
                             {{"k", RangeBounds::Equal(15)}})
                    .ok());

    // The pinned reader still joins the pre-DML world.
    auto pinned = store->JoinOids("R", "k", "S", "k", reader);
    ASSERT_TRUE(pinned.ok());
    EXPECT_EQ(pinned->size(), 20u);

    // Latest committed: 16 untouched singles + two pairs for k=5.
    auto latest = store->JoinOids("R", "k", "S", "k");
    ASSERT_TRUE(latest.ok());
    EXPECT_EQ(latest->size(), 18u);

    ASSERT_TRUE(store->Commit(reader).ok());
  }
}

TEST(TransactionalJoinGroupTest, GroupByRespectsSnapshots) {
  auto store = MakeStore({AccessStrategy::kCrack, CrackPolicy::kStandard});
  auto rel = *Relation::Create(
      "G", Schema({{"g", ValueType::kInt64}, {"v", ValueType::kInt64}}));
  for (int64_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(rel->AppendRow({Value(i % 4), Value(i)}).ok());
  }
  ASSERT_TRUE(store->AddTable(rel).ok());
  ASSERT_EQ(store->GroupBy("G", "g", "v", AggKind::kCount)->size(),
            4u);  // warm Ω

  TxnId reader = *store->Begin();
  // Committed after the snapshot: group 3 migrates wholesale to a brand-new
  // key 9, the rows with v >= 36 (one per group) are deleted, and one
  // aggregate input is rewritten (v: 5 -> 1000, group 1).
  ASSERT_TRUE(store
                  ->Update("G", {{"g", Value(int64_t{9})}},
                           {{"g", RangeBounds::Equal(3)}})
                  .ok());
  ASSERT_TRUE(store->Delete("G", {{"v", RangeBounds::AtLeast(36)}}).ok());
  ASSERT_TRUE(store
                  ->Update("G", {{"v", Value(int64_t{1000})}},
                           {{"v", RangeBounds::Equal(5)}})
                  .ok());

  // Pinned reader: the original four groups of ten, original sums.
  auto pinned_counts = store->GroupBy("G", "g", "v", AggKind::kCount, reader);
  ASSERT_TRUE(pinned_counts.ok());
  ASSERT_EQ(pinned_counts->size(), 4u);
  for (const auto& agg : *pinned_counts) {
    EXPECT_LE(agg.group, 3);
    EXPECT_EQ(agg.value, 10);
  }
  auto pinned_sums = store->GroupBy("G", "g", "v", AggKind::kSum, reader);
  ASSERT_TRUE(pinned_sums.ok());
  int64_t pinned_g1 = -1;
  for (const auto& agg : *pinned_sums) {
    if (agg.group == 1) pinned_g1 = agg.value;
  }
  EXPECT_EQ(pinned_g1, 190);  // 1 + 5 + ... + 37

  // Latest committed: group 3 is gone, group 9 exists, each group lost its
  // v >= 36 row, and group 1's sum reflects the rewritten input.
  auto latest_counts = store->GroupBy("G", "g", "v", AggKind::kCount);
  ASSERT_TRUE(latest_counts.ok());
  ASSERT_EQ(latest_counts->size(), 4u);
  for (const auto& agg : *latest_counts) {
    EXPECT_NE(agg.group, 3);
    EXPECT_EQ(agg.value, 9);
  }
  auto latest_sums = store->GroupBy("G", "g", "v", AggKind::kSum);
  ASSERT_TRUE(latest_sums.ok());
  int64_t latest_g1 = -1;
  for (const auto& agg : *latest_sums) {
    if (agg.group == 1) latest_g1 = agg.value;
  }
  EXPECT_EQ(latest_g1, 190 - 37 - 5 + 1000);

  ASSERT_TRUE(store->Commit(reader).ok());
}

}  // namespace
}  // namespace crackstore
