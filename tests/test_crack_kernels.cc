// Copyright 2026 The CrackStore Authors
//
// Tests for the crack-in-two / crack-in-three partition kernels, including
// parameterized property sweeps over data shapes and pivots.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <tuple>
#include <vector>

#include "core/crack_kernels.h"
#include "util/rng.h"

namespace crackstore {
namespace {

std::vector<int64_t> RandomData(size_t n, uint64_t seed, int64_t domain) {
  Pcg32 rng(seed);
  std::vector<int64_t> v(n);
  for (auto& x : v) x = rng.NextInRange(0, domain);
  return v;
}

std::vector<Oid> IdentityOids(size_t n) {
  std::vector<Oid> v(n);
  std::iota(v.begin(), v.end(), Oid{0});
  return v;
}

std::multiset<int64_t> AsMultiset(const std::vector<int64_t>& v) {
  return std::multiset<int64_t>(v.begin(), v.end());
}

TEST(CrackInTwoTest, LtPartitionsCorrectly) {
  std::vector<int64_t> data{5, 1, 9, 3, 7, 3, 0};
  auto orig = AsMultiset(data);
  CrackSplit split =
      CrackInTwoLt(data.data(), nullptr, data.size(), int64_t{4});
  for (size_t i = 0; i < split.split; ++i) EXPECT_LT(data[i], 4);
  for (size_t i = split.split; i < data.size(); ++i) EXPECT_GE(data[i], 4);
  EXPECT_EQ(AsMultiset(data), orig);
  EXPECT_EQ(split.split, 4u);  // {1,3,3,0}
}

TEST(CrackInTwoTest, LePartitionsCorrectly) {
  std::vector<int64_t> data{5, 4, 9, 4, 7, 3};
  CrackSplit split =
      CrackInTwoLe(data.data(), nullptr, data.size(), int64_t{4});
  EXPECT_EQ(split.split, 3u);  // {4,4,3}
  for (size_t i = 0; i < split.split; ++i) EXPECT_LE(data[i], 4);
  for (size_t i = split.split; i < data.size(); ++i) EXPECT_GT(data[i], 4);
}

TEST(CrackInTwoTest, EmptyInput) {
  std::vector<int64_t> data;
  CrackSplit split = CrackInTwoLt(data.data(), nullptr, 0, int64_t{4});
  EXPECT_EQ(split.split, 0u);
  EXPECT_EQ(split.writes, 0u);
}

TEST(CrackInTwoTest, AllLeft) {
  std::vector<int64_t> data{1, 2, 3};
  CrackSplit split =
      CrackInTwoLt(data.data(), nullptr, data.size(), int64_t{100});
  EXPECT_EQ(split.split, 3u);
  EXPECT_EQ(split.writes, 0u);  // nothing moved
}

TEST(CrackInTwoTest, AllRight) {
  std::vector<int64_t> data{5, 6, 7};
  CrackSplit split =
      CrackInTwoLt(data.data(), nullptr, data.size(), int64_t{0});
  EXPECT_EQ(split.split, 0u);
  EXPECT_EQ(split.writes, 0u);
}

TEST(CrackInTwoTest, OidsFollowValues) {
  std::vector<int64_t> data{5, 1, 9, 3};
  std::vector<Oid> oids = IdentityOids(4);
  std::vector<int64_t> orig = data;
  CrackInTwoLt(data.data(), oids.data(), data.size(), int64_t{4});
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(data[i], orig[oids[i]]);  // oid still names its source slot
  }
}

TEST(CrackInTwoTest, WriteCountMatchesSwaps) {
  // One swap needed: [9, 1] around pivot 5 -> [1, 9], 2 writes.
  std::vector<int64_t> data{9, 1};
  CrackSplit split =
      CrackInTwoLt(data.data(), nullptr, data.size(), int64_t{5});
  EXPECT_EQ(split.writes, 2u);
  EXPECT_EQ(split.split, 1u);
}

TEST(CrackInThreeTest, BasicThreeWay) {
  std::vector<int64_t> data{8, 2, 5, 9, 1, 5, 7, 0};
  auto orig = AsMultiset(data);
  Crack3Split split = CrackInThree(data.data(), nullptr, data.size(),
                                   int64_t{2}, true, int64_t{6}, true);
  for (size_t i = 0; i < split.first; ++i) EXPECT_LT(data[i], 2);
  for (size_t i = split.first; i < split.second; ++i) {
    EXPECT_GE(data[i], 2);
    EXPECT_LE(data[i], 6);
  }
  for (size_t i = split.second; i < data.size(); ++i) EXPECT_GT(data[i], 6);
  EXPECT_EQ(AsMultiset(data), orig);
}

TEST(CrackInThreeTest, ExclusiveBounds) {
  std::vector<int64_t> data{2, 3, 4, 5, 6, 2, 6};
  Crack3Split split = CrackInThree(data.data(), nullptr, data.size(),
                                   int64_t{2}, false, int64_t{6}, false);
  // middle = values in (2, 6)
  for (size_t i = split.first; i < split.second; ++i) {
    EXPECT_GT(data[i], 2);
    EXPECT_LT(data[i], 6);
  }
  EXPECT_EQ(split.second - split.first, 3u);  // {3,4,5}
}

TEST(CrackInThreeTest, PointRange) {
  std::vector<int64_t> data{3, 1, 3, 2, 3};
  Crack3Split split = CrackInThree(data.data(), nullptr, data.size(),
                                   int64_t{3}, true, int64_t{3}, true);
  EXPECT_EQ(split.second - split.first, 3u);  // three 3s clustered
  for (size_t i = split.first; i < split.second; ++i) EXPECT_EQ(data[i], 3);
}

TEST(CrackInThreeTest, EmptyMiddle) {
  std::vector<int64_t> data{1, 10, 2, 9};
  Crack3Split split = CrackInThree(data.data(), nullptr, data.size(),
                                   int64_t{5}, true, int64_t{5}, false);
  EXPECT_EQ(split.first, split.second);
}

TEST(CrackInThreeTest, EmptyInput) {
  std::vector<int64_t> data;
  Crack3Split split = CrackInThree(data.data(), nullptr, size_t{0},
                                   int64_t{1}, true, int64_t{2}, true);
  EXPECT_EQ(split.first, 0u);
  EXPECT_EQ(split.second, 0u);
}

TEST(CrackInThreeTest, OidsFollowValues) {
  std::vector<int64_t> data{8, 2, 5, 9, 1, 5, 7, 0};
  std::vector<Oid> oids = IdentityOids(8);
  std::vector<int64_t> orig = data;
  CrackInThree(data.data(), oids.data(), data.size(), int64_t{2}, true,
               int64_t{6}, true);
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(data[i], orig[oids[i]]);
  }
}

TEST(CrackInThreeTest, WorksOnDoubles) {
  std::vector<double> data{0.5, 2.5, 1.5, 3.5};
  Crack3Split split = CrackInThree(data.data(), nullptr, data.size(), 1.0,
                                   true, 3.0, true);
  EXPECT_EQ(split.first, 1u);
  EXPECT_EQ(split.second, 3u);
}

TEST(CrackInThreeTest, WorksOnInt32) {
  std::vector<int32_t> data{5, 1, 3, 2, 4};
  Crack3Split split = CrackInThree(data.data(), nullptr, data.size(),
                                   int32_t{2}, true, int32_t{4}, true);
  for (size_t i = split.first; i < split.second; ++i) {
    EXPECT_GE(data[i], 2);
    EXPECT_LE(data[i], 4);
  }
}

// ---------------------------------------------------------------------------
// Property sweep: random data shapes x pivots, checking the partition
// invariants, multiset preservation and oid alignment.
// ---------------------------------------------------------------------------

class KernelPropertyTest
    : public ::testing::TestWithParam<std::tuple<size_t, int64_t, uint64_t>> {
};

TEST_P(KernelPropertyTest, CrackInTwoInvariants) {
  auto [n, domain, seed] = GetParam();
  std::vector<int64_t> data = RandomData(n, seed, domain);
  std::vector<Oid> oids = IdentityOids(n);
  std::vector<int64_t> orig = data;
  auto orig_set = AsMultiset(data);
  Pcg32 rng(seed ^ 0xABCD);
  int64_t pivot = rng.NextInRange(-1, domain + 1);

  CrackSplit split = CrackInTwoLt(data.data(), oids.data(), n, pivot);
  ASSERT_LE(split.split, n);
  for (size_t i = 0; i < split.split; ++i) ASSERT_LT(data[i], pivot);
  for (size_t i = split.split; i < n; ++i) ASSERT_GE(data[i], pivot);
  ASSERT_EQ(AsMultiset(data), orig_set);
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(data[i], orig[oids[i]]);
  // Each swap writes two tuples; never more than n writes total.
  ASSERT_LE(split.writes, n + 1);
}

TEST_P(KernelPropertyTest, CrackInThreeInvariants) {
  auto [n, domain, seed] = GetParam();
  std::vector<int64_t> data = RandomData(n, seed, domain);
  std::vector<Oid> oids = IdentityOids(n);
  std::vector<int64_t> orig = data;
  auto orig_set = AsMultiset(data);
  Pcg32 rng(seed ^ 0x1234);
  int64_t lo = rng.NextInRange(0, domain);
  int64_t hi = rng.NextInRange(lo, domain);
  bool lo_incl = rng.NextBounded(2) == 0;
  bool hi_incl = rng.NextBounded(2) == 0;

  Crack3Split split =
      CrackInThree(data.data(), oids.data(), n, lo, lo_incl, hi, hi_incl);
  ASSERT_LE(split.first, split.second);
  ASSERT_LE(split.second, n);
  auto below = [&](int64_t v) { return lo_incl ? v < lo : v <= lo; };
  auto above = [&](int64_t v) { return hi_incl ? v > hi : v >= hi; };
  for (size_t i = 0; i < split.first; ++i) ASSERT_TRUE(below(data[i]));
  for (size_t i = split.first; i < split.second; ++i) {
    ASSERT_FALSE(below(data[i]));
    ASSERT_FALSE(above(data[i]));
  }
  for (size_t i = split.second; i < n; ++i) ASSERT_TRUE(above(data[i]));
  ASSERT_EQ(AsMultiset(data), orig_set);
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(data[i], orig[oids[i]]);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KernelPropertyTest,
    ::testing::Combine(
        ::testing::Values<size_t>(1, 2, 10, 1000, 10000),     // n
        ::testing::Values<int64_t>(1, 10, 1000000),           // domain
        ::testing::Values<uint64_t>(1, 42, 20040901)));       // seed

}  // namespace
}  // namespace crackstore
