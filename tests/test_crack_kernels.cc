// Copyright 2026 The CrackStore Authors
//
// Tests for the crack-in-two / crack-in-three partition kernels, including
// parameterized property sweeps over data shapes and pivots.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <numeric>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "core/crack_kernels.h"
#include "core/simd_dispatch.h"
#include "util/rng.h"

namespace crackstore {
namespace {

std::vector<int64_t> RandomData(size_t n, uint64_t seed, int64_t domain) {
  Pcg32 rng(seed);
  std::vector<int64_t> v(n);
  for (auto& x : v) x = rng.NextInRange(0, domain);
  return v;
}

std::vector<Oid> IdentityOids(size_t n) {
  std::vector<Oid> v(n);
  std::iota(v.begin(), v.end(), Oid{0});
  return v;
}

std::multiset<int64_t> AsMultiset(const std::vector<int64_t>& v) {
  return std::multiset<int64_t>(v.begin(), v.end());
}

TEST(CrackInTwoTest, LtPartitionsCorrectly) {
  std::vector<int64_t> data{5, 1, 9, 3, 7, 3, 0};
  auto orig = AsMultiset(data);
  CrackSplit split =
      CrackInTwoLt(data.data(), nullptr, data.size(), int64_t{4});
  for (size_t i = 0; i < split.split; ++i) EXPECT_LT(data[i], 4);
  for (size_t i = split.split; i < data.size(); ++i) EXPECT_GE(data[i], 4);
  EXPECT_EQ(AsMultiset(data), orig);
  EXPECT_EQ(split.split, 4u);  // {1,3,3,0}
}

TEST(CrackInTwoTest, LePartitionsCorrectly) {
  std::vector<int64_t> data{5, 4, 9, 4, 7, 3};
  CrackSplit split =
      CrackInTwoLe(data.data(), nullptr, data.size(), int64_t{4});
  EXPECT_EQ(split.split, 3u);  // {4,4,3}
  for (size_t i = 0; i < split.split; ++i) EXPECT_LE(data[i], 4);
  for (size_t i = split.split; i < data.size(); ++i) EXPECT_GT(data[i], 4);
}

TEST(CrackInTwoTest, EmptyInput) {
  std::vector<int64_t> data;
  CrackSplit split = CrackInTwoLt(data.data(), nullptr, 0, int64_t{4});
  EXPECT_EQ(split.split, 0u);
  EXPECT_EQ(split.writes, 0u);
}

TEST(CrackInTwoTest, AllLeft) {
  std::vector<int64_t> data{1, 2, 3};
  CrackSplit split =
      CrackInTwoLt(data.data(), nullptr, data.size(), int64_t{100});
  EXPECT_EQ(split.split, 3u);
  EXPECT_EQ(split.writes, 0u);  // nothing moved
}

TEST(CrackInTwoTest, AllRight) {
  std::vector<int64_t> data{5, 6, 7};
  CrackSplit split =
      CrackInTwoLt(data.data(), nullptr, data.size(), int64_t{0});
  EXPECT_EQ(split.split, 0u);
  EXPECT_EQ(split.writes, 0u);
}

TEST(CrackInTwoTest, OidsFollowValues) {
  std::vector<int64_t> data{5, 1, 9, 3};
  std::vector<Oid> oids = IdentityOids(4);
  std::vector<int64_t> orig = data;
  CrackInTwoLt(data.data(), oids.data(), data.size(), int64_t{4});
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(data[i], orig[oids[i]]);  // oid still names its source slot
  }
}

TEST(CrackInTwoTest, WriteCountMatchesSwaps) {
  // One swap needed: [9, 1] around pivot 5 -> [1, 9], 2 writes.
  std::vector<int64_t> data{9, 1};
  CrackSplit split =
      CrackInTwoLt(data.data(), nullptr, data.size(), int64_t{5});
  EXPECT_EQ(split.writes, 2u);
  EXPECT_EQ(split.split, 1u);
}

TEST(CrackInThreeTest, BasicThreeWay) {
  std::vector<int64_t> data{8, 2, 5, 9, 1, 5, 7, 0};
  auto orig = AsMultiset(data);
  Crack3Split split = CrackInThree(data.data(), nullptr, data.size(),
                                   int64_t{2}, true, int64_t{6}, true);
  for (size_t i = 0; i < split.first; ++i) EXPECT_LT(data[i], 2);
  for (size_t i = split.first; i < split.second; ++i) {
    EXPECT_GE(data[i], 2);
    EXPECT_LE(data[i], 6);
  }
  for (size_t i = split.second; i < data.size(); ++i) EXPECT_GT(data[i], 6);
  EXPECT_EQ(AsMultiset(data), orig);
}

TEST(CrackInThreeTest, ExclusiveBounds) {
  std::vector<int64_t> data{2, 3, 4, 5, 6, 2, 6};
  Crack3Split split = CrackInThree(data.data(), nullptr, data.size(),
                                   int64_t{2}, false, int64_t{6}, false);
  // middle = values in (2, 6)
  for (size_t i = split.first; i < split.second; ++i) {
    EXPECT_GT(data[i], 2);
    EXPECT_LT(data[i], 6);
  }
  EXPECT_EQ(split.second - split.first, 3u);  // {3,4,5}
}

TEST(CrackInThreeTest, PointRange) {
  std::vector<int64_t> data{3, 1, 3, 2, 3};
  Crack3Split split = CrackInThree(data.data(), nullptr, data.size(),
                                   int64_t{3}, true, int64_t{3}, true);
  EXPECT_EQ(split.second - split.first, 3u);  // three 3s clustered
  for (size_t i = split.first; i < split.second; ++i) EXPECT_EQ(data[i], 3);
}

TEST(CrackInThreeTest, EmptyMiddle) {
  std::vector<int64_t> data{1, 10, 2, 9};
  Crack3Split split = CrackInThree(data.data(), nullptr, data.size(),
                                   int64_t{5}, true, int64_t{5}, false);
  EXPECT_EQ(split.first, split.second);
}

TEST(CrackInThreeTest, EmptyInput) {
  std::vector<int64_t> data;
  Crack3Split split = CrackInThree(data.data(), nullptr, size_t{0},
                                   int64_t{1}, true, int64_t{2}, true);
  EXPECT_EQ(split.first, 0u);
  EXPECT_EQ(split.second, 0u);
}

TEST(CrackInThreeTest, OidsFollowValues) {
  std::vector<int64_t> data{8, 2, 5, 9, 1, 5, 7, 0};
  std::vector<Oid> oids = IdentityOids(8);
  std::vector<int64_t> orig = data;
  CrackInThree(data.data(), oids.data(), data.size(), int64_t{2}, true,
               int64_t{6}, true);
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(data[i], orig[oids[i]]);
  }
}

TEST(CrackInThreeTest, WorksOnDoubles) {
  std::vector<double> data{0.5, 2.5, 1.5, 3.5};
  Crack3Split split = CrackInThree(data.data(), nullptr, data.size(), 1.0,
                                   true, 3.0, true);
  EXPECT_EQ(split.first, 1u);
  EXPECT_EQ(split.second, 3u);
}

TEST(CrackInThreeTest, WorksOnInt32) {
  std::vector<int32_t> data{5, 1, 3, 2, 4};
  Crack3Split split = CrackInThree(data.data(), nullptr, data.size(),
                                   int32_t{2}, true, int32_t{4}, true);
  for (size_t i = split.first; i < split.second; ++i) {
    EXPECT_GE(data[i], 2);
    EXPECT_LE(data[i], 4);
  }
}

// ---------------------------------------------------------------------------
// Property sweep: random data shapes x pivots, checking the partition
// invariants, multiset preservation and oid alignment.
// ---------------------------------------------------------------------------

class KernelPropertyTest
    : public ::testing::TestWithParam<std::tuple<size_t, int64_t, uint64_t>> {
};

TEST_P(KernelPropertyTest, CrackInTwoInvariants) {
  auto [n, domain, seed] = GetParam();
  std::vector<int64_t> data = RandomData(n, seed, domain);
  std::vector<Oid> oids = IdentityOids(n);
  std::vector<int64_t> orig = data;
  auto orig_set = AsMultiset(data);
  Pcg32 rng(seed ^ 0xABCD);
  int64_t pivot = rng.NextInRange(-1, domain + 1);

  CrackSplit split = CrackInTwoLt(data.data(), oids.data(), n, pivot);
  ASSERT_LE(split.split, n);
  for (size_t i = 0; i < split.split; ++i) ASSERT_LT(data[i], pivot);
  for (size_t i = split.split; i < n; ++i) ASSERT_GE(data[i], pivot);
  ASSERT_EQ(AsMultiset(data), orig_set);
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(data[i], orig[oids[i]]);
  // Each swap writes two tuples; never more than n writes total.
  ASSERT_LE(split.writes, n + 1);
}

TEST_P(KernelPropertyTest, CrackInThreeInvariants) {
  auto [n, domain, seed] = GetParam();
  std::vector<int64_t> data = RandomData(n, seed, domain);
  std::vector<Oid> oids = IdentityOids(n);
  std::vector<int64_t> orig = data;
  auto orig_set = AsMultiset(data);
  Pcg32 rng(seed ^ 0x1234);
  int64_t lo = rng.NextInRange(0, domain);
  int64_t hi = rng.NextInRange(lo, domain);
  bool lo_incl = rng.NextBounded(2) == 0;
  bool hi_incl = rng.NextBounded(2) == 0;

  Crack3Split split =
      CrackInThree(data.data(), oids.data(), n, lo, lo_incl, hi, hi_incl);
  ASSERT_LE(split.first, split.second);
  ASSERT_LE(split.second, n);
  auto below = [&](int64_t v) { return lo_incl ? v < lo : v <= lo; };
  auto above = [&](int64_t v) { return hi_incl ? v > hi : v >= hi; };
  for (size_t i = 0; i < split.first; ++i) ASSERT_TRUE(below(data[i]));
  for (size_t i = split.first; i < split.second; ++i) {
    ASSERT_FALSE(below(data[i]));
    ASSERT_FALSE(above(data[i]));
  }
  for (size_t i = split.second; i < n; ++i) ASSERT_TRUE(above(data[i]));
  ASSERT_EQ(AsMultiset(data), orig_set);
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(data[i], orig[oids[i]]);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KernelPropertyTest,
    ::testing::Combine(
        ::testing::Values<size_t>(1, 2, 10, 1000, 10000),     // n
        ::testing::Values<int64_t>(1, 10, 1000000),           // domain
        ::testing::Values<uint64_t>(1, 42, 20040901)));       // seed

// ---------------------------------------------------------------------------
// Tier parity fuzz: every supported vector tier must reproduce the scalar
// crack-in-two kernel *bit-for-bit* (split, writes, permuted layout, oid
// map — the bitmap-frontier scheme performs the exact Hoare swap sequence),
// and crack-in-three must agree on split positions plus all partition
// invariants. Randomized over sizes (odd tails around the 64-element block
// width), unaligned base offsets, duplicate-heavy / pre-sorted / reversed
// shapes and the with/without-oid-payload axis.
// ---------------------------------------------------------------------------

uint64_t TestSeed(uint64_t fallback) {
  const char* env = std::getenv("CRACKSTORE_TEST_SEED");
  if (env != nullptr && *env != '\0') return std::strtoull(env, nullptr, 10);
  return fallback;
}

std::vector<SimdTier> VectorTiers() {
  std::vector<SimdTier> tiers;
  for (SimdTier t :
       {SimdTier::kPredicated, SimdTier::kAvx2, SimdTier::kNeon}) {
    if (SimdTierSupported(t)) tiers.push_back(t);
  }
  return tiers;
}

// Shapes: 0 = random wide domain, 1 = duplicate-heavy, 2 = pre-sorted,
// 3 = reverse-sorted, 4 = NaN-sprinkled (doubles only).
template <typename T>
std::vector<T> FuzzData(size_t n, int shape, uint64_t seed) {
  Pcg32 rng(seed);
  int64_t domain = (shape == 1) ? 8 : 1000000;
  std::vector<T> v(n);
  for (auto& x : v) x = static_cast<T>(rng.NextInRange(-domain, domain));
  if (shape == 2) std::sort(v.begin(), v.end());
  if (shape == 3) std::sort(v.begin(), v.end(), std::greater<T>());
  if constexpr (std::is_same_v<T, double>) {
    if (shape == 4) {
      for (size_t i = 0; i < n; i += 7) {
        v[i] = std::numeric_limits<double>::quiet_NaN();
      }
    }
  }
  return v;
}

template <typename T>
T FuzzPivot(const std::vector<T>& base, size_t offset, size_t n, Pcg32* rng) {
  T pivot;
  switch (rng->NextBounded(4)) {
    case 0: pivot = std::numeric_limits<T>::lowest(); break;
    case 1: pivot = std::numeric_limits<T>::max(); break;
    case 2:
      pivot = n > 0 ? base[offset + rng->NextBounded(uint32_t(n))] : T{0};
      break;
    default: pivot = static_cast<T>(rng->NextInRange(-1000000, 1000000));
  }
  if constexpr (std::is_same_v<T, double>) {
    if (std::isnan(pivot)) pivot = 0.0;
  }
  return pivot;
}

template <typename T>
void CrackTwoParityTrial(size_t n, size_t offset, bool with_oids, int shape,
                         bool le, uint64_t seed) {
  std::vector<T> base = FuzzData<T>(offset + n, shape, seed);
  Pcg32 rng(seed ^ 0x9E3779B97F4A7C15ull);
  T pivot = FuzzPivot(base, offset, n, &rng);

  std::vector<T> ref = base;
  std::vector<Oid> ref_oids = IdentityOids(offset + n);
  CrackSplit want =
      le ? CrackInTwoLeScalar(ref.data() + offset,
                              with_oids ? ref_oids.data() + offset : nullptr,
                              n, pivot)
         : CrackInTwoLtScalar(ref.data() + offset,
                              with_oids ? ref_oids.data() + offset : nullptr,
                              n, pivot);
  for (SimdTier tier : VectorTiers()) {
    SCOPED_TRACE(std::string("tier=") + SimdTierName(tier) +
                 " n=" + std::to_string(n) + " off=" + std::to_string(offset) +
                 " shape=" + std::to_string(shape) +
                 " le=" + std::to_string(le) +
                 " oids=" + std::to_string(with_oids));
    std::vector<T> got = base;
    std::vector<Oid> got_oids = IdentityOids(offset + n);
    CrackSplit s =
        le ? CrackInTwoLeTier(got.data() + offset,
                              with_oids ? got_oids.data() + offset : nullptr,
                              n, pivot, tier)
           : CrackInTwoLtTier(got.data() + offset,
                              with_oids ? got_oids.data() + offset : nullptr,
                              n, pivot, tier);
    ASSERT_EQ(s.split, want.split);
    ASSERT_EQ(s.writes, want.writes);
    ASSERT_EQ(std::memcmp(got.data(), ref.data(), got.size() * sizeof(T)), 0);
    if (with_oids) ASSERT_EQ(got_oids, ref_oids);
  }
}

template <typename T>
void CrackThreeParityTrial(size_t n, size_t offset, bool with_oids, int shape,
                           uint64_t seed) {
  std::vector<T> base = FuzzData<T>(offset + n, shape, seed);
  Pcg32 rng(seed ^ 0xC2B2AE3D27D4EB4Full);
  T lo = static_cast<T>(rng.NextInRange(-1000000, 1000000));
  T hi = static_cast<T>(rng.NextInRange(-1000000, 1000000));
  if (hi < lo) std::swap(lo, hi);
  bool lo_incl = rng.NextBounded(2) == 0;
  bool hi_incl = rng.NextBounded(2) == 0;

  std::vector<T> ref = base;
  Crack3Split want = CrackInThreeScalar(
      ref.data() + offset, static_cast<Oid*>(nullptr), n, lo, lo_incl, hi,
      hi_incl);
  auto below = [&](T v) { return lo_incl ? v < lo : v <= lo; };
  auto above = [&](T v) { return hi_incl ? v > hi : v >= hi; };

  std::vector<T> first_tier_data;
  std::vector<Oid> first_tier_oids;
  for (SimdTier tier : VectorTiers()) {
    SCOPED_TRACE(std::string("tier=") + SimdTierName(tier) +
                 " n=" + std::to_string(n) + " off=" + std::to_string(offset) +
                 " shape=" + std::to_string(shape));
    std::vector<T> got = base;
    std::vector<Oid> got_oids = IdentityOids(offset + n);
    Crack3Split s = CrackInThreeTier(
        got.data() + offset, with_oids ? got_oids.data() + offset : nullptr,
        n, lo, lo_incl, hi, hi_incl, tier);
    // Split positions match the scalar DNF reference exactly.
    ASSERT_EQ(s.first, want.first);
    ASSERT_EQ(s.second, want.second);
    const T* d = got.data() + offset;
    for (size_t i = 0; i < s.first; ++i) ASSERT_TRUE(below(d[i]));
    for (size_t i = s.first; i < s.second; ++i) {
      ASSERT_FALSE(below(d[i]));
      ASSERT_FALSE(above(d[i]));
    }
    for (size_t i = s.second; i < n; ++i) ASSERT_TRUE(above(d[i]));
    ASSERT_EQ(std::multiset<T>(got.begin(), got.end()),
              std::multiset<T>(base.begin(), base.end()));
    if (with_oids) {
      for (size_t i = 0; i < offset + n; ++i) {
        ASSERT_EQ(got[i], base[got_oids[i]]);
      }
    }
    // All vector tiers share the two-pass scheme: bit-identical output.
    if (first_tier_data.empty()) {
      first_tier_data = got;
      first_tier_oids = got_oids;
    } else {
      ASSERT_EQ(got, first_tier_data);
      if (with_oids) {
        ASSERT_EQ(got_oids, first_tier_oids);
      }
    }
  }
}

const size_t kFuzzSizes[] = {0,   1,   2,    63,   64,    65,   127, 128,
                             129, 191, 192,  255,  256,   1000, 4096, 4097};

TEST(KernelTierParityTest, CrackInTwoFuzz) {
  uint64_t seed = TestSeed(20260807);
  SCOPED_TRACE("seed=" + std::to_string(seed) +
               " (rerun with CRACKSTORE_TEST_SEED)");
  Pcg32 rng(seed);
  for (int trial = 0; trial < 150; ++trial) {
    size_t n = kFuzzSizes[rng.NextBounded(16)];
    size_t offset = rng.NextBounded(8);
    bool with_oids = rng.NextBounded(2) == 0;
    bool le = rng.NextBounded(2) == 0;
    uint64_t s = seed + uint64_t(trial) * 7919;
    switch (rng.NextBounded(3)) {
      case 0:
        CrackTwoParityTrial<int32_t>(n, offset, with_oids,
                                     int(rng.NextBounded(4)), le, s);
        break;
      case 1:
        CrackTwoParityTrial<int64_t>(n, offset, with_oids,
                                     int(rng.NextBounded(4)), le, s);
        break;
      default:
        CrackTwoParityTrial<double>(n, offset, with_oids,
                                    int(rng.NextBounded(5)), le, s);
    }
    if (HasFatalFailure()) return;
  }
}

TEST(KernelTierParityTest, CrackInThreeFuzz) {
  uint64_t seed = TestSeed(20260808);
  SCOPED_TRACE("seed=" + std::to_string(seed) +
               " (rerun with CRACKSTORE_TEST_SEED)");
  Pcg32 rng(seed);
  for (int trial = 0; trial < 100; ++trial) {
    size_t n = kFuzzSizes[rng.NextBounded(16)];
    size_t offset = rng.NextBounded(8);
    bool with_oids = rng.NextBounded(2) == 0;
    int shape = int(rng.NextBounded(4));
    uint64_t s = seed + uint64_t(trial) * 104729;
    switch (rng.NextBounded(3)) {
      case 0:
        CrackThreeParityTrial<int32_t>(n, offset, with_oids, shape, s);
        break;
      case 1:
        CrackThreeParityTrial<int64_t>(n, offset, with_oids, shape, s);
        break;
      default:
        CrackThreeParityTrial<double>(n, offset, with_oids, shape, s);
    }
    if (HasFatalFailure()) return;
  }
}

TEST(KernelTierParityTest, RangeMatchMaskAgreesWithScalar) {
  uint64_t seed = TestSeed(20260809);
  SCOPED_TRACE("seed=" + std::to_string(seed) +
               " (rerun with CRACKSTORE_TEST_SEED)");
  Pcg32 rng(seed);
  for (int trial = 0; trial < 60; ++trial) {
    size_t n = kFuzzSizes[rng.NextBounded(16)];
    std::vector<int64_t> data =
        FuzzData<int64_t>(n, int(rng.NextBounded(4)), seed + trial);
    int64_t lo = rng.NextInRange(-1000000, 1000000);
    int64_t hi = rng.NextInRange(lo, 1000000);
    bool lo_incl = rng.NextBounded(2) == 0;
    bool hi_incl = rng.NextBounded(2) == 0;
    bool has_lo = rng.NextBounded(4) != 0;
    bool has_hi = rng.NextBounded(4) != 0;

    std::vector<uint64_t> want(BitmapWords(n) + 1, 0);
    RangeMatchMask(data.data(), n, has_lo, lo, lo_incl, has_hi, hi, hi_incl,
                   want.data(), SimdTier::kScalar);
    for (SimdTier tier : VectorTiers()) {
      SCOPED_TRACE(std::string("tier=") + SimdTierName(tier) +
                   " n=" + std::to_string(n));
      std::vector<uint64_t> got(BitmapWords(n) + 1, 0);
      RangeMatchMask(data.data(), n, has_lo, lo, lo_incl, has_hi, hi, hi_incl,
                     got.data(), tier);
      ASSERT_EQ(got, want);
    }
    ASSERT_EQ(BitmapCount(want.data(), n),
              size_t(std::count_if(data.begin(), data.end(), [&](int64_t v) {
                return (!has_lo || (lo_incl ? v >= lo : v > lo)) &&
                       (!has_hi || (hi_incl ? v <= hi : v < hi));
              })));
    if (HasFatalFailure()) return;
  }
}

TEST(SimdDispatchTest, TierNamesRoundTrip) {
  for (SimdTier t : {SimdTier::kScalar, SimdTier::kPredicated,
                     SimdTier::kAvx2, SimdTier::kNeon}) {
    SimdTier parsed;
    ASSERT_TRUE(ParseSimdTier(SimdTierName(t), &parsed));
    EXPECT_EQ(parsed, t);
  }
  SimdTier parsed;
  EXPECT_FALSE(ParseSimdTier("sse9000", &parsed));
  // Scalar and predicated are always available; the active tier must be
  // executable on this machine.
  EXPECT_TRUE(SimdTierSupported(SimdTier::kScalar));
  EXPECT_TRUE(SimdTierSupported(SimdTier::kPredicated));
  EXPECT_TRUE(SimdTierSupported(ActiveSimdTier()));
  EXPECT_TRUE(SimdTierSupported(BestSupportedSimdTier()));
}

}  // namespace
}  // namespace crackstore
