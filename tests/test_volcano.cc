// Copyright 2026 The CrackStore Authors
//
// Tests for the Volcano iterators of the row engine.

#include <gtest/gtest.h>

#include "engine/sinks.h"
#include "engine/volcano.h"

namespace crackstore {
namespace {

Schema PairSchema() {
  return Schema({{"k", ValueType::kInt64}, {"a", ValueType::kInt64}});
}

std::shared_ptr<RowTable> MakeTable(const std::string& name, int64_t rows,
                                    int64_t a_mult = 1) {
  auto table = RowTable::Create(name, PairSchema());
  for (int64_t i = 0; i < rows; ++i) {
    EXPECT_TRUE(table->Insert({Value(i), Value(i * a_mult)}).ok());
  }
  table->Commit();
  return table;
}

TEST(SeqScanTest, ScansAllTuplesInOrder) {
  auto table = MakeTable("t", 100);
  SeqScanIterator scan(table);
  CountSink sink;
  auto count = Execute(&scan, &sink);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 100u);
}

TEST(SeqScanTest, EmptyTable) {
  auto table = RowTable::Create("e", PairSchema());
  SeqScanIterator scan(table);
  CountSink sink;
  auto count = Execute(&scan, &sink);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 0u);
}

TEST(SeqScanTest, Rescannable) {
  auto table = MakeTable("t", 10);
  SeqScanIterator scan(table);
  CountSink s1, s2;
  ASSERT_TRUE(Execute(&scan, &s1).ok());
  auto again = Execute(&scan, &s2);  // Open() resets the cursor
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 10u);
}

TEST(FilterTest, KeepsMatching) {
  auto table = MakeTable("t", 100);
  FilterIterator filter(std::make_unique<SeqScanIterator>(table), 0,
                        RangeBounds::Closed(10, 19));
  CountSink sink;
  auto count = Execute(&filter, &sink);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 10u);
}

TEST(FilterTest, NegatedKeepsComplement) {
  auto table = MakeTable("t", 100);
  FilterIterator filter(std::make_unique<SeqScanIterator>(table), 0,
                        RangeBounds::Closed(10, 19), /*negate=*/true);
  CountSink sink;
  auto count = Execute(&filter, &sink);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 90u);
}

TEST(FilterTest, FiltersOnSecondColumn) {
  auto table = MakeTable("t", 50, /*a_mult=*/3);
  FilterIterator filter(std::make_unique<SeqScanIterator>(table), 1,
                        RangeBounds::AtMost(30));  // a = 3i <= 30 -> i <= 10
  CountSink sink;
  auto count = Execute(&filter, &sink);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 11u);
}

TEST(ProjectTest, ReordersColumns) {
  auto table = MakeTable("t", 3, /*a_mult=*/10);
  ProjectIterator project(std::make_unique<SeqScanIterator>(table), {1, 0});
  ASSERT_TRUE(project.Open().ok());
  std::vector<Value> row;
  bool eof = false;
  ASSERT_TRUE(project.Next(&row, &eof).ok());
  ASSERT_FALSE(eof);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0].AsInt64(), 0);  // a first
  EXPECT_EQ(row[1].AsInt64(), 0);  // k second
  ASSERT_TRUE(project.Next(&row, &eof).ok());
  EXPECT_EQ(row[0].AsInt64(), 10);
  EXPECT_EQ(row[1].AsInt64(), 1);
}

TEST(NestedLoopJoinTest, EquiJoin) {
  auto left = MakeTable("l", 20);
  auto right = MakeTable("r", 10);
  NestedLoopJoinIterator join(std::make_unique<SeqScanIterator>(left),
                              std::make_unique<SeqScanIterator>(right), 0, 0);
  CountSink sink;
  auto count = Execute(&join, &sink);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 10u);  // keys 0..9 match
}

TEST(NestedLoopJoinTest, ConcatenatesTuples) {
  auto left = MakeTable("l", 2, 100);
  auto right = MakeTable("r", 2, 1000);
  NestedLoopJoinIterator join(std::make_unique<SeqScanIterator>(left),
                              std::make_unique<SeqScanIterator>(right), 0, 0);
  ASSERT_TRUE(join.Open().ok());
  std::vector<Value> row;
  bool eof = false;
  ASSERT_TRUE(join.Next(&row, &eof).ok());
  ASSERT_FALSE(eof);
  ASSERT_EQ(row.size(), 4u);
  EXPECT_EQ(row[1].AsInt64(), row[0].AsInt64() * 100);
  EXPECT_EQ(row[3].AsInt64(), row[2].AsInt64() * 1000);
}

TEST(NestedLoopJoinTest, NoMatches) {
  auto left = MakeTable("l", 5);
  auto right = RowTable::Create("r", PairSchema());
  for (int64_t i = 100; i < 105; ++i) {
    ASSERT_TRUE(right->Insert({Value(i), Value(i)}).ok());
  }
  NestedLoopJoinIterator join(std::make_unique<SeqScanIterator>(left),
                              std::make_unique<SeqScanIterator>(right), 0, 0);
  CountSink sink;
  auto count = Execute(&join, &sink);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 0u);
}

TEST(HashJoinTest, MatchesNestedLoop) {
  auto left = MakeTable("l", 50);
  auto right = MakeTable("r", 30);
  NestedLoopJoinIterator nl(std::make_unique<SeqScanIterator>(left),
                            std::make_unique<SeqScanIterator>(right), 0, 0);
  HashJoinIterator hash(std::make_unique<SeqScanIterator>(left),
                        std::make_unique<SeqScanIterator>(right), 0, 0);
  CountSink s1, s2;
  auto c1 = Execute(&nl, &s1);
  auto c2 = Execute(&hash, &s2);
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  EXPECT_EQ(*c1, *c2);
}

TEST(HashJoinTest, DuplicateKeysProduceCrossProduct) {
  auto left = RowTable::Create("l", PairSchema());
  auto right = RowTable::Create("r", PairSchema());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(left->Insert({Value(int64_t{7}), Value(int64_t{i})}).ok());
  }
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(right->Insert({Value(int64_t{7}), Value(int64_t{i})}).ok());
  }
  HashJoinIterator join(std::make_unique<SeqScanIterator>(left),
                        std::make_unique<SeqScanIterator>(right), 0, 0);
  CountSink sink;
  auto count = Execute(&join, &sink);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 6u);
}

TEST(SinksTest, CountSinkCounts) {
  CountSink sink;
  ASSERT_TRUE(sink.Consume({Value(int64_t{1})}).ok());
  ASSERT_TRUE(sink.Consume({Value(int64_t{2})}).ok());
  EXPECT_EQ(sink.count(), 2u);
}

TEST(SinksTest, FrontendSinkShipsBytes) {
  FrontendSink sink(WireFormat::kBinary, /*flush_bytes=*/16);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        sink.Consume({Value(int64_t{i}), Value(std::string("payload"))})
            .ok());
  }
  EXPECT_EQ(sink.count(), 100u);
  // frame: 4 len + (1+8) int64 + (1+4+7) string = 25 bytes per row.
  EXPECT_EQ(sink.bytes_shipped(), 100u * 25);
}

TEST(SinksTest, FrontendSinkTextFormat) {
  FrontendSink sink(WireFormat::kText);
  ASSERT_TRUE(
      sink.Consume({Value(int64_t{42}), Value(std::string("x"))}).ok());
  EXPECT_EQ(sink.bytes_shipped(), 5u);  // "42\tx\n"
}

TEST(SinksTest, RowMaterializeSinkInsertsAndCommits) {
  auto target = RowTable::Create("out", PairSchema());
  RowMaterializeSink sink(target);
  ASSERT_TRUE(sink.Consume({Value(int64_t{1}), Value(int64_t{2})}).ok());
  ASSERT_TRUE(sink.Finish().ok());
  EXPECT_EQ(target->num_rows(), 1u);
  EXPECT_EQ(target->journal()->num_commits(), 1u);
}

TEST(SinksTest, ColumnMaterializeSinkAppends) {
  auto target = *Relation::Create("out", PairSchema());
  ColumnMaterializeSink sink(target);
  ASSERT_TRUE(sink.Consume({Value(int64_t{3}), Value(int64_t{4})}).ok());
  EXPECT_EQ(target->num_rows(), 1u);
  EXPECT_EQ(target->GetRow(0)[1].AsInt64(), 4);
}

TEST(SinksTest, DeliveryModeNames) {
  EXPECT_STREQ(DeliveryModeName(DeliveryMode::kMaterialize), "materialize");
  EXPECT_STREQ(DeliveryModeName(DeliveryMode::kPrint), "print");
  EXPECT_STREQ(DeliveryModeName(DeliveryMode::kCount), "count");
}

}  // namespace
}  // namespace crackstore
