// Copyright 2026 The CrackStore Authors
//
// Parity suite for the zero-materialization read path: OidSpanSet answers
// must describe exactly the same qualifying rows as the materialized oid
// lists, and the pushed-down aggregate kernels must reproduce the
// materialize-then-loop oracle bit for bit — across strategies, crack
// policies, SIMD tiers, and snapshot states. Randomized sessions print
// their seed; reproduce with CRACKSTORE_TEST_SEED=<seed>.

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/access_path.h"
#include "core/adaptive_store.h"
#include "core/oid_set_ops.h"
#include "core/oid_span_set.h"
#include "core/simd_dispatch.h"
#include "storage/bat.h"
#include "storage/relation.h"
#include "util/rng.h"

namespace crackstore {
namespace {

/// Base seed of the randomized sessions, overridable for reproduction.
uint64_t TestSeed(uint64_t fallback) {
  const char* env = std::getenv("CRACKSTORE_TEST_SEED");
  if (env != nullptr && *env != '\0') return std::strtoull(env, nullptr, 10);
  return fallback;
}

// ---------------------------------------------------------------------------
// OidSpanSet structure.
// ---------------------------------------------------------------------------

TEST(OidSpanSetTest, AddSpanCoalescesAdjacent) {
  OidSpanSet set;
  set.BindIdentity(100);
  set.AddSpan(0, 10);
  set.AddSpan(10, 20);  // adjacent: coalesces
  set.AddSpan(25, 30);
  EXPECT_EQ(set.num_spans(), 2u);
  EXPECT_EQ(set.span_rows(), 25u);
  EXPECT_EQ(set.count(), 25u);
  std::vector<Oid> oids = set.ToOids();
  ASSERT_EQ(oids.size(), 25u);
  EXPECT_EQ(oids.front(), 100u);
  EXPECT_EQ(oids[19], 119u);
  EXPECT_EQ(oids[20], 125u);
  EXPECT_EQ(oids.back(), 129u);
}

TEST(OidSpanSetTest, ExceptionsAndExtras) {
  OidSpanSet set;
  set.BindIdentity(0);
  set.AddSpan(10, 20);
  set.MarkException(0);  // oid 10
  set.MarkException(5);  // oid 15
  set.MarkException(5);  // idempotent
  set.AddExtra(100);
  set.AddExtra(3);
  EXPECT_EQ(set.exceptions(), 2u);
  EXPECT_EQ(set.extras(), 2u);
  EXPECT_EQ(set.count(), 10u - 2u + 2u);
  std::vector<Oid> oids = set.ToOids();
  std::vector<Oid> expect{3, 11, 12, 13, 14, 16, 17, 18, 19, 100};
  EXPECT_EQ(oids, expect);
}

TEST(OidSpanSetTest, FromMatchBitmapFindsRuns) {
  const size_t n = 200;
  std::vector<uint64_t> bm(BitmapWords(n), 0);
  for (size_t i = 10; i < 20; ++i) BitmapSet(bm.data(), i);
  for (size_t i = 63; i < 66; ++i) BitmapSet(bm.data(), i);  // word straddle
  BitmapSet(bm.data(), 199);
  OidSpanSet set = OidSpanSet::FromMatchBitmap(bm.data(), n, /*base=*/1000);
  EXPECT_EQ(set.num_spans(), 3u);
  EXPECT_EQ(set.count(), 14u);
  std::vector<Oid> oids = set.ToOids();
  ASSERT_EQ(oids.size(), 14u);
  EXPECT_EQ(oids.front(), 1010u);
  EXPECT_EQ(oids[10], 1063u);
  EXPECT_EQ(oids.back(), 1199u);
}

TEST(OidSpanSetTest, IdentityIntersections) {
  OidSpanSet a;
  a.BindIdentity(0);
  a.AddSpan(0, 50);
  a.AddSpan(80, 120);
  OidSpanSet b;
  b.BindIdentity(0);
  b.AddSpan(40, 90);
  OidSpanSet both = IntersectIdentitySpanSets(a, b);
  EXPECT_EQ(both.count(), 10u + 10u);  // [40,50) + [80,90)
  std::vector<Oid> list{5, 45, 60, 85, 119, 200};
  std::vector<Oid> hits = IntersectWithIdentitySpans(list, a);
  std::vector<Oid> expect{5, 45, 85, 119};
  EXPECT_EQ(hits, expect);
}

// ---------------------------------------------------------------------------
// SIMD tier bit-identity for the aggregate kernels.
// ---------------------------------------------------------------------------

template <typename T>
void ExpectAggEqual(const SpanAggregates& a, const SpanAggregates& b,
                    const std::string& what) {
  EXPECT_EQ(a.count, b.count) << what;
  EXPECT_EQ(a.sum_i, b.sum_i) << what;
  EXPECT_EQ(a.min_i, b.min_i) << what;
  EXPECT_EQ(a.max_i, b.max_i) << what;
  // Doubles must be bit-identical (canonical accumulation order), not
  // merely approximately equal.
  EXPECT_EQ(a.sum_d, b.sum_d) << what;
  EXPECT_EQ(a.min_d, b.min_d) << what;
  EXPECT_EQ(a.max_d, b.max_d) << what;
}

template <typename T>
void TierParityOver(const std::vector<T>& data, uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<uint64_t> bm(BitmapWords(data.size()), 0);
  for (size_t i = 0; i < data.size(); ++i) {
    if (rng.NextBounded(3) != 0) BitmapSet(bm.data(), i);
  }
  SpanAggregates base =
      AggregateSpanTier(data.data(), data.size(), SimdTier::kScalar);
  SpanAggregates base_masked = AggregateSpanMaskedTier(
      data.data(), data.size(), bm.data(), SimdTier::kScalar);
  for (SimdTier tier : {SimdTier::kPredicated, SimdTier::kAvx2,
                        SimdTier::kNeon}) {
    if (!SimdTierSupported(tier)) continue;
    ExpectAggEqual<T>(base,
                      AggregateSpanTier(data.data(), data.size(), tier),
                      std::string("plain tier ") + SimdTierName(tier));
    ExpectAggEqual<T>(base_masked,
                      AggregateSpanMaskedTier(data.data(), data.size(),
                                              bm.data(), tier),
                      std::string("masked tier ") + SimdTierName(tier));
  }
}

TEST(AggregateKernelTest, TiersBitIdentical) {
  uint64_t seed = TestSeed(1105);
  SCOPED_TRACE("seed=" + std::to_string(seed) +
               " (rerun with CRACKSTORE_TEST_SEED)");
  Pcg32 rng(seed);
  // Sizes straddle vector widths, bitmap words, and the empty case.
  for (size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{64}, size_t{65},
                   size_t{1000}, size_t{4096}, size_t{4105}}) {
    std::vector<int32_t> v32(n);
    std::vector<int64_t> v64(n);
    std::vector<double> vd(n);
    for (size_t i = 0; i < n; ++i) {
      v32[i] = static_cast<int32_t>(rng.NextInRange(-100000, 100000));
      v64[i] = rng.NextInRange(-1000000, 1000000) * 1000003;
      vd[i] = static_cast<double>(rng.NextInRange(-1000000, 1000000)) / 7.0;
    }
    TierParityOver(v32, seed + n);
    TierParityOver(v64, seed + n + 1);
    TierParityOver(vd, seed + n + 2);
  }
}

// ---------------------------------------------------------------------------
// Span answers vs materialized answers, and aggregate pushdown vs the
// select-then-loop oracle, across strategy × policy × concurrency ×
// snapshot state.
// ---------------------------------------------------------------------------

struct SpanRow {
  int64_t c0;
  int64_t c1;
  bool live = true;
};

class SpanReadPathTest
    : public ::testing::TestWithParam<
          std::tuple<AccessStrategy, CrackPolicy, bool>> {};

TEST_P(SpanReadPathTest, RandomizedParityWithOracle) {
  auto [strategy, policy, concurrent] = GetParam();
  uint64_t seed = TestSeed(1106) + static_cast<uint64_t>(strategy) * 31 +
                  static_cast<uint64_t>(policy) * 7 + (concurrent ? 3 : 0);
  SCOPED_TRACE("seed=" + std::to_string(seed) +
               " (rerun with CRACKSTORE_TEST_SEED)");
  AdaptiveStoreOptions opts;
  opts.strategy = strategy;
  opts.policy.policy = policy;
  opts.policy.min_piece_size = 64;
  opts.concurrent = concurrent;
  AdaptiveStore store(opts);

  const size_t n0 = 1200;
  const int64_t domain = 2000;
  Pcg32 rng(seed);
  auto rel = *Relation::Create(
      "R", Schema({{"c0", ValueType::kInt64}, {"c1", ValueType::kInt64}}));
  std::vector<SpanRow> rows;
  for (size_t i = 0; i < n0; ++i) {
    SpanRow row{rng.NextInRange(1, domain), rng.NextInRange(1, domain)};
    ASSERT_TRUE(rel->AppendRow({Value(row.c0), Value(row.c1)}).ok());
    rows.push_back(row);
  }
  ASSERT_TRUE(store.AddTable(rel).ok());

  auto oracle_oids = [&](const RangeBounds& r) {
    std::vector<Oid> oids;
    for (size_t i = 0; i < rows.size(); ++i) {
      if (rows[i].live && r.Contains(rows[i].c0)) {
        oids.push_back(static_cast<Oid>(i));
      }
    }
    return oids;
  };
  auto oracle_agg = [&](const RangeBounds& r) {
    ColumnAggregates agg;
    for (const SpanRow& row : rows) {
      if (!row.live || !r.Contains(row.c0)) continue;
      ++agg.rows;
      agg.sum = static_cast<int64_t>(static_cast<uint64_t>(agg.sum) +
                                     static_cast<uint64_t>(row.c0));
      if (!agg.has_minmax) {
        agg.min = agg.max = row.c0;
        agg.has_minmax = true;
      } else {
        agg.min = std::min(agg.min, row.c0);
        agg.max = std::max(agg.max, row.c0);
      }
    }
    return agg;
  };
  auto random_range = [&]() {
    int64_t lo = rng.NextInRange(-20, domain + 20);
    return RangeBounds::Closed(lo, lo + rng.NextInRange(0, domain / 2));
  };

  for (int op = 0; op < 100; ++op) {
    uint32_t dice = rng.NextBounded(100);
    if (dice < 40) {
      // Selection parity: count, CollectOids, and (when present) the span
      // set must all agree with the oracle.
      RangeBounds range = random_range();
      auto qr = store.SelectRange("R", "c0", range, Delivery::kView);
      ASSERT_TRUE(qr.ok()) << "op " << op;
      std::vector<Oid> expect = oracle_oids(range);
      ASSERT_EQ(qr->count, expect.size()) << "op " << op;
      EXPECT_EQ(qr->CollectOids(), expect) << "op " << op;
      if (qr->has_span_set) {
        EXPECT_EQ(qr->span_set.count(), qr->count) << "op " << op;
        EXPECT_EQ(qr->span_set.ToOids(), expect) << "op " << op;
      }
    } else if (dice < 65) {
      // Aggregate pushdown parity (bit-identical to the oracle loop); any
      // Unimplemented (progressive budgets, concurrent coarse pieces) is a
      // legal refusal — the SQL layer falls back.
      RangeBounds range = random_range();
      auto agg = store.AggregateRange("R", "c0", range);
      if (agg.ok()) {
        ColumnAggregates expect = oracle_agg(range);
        ASSERT_EQ(agg->rows, expect.rows) << "op " << op;
        EXPECT_EQ(agg->sum, expect.sum) << "op " << op;
        ASSERT_EQ(agg->has_minmax, expect.has_minmax) << "op " << op;
        if (expect.has_minmax) {
          EXPECT_EQ(agg->min, expect.min) << "op " << op;
          EXPECT_EQ(agg->max, expect.max) << "op " << op;
        }
      } else {
        EXPECT_TRUE(agg.status().IsUnimplemented()) << agg.status().ToString();
      }
    } else if (dice < 75) {
      // Conjunction parity (kView answers stay sorted ascending).
      RangeBounds r0 = random_range();
      RangeBounds r1 = random_range();
      auto qr = store.SelectConjunction("R", {{"c0", r0}, {"c1", r1}},
                                        Delivery::kView);
      ASSERT_TRUE(qr.ok()) << "op " << op;
      uint64_t expect = 0;
      for (const SpanRow& row : rows) {
        if (row.live && r0.Contains(row.c0) && r1.Contains(row.c1)) ++expect;
      }
      ASSERT_EQ(qr->count, expect) << "op " << op;
      EXPECT_EQ(qr->CollectOids().size(), qr->count) << "op " << op;
    } else if (dice < 88) {
      SpanRow row{rng.NextInRange(1, domain), rng.NextInRange(1, domain)};
      auto qr = store.Insert("R", {Value(row.c0), Value(row.c1)});
      ASSERT_TRUE(qr.ok()) << "op " << op;
      rows.push_back(row);
    } else {
      int64_t lo = rng.NextInRange(1, domain);
      RangeBounds range = RangeBounds::Closed(lo, lo + 4);
      auto qr = store.Delete("R", {{"c0", range}});
      ASSERT_TRUE(qr.ok()) << "op " << op;
      for (SpanRow& row : rows) {
        if (row.live && range.Contains(row.c0)) row.live = false;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Serial, SpanReadPathTest,
    ::testing::Combine(
        ::testing::Values(AccessStrategy::kCrack, AccessStrategy::kSort,
                          AccessStrategy::kScan),
        ::testing::Values(CrackPolicy::kStandard, CrackPolicy::kStochastic,
                          CrackPolicy::kCoarse, CrackPolicy::kAuto,
                          CrackPolicy::kProgressive),
        ::testing::Values(false)));

INSTANTIATE_TEST_SUITE_P(
    Concurrent, SpanReadPathTest,
    ::testing::Combine(
        ::testing::Values(AccessStrategy::kCrack, AccessStrategy::kScan),
        ::testing::Values(CrackPolicy::kStandard, CrackPolicy::kStochastic,
                          CrackPolicy::kCoarse, CrackPolicy::kAuto,
                          CrackPolicy::kProgressive),
        ::testing::Values(true)));

// ---------------------------------------------------------------------------
// Snapshot divergence: an old snapshot's pushdown must fold overrides and
// hide rows exactly like its materialized read does.
// ---------------------------------------------------------------------------

TEST(SpanReadPathSnapshotTest, AggregatePushdownHonorsSnapshots) {
  AdaptiveStoreOptions opts;
  opts.strategy = AccessStrategy::kCrack;
  AdaptiveStore store(opts);
  auto rel = *Relation::Create("R", Schema({{"c0", ValueType::kInt64}}));
  for (int64_t v = 1; v <= 100; ++v) {
    ASSERT_TRUE(rel->AppendRow({Value(v)}).ok());
  }
  ASSERT_TRUE(store.AddTable(rel).ok());
  // Warm the cracker so the snapshot read sees a cracked column.
  ASSERT_TRUE(store.SelectRange("R", "c0", RangeBounds::Closed(20, 60)).ok());

  TxnId old_snap = *store.Begin();
  // Make the old snapshot diverge: bump a band, delete another.
  ASSERT_TRUE(
      store.Update("R", {{"c0", Value(int64_t{1000})}},
                   {{"c0", RangeBounds::Closed(10, 19)}})
          .ok());
  ASSERT_TRUE(store.Delete("R", {{"c0", RangeBounds::Closed(30, 39)}}).ok());

  // Old snapshot: still sees 1..100 intact.
  auto agg_old = store.AggregateRange("R", "c0", RangeBounds::Closed(1, 100),
                                      old_snap);
  ASSERT_TRUE(agg_old.ok()) << agg_old.status().ToString();
  EXPECT_EQ(agg_old->rows, 100u);
  EXPECT_EQ(agg_old->sum, 5050);
  EXPECT_EQ(agg_old->min, 1);
  EXPECT_EQ(agg_old->max, 100);

  // Latest: 10..19 moved to 1000 (out of range), 30..39 gone.
  auto agg_new = store.AggregateRange("R", "c0", RangeBounds::Closed(1, 100));
  ASSERT_TRUE(agg_new.ok()) << agg_new.status().ToString();
  EXPECT_EQ(agg_new->rows, 80u);
  EXPECT_EQ(agg_new->sum, 5050 - (10 + 19) * 10 / 2 - (30 + 39) * 10 / 2);
  // And the unbounded variant picks the relocated band back up.
  auto agg_all = store.AggregateRange("R", "c0", TypedRange::All());
  ASSERT_TRUE(agg_all.ok()) << agg_all.status().ToString();
  EXPECT_EQ(agg_all->rows, 90u);
  EXPECT_EQ(agg_all->max, 1000);
  ASSERT_TRUE(store.Commit(old_snap).ok());
}

}  // namespace
}  // namespace crackstore
