// Copyright 2026 The CrackStore Authors
//
// Self-driving cracking suite: the workload detector
// (core/workload_monitor.h), the kAuto runtime policy switch, and the
// kProgressive budgeted-crack policy (core/crack_policy.h,
// core/access_path.h). Three claims are pinned down:
//
//   * the detector classifies random / sequential / skewed bound streams
//     correctly and stays kUnknown below its sample floor;
//   * kAuto switches the effective policy live (no stop-the-world) and
//     every answer — before, during and after a switch — matches a fixed
//     oracle, including under racing readers and racing SET POLICY;
//   * kProgressive answers exactly like standard cracking while never
//     spending more than max(floor, budget x column size) kernel writes in
//     a single query, and repeated queries drain the carried-over frontier
//     to zero pending rows.
//
// The racing sections are ThreadSanitizer targets (see ci.yml's tsan lane).
// Randomized sections print their seed on failure; rerun a reported seed
// with CRACKSTORE_TEST_SEED=<seed>.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/access_path.h"
#include "core/adaptive_store.h"
#include "core/crack_policy.h"
#include "core/task_pool.h"
#include "core/workload_monitor.h"
#include "sql/executor.h"
#include "storage/bat.h"
#include "util/rng.h"
#include "workload/tapestry.h"

namespace crackstore {
namespace {

uint64_t TestSeed(uint64_t fallback) {
  const char* env = std::getenv("CRACKSTORE_TEST_SEED");
  if (env != nullptr && *env != '\0') return std::strtoull(env, nullptr, 10);
  return fallback;
}

std::shared_ptr<Bat> PermutationColumn(size_t n, uint64_t seed) {
  std::vector<int64_t> values(n);
  for (size_t i = 0; i < n; ++i) values[i] = static_cast<int64_t>(i + 1);
  Pcg32 rng(seed);
  Shuffle(&values, &rng);
  return Bat::FromVector(values, "c");
}

// ---------------------------------------------------------------------------
// WorkloadMonitor: the classifier itself.
// ---------------------------------------------------------------------------

TEST(WorkloadMonitorTest, UnknownBelowSampleFloor) {
  WorkloadMonitorOptions opts;
  WorkloadMonitor monitor(opts);
  EXPECT_EQ(monitor.Classify(), WorkloadPattern::kUnknown);
  for (size_t i = 0; i + 1 < opts.min_samples; ++i) {
    monitor.Record(static_cast<double>(i) * 100.0);
    EXPECT_EQ(monitor.Classify(), WorkloadPattern::kUnknown)
        << "classified after only " << (i + 1) << " samples";
  }
  monitor.Record(static_cast<double>(opts.min_samples) * 100.0);
  EXPECT_NE(monitor.Classify(), WorkloadPattern::kUnknown);
  EXPECT_EQ(monitor.samples(), opts.min_samples);
}

TEST(WorkloadMonitorTest, ClassifiesSequentialSweep) {
  WorkloadMonitor monitor;
  for (int i = 0; i < 20; ++i) monitor.Record(i * 1000.0);
  EXPECT_EQ(monitor.Classify(), WorkloadPattern::kSequential);
  // Descending sweeps are sequential too (majority sign, not "+").
  WorkloadMonitor down;
  for (int i = 20; i > 0; --i) down.Record(i * 1000.0);
  EXPECT_EQ(down.Classify(), WorkloadPattern::kSequential);
}

TEST(WorkloadMonitorTest, ClassifiesSkewedCluster) {
  // Locality is measured against the all-time span, so establish the span
  // first (two probes at the domain edges), then hammer one narrow region
  // with non-monotone bounds.
  WorkloadMonitor monitor;
  monitor.Record(0.0);
  monitor.Record(100000.0);
  Pcg32 rng(TestSeed(11));
  for (int i = 0; i < 30; ++i) {
    monitor.Record(50000.0 + static_cast<double>(rng.NextInRange(0, 500)));
  }
  EXPECT_EQ(monitor.Classify(), WorkloadPattern::kSkewed);
}

TEST(WorkloadMonitorTest, ClassifiesRandomJumps) {
  const uint64_t seed = TestSeed(17);
  SCOPED_TRACE("seed=" + std::to_string(seed));
  WorkloadMonitor monitor;
  Pcg32 rng(seed);
  for (int i = 0; i < 32; ++i) {
    monitor.Record(static_cast<double>(rng.NextInRange(0, 1000000)));
  }
  EXPECT_EQ(monitor.Classify(), WorkloadPattern::kRandom);
}

TEST(WorkloadMonitorTest, ResetDropsState) {
  WorkloadMonitor monitor;
  for (int i = 0; i < 20; ++i) monitor.Record(i * 1000.0);
  ASSERT_EQ(monitor.Classify(), WorkloadPattern::kSequential);
  monitor.Reset();
  EXPECT_EQ(monitor.Classify(), WorkloadPattern::kUnknown);
  EXPECT_EQ(monitor.samples(), 0u);
}

// ---------------------------------------------------------------------------
// Policy-name surface.
// ---------------------------------------------------------------------------

TEST(AdaptivePolicyTest, ParseRoundTripsSelfDrivingNames) {
  for (CrackPolicy policy :
       {CrackPolicy::kStandard, CrackPolicy::kStochastic, CrackPolicy::kCoarse,
        CrackPolicy::kAuto, CrackPolicy::kProgressive}) {
    CrackPolicy parsed = CrackPolicy::kCoarse;  // arbitrary non-default
    EXPECT_TRUE(ParseCrackPolicy(CrackPolicyName(policy), &parsed))
        << CrackPolicyName(policy);
    EXPECT_EQ(parsed, policy);
  }
  CrackPolicy parsed = CrackPolicy::kProgressive;
  EXPECT_TRUE(ParseCrackPolicy("ddc", &parsed));
  EXPECT_EQ(parsed, CrackPolicy::kStochastic);
  EXPECT_TRUE(ParseCrackPolicy("dd1c", &parsed));
  EXPECT_EQ(parsed, CrackPolicy::kCoarse);
  // Unknown names fail and leave the out-param untouched.
  parsed = CrackPolicy::kAuto;
  EXPECT_FALSE(ParseCrackPolicy("garbage", &parsed));
  EXPECT_EQ(parsed, CrackPolicy::kAuto);
}

// ---------------------------------------------------------------------------
// kAuto: the engine-level switch protocol (hysteresis, counters), then the
// same behavior observed through a live access path.
// ---------------------------------------------------------------------------

TEST(AdaptivePolicyTest, EngineSwitchesOnConfirmedReclassification) {
  const uint64_t seed = TestSeed(23);
  SCOPED_TRACE("seed=" + std::to_string(seed));
  CrackPolicyOptions opts;
  opts.policy = CrackPolicy::kAuto;
  CrackPolicyEngine engine(opts);
  // The robust prior: stochastic until the detector has evidence.
  EXPECT_EQ(engine.policy(), CrackPolicy::kAuto);
  EXPECT_EQ(engine.effective(), CrackPolicy::kStochastic);
  EXPECT_EQ(engine.switches(), 0u);

  // Random bound stream: the detector must steer to standard.
  Pcg32 rng(seed);
  for (int i = 0; i < 24; ++i) {
    engine.Observe(static_cast<double>(rng.NextInRange(0, 1000000)));
  }
  EXPECT_EQ(engine.pattern(), WorkloadPattern::kRandom);
  EXPECT_EQ(engine.effective(), CrackPolicy::kStandard);
  EXPECT_EQ(engine.switches(), 1u);
  EXPECT_EQ(engine.observed_samples(), 24u);

  // Regime change to a sequential sweep: back to stochastic.
  for (int i = 0; i < 48; ++i) engine.Observe(i * 10000.0);
  EXPECT_EQ(engine.pattern(), WorkloadPattern::kSequential);
  EXPECT_EQ(engine.effective(), CrackPolicy::kStochastic);
  EXPECT_EQ(engine.switches(), 2u);

  // Reset re-arms everything.
  engine.Reset(opts);
  EXPECT_EQ(engine.effective(), CrackPolicy::kStochastic);
  EXPECT_EQ(engine.switches(), 0u);
  EXPECT_EQ(engine.pattern(), WorkloadPattern::kUnknown);
}

TEST(AdaptivePolicyTest, AutoPathDetectsAndAnswersLikeStandard) {
  const uint64_t seed = TestSeed(29);
  SCOPED_TRACE("seed=" + std::to_string(seed));
  const size_t n = 20000;
  const int64_t width = 200;
  auto bat = PermutationColumn(n, seed);

  auto make_path = [&](CrackPolicy policy) {
    AccessPathConfig config;
    config.strategy = AccessStrategy::kCrack;
    config.policy.policy = policy;
    config.policy.min_piece_size = 128;
    auto path = CreateColumnAccessPath(bat, config);
    EXPECT_TRUE(path.ok());
    return std::move(*path);
  };
  auto oracle = make_path(CrackPolicy::kStandard);
  auto auto_path = make_path(CrackPolicy::kAuto);

  Pcg32 rng(seed + 1);
  for (int q = 0; q < 40; ++q) {
    int64_t lo = rng.NextInRange(1, static_cast<int64_t>(n) - width);
    RangeBounds bounds = RangeBounds::HalfOpen(lo, lo + width);
    IoStats io;
    AccessSelection want = oracle->Select(bounds, /*want_oids=*/false, &io);
    AccessSelection got = auto_path->Select(bounds, /*want_oids=*/false, &io);
    EXPECT_EQ(got.count, want.count) << "query " << q;
  }
  PathPolicyStatus status = auto_path->PolicyStatus();
  EXPECT_EQ(status.configured, CrackPolicy::kAuto);
  EXPECT_EQ(status.effective, CrackPolicy::kStandard);  // random detected
  EXPECT_EQ(status.pattern, WorkloadPattern::kRandom);
  EXPECT_GE(status.switches, 1u);
  EXPECT_EQ(status.samples, 40u);
  EXPECT_TRUE(status.crack);
}

// ---------------------------------------------------------------------------
// kProgressive: oracle parity, the per-query write bound, and frontier
// convergence under repetition.
// ---------------------------------------------------------------------------

TEST(ProgressivePolicyTest, MatchesOracleAndBoundsPerQueryWrites) {
  const uint64_t seed = TestSeed(31);
  SCOPED_TRACE("seed=" + std::to_string(seed));
  const size_t n = 50000;
  const double budget = 0.05;
  const int64_t width = 500;
  auto bat = PermutationColumn(n, seed);

  AccessPathConfig config;
  config.strategy = AccessStrategy::kCrack;
  config.policy.policy = CrackPolicy::kStandard;
  config.policy.min_piece_size = 256;
  auto oracle = CreateColumnAccessPath(bat, config);
  ASSERT_TRUE(oracle.ok());
  config.policy.policy = CrackPolicy::kProgressive;
  config.policy.progressive_budget = budget;
  auto progressive = CreateColumnAccessPath(bat, config);
  ASSERT_TRUE(progressive.ok());

  // The pool is budget x the touched piece's span with an absolute floor;
  // the whole column bounds every span, and a partition pass may overshoot
  // by a couple of swaps — hence the small slack.
  const uint64_t limit =
      std::max<uint64_t>(256, static_cast<uint64_t>(
                                  budget * static_cast<double>(n))) +
      32;
  uint64_t oracle_max_writes = 0;
  Pcg32 rng(seed + 1);
  for (int q = 0; q < 60; ++q) {
    int64_t lo = rng.NextInRange(1, static_cast<int64_t>(n) - width);
    RangeBounds bounds = RangeBounds::HalfOpen(lo, lo + width);
    IoStats oracle_io;
    AccessSelection want =
        (*oracle)->Select(bounds, /*want_oids=*/false, &oracle_io);
    oracle_max_writes = std::max(oracle_max_writes, oracle_io.kernel_writes);
    IoStats io;
    AccessSelection got =
        (*progressive)->Select(bounds, /*want_oids=*/false, &io);
    EXPECT_EQ(got.count, want.count) << "query " << q;
    EXPECT_LE(io.kernel_writes, limit)
        << "query " << q << " blew the progressive budget";
  }
  // The bound is not vacuous: standard cracking's first-touch spikes far
  // exceed it on a column this size.
  EXPECT_GT(oracle_max_writes, limit);
  PathPolicyStatus status = (*progressive)->PolicyStatus();
  EXPECT_EQ(status.configured, CrackPolicy::kProgressive);
  EXPECT_EQ(status.progressive_budget, budget);
}

TEST(ProgressivePolicyTest, RepeatedQueriesDrainTheFrontier) {
  const uint64_t seed = TestSeed(37);
  SCOPED_TRACE("seed=" + std::to_string(seed));
  const size_t n = 20000;
  auto bat = PermutationColumn(n, seed);

  AccessPathConfig config;
  config.strategy = AccessStrategy::kCrack;
  config.policy.policy = CrackPolicy::kProgressive;
  config.policy.min_piece_size = 128;
  config.policy.progressive_budget = 0.1;
  auto path = CreateColumnAccessPath(bat, config);
  ASSERT_TRUE(path.ok());

  // A fixed query set, repeated: every pass advances the carried-over
  // frontiers by at least the budget pool, so the pending rows must reach
  // zero — after which the cuts are exact and stay exact.
  const std::vector<RangeBounds> queries = {
      RangeBounds::HalfOpen(1000, 2000),  RangeBounds::HalfOpen(5000, 5500),
      RangeBounds::HalfOpen(9000, 12000), RangeBounds::HalfOpen(15000, 15100),
      RangeBounds::HalfOpen(17500, 19000)};
  std::vector<uint64_t> want;
  size_t pending = n;
  for (int round = 0; round < 400 && pending > 0; ++round) {
    for (size_t q = 0; q < queries.size(); ++q) {
      IoStats io;
      AccessSelection sel =
          (*path)->Select(queries[q], /*want_oids=*/false, &io);
      if (round == 0) {
        want.push_back(sel.count);
      } else {
        ASSERT_EQ(sel.count, want[q]) << "round " << round << " query " << q;
      }
    }
    pending = (*path)->PolicyStatus().progressive_pending;
  }
  EXPECT_EQ(pending, 0u) << "frontier never drained";
}

// ---------------------------------------------------------------------------
// Runtime SET POLICY through the store: live switch (accelerators kept),
// report surface, and SQL statements.
// ---------------------------------------------------------------------------

TEST(AdaptivePolicyTest, StoreSwitchesPolicyLiveAndReportsIt) {
  TapestryOptions topts;
  topts.num_rows = 4000;
  topts.seed = 19;
  AdaptiveStoreOptions opts;
  opts.strategy = AccessStrategy::kCrack;
  opts.policy.min_piece_size = 128;
  AdaptiveStore store(opts);
  ASSERT_TRUE(store.AddTable(*BuildTapestry("R", topts)).ok());

  auto count = [&](int64_t lo, int64_t hi) {
    auto result = store.SelectRange("R", "c0", RangeBounds::Closed(lo, hi));
    EXPECT_TRUE(result.ok());
    return result->count;
  };
  uint64_t want = count(100, 1500);
  size_t pieces_before = *store.NumPieces("R", "c0");

  CrackPolicyOptions next = store.options().policy;
  next.policy = CrackPolicy::kProgressive;
  next.progressive_budget = 0.2;
  ASSERT_TRUE(store.SetPolicy(next).ok());
  EXPECT_EQ(store.options().policy.policy, CrackPolicy::kProgressive);
  // Live switch: the accelerator (and its pieces) survived.
  EXPECT_EQ(*store.NumPieces("R", "c0"), pieces_before);
  EXPECT_EQ(count(100, 1500), want);

  auto report = store.PolicyReport();
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report[0].table, "R");
  EXPECT_EQ(report[0].column, "c0");
  EXPECT_EQ(report[0].status.configured, CrackPolicy::kProgressive);
  EXPECT_EQ(report[0].status.progressive_budget, 0.2);

  next.policy = CrackPolicy::kAuto;
  ASSERT_TRUE(store.SetPolicy(next).ok());
  EXPECT_EQ(count(100, 1500), want);
  EXPECT_EQ(store.PolicyReport()[0].status.configured, CrackPolicy::kAuto);
}

TEST(AdaptivePolicyTest, SqlSetAndShowPolicy) {
  TapestryOptions topts;
  topts.num_rows = 2000;
  AdaptiveStoreOptions opts;
  opts.strategy = AccessStrategy::kCrack;
  AdaptiveStore store(opts);
  ASSERT_TRUE(store.AddTable(*BuildTapestry("R", topts)).ok());

  // Before any query: the report is empty but the statement still works.
  auto show = sql::ExecuteSql(&store, "SHOW POLICY");
  ASSERT_TRUE(show.ok());
  EXPECT_EQ(show->count, 0u);

  auto set = sql::ExecuteSql(&store, "SET POLICY progressive BUDGET 0.25");
  ASSERT_TRUE(set.ok());
  EXPECT_NE(set->message.find("progressive"), std::string::npos);
  EXPECT_EQ(store.options().policy.policy, CrackPolicy::kProgressive);
  EXPECT_EQ(store.options().policy.progressive_budget, 0.25);

  // Research aliases parse through SQL too.
  ASSERT_TRUE(sql::ExecuteSql(&store, "SET POLICY ddc").ok());
  EXPECT_EQ(store.options().policy.policy, CrackPolicy::kStochastic);
  // ... and the budget knob survives a switch that does not restate it.
  EXPECT_EQ(store.options().policy.progressive_budget, 0.25);

  EXPECT_FALSE(sql::ExecuteSql(&store, "SET POLICY bogus").ok());
  EXPECT_FALSE(sql::ExecuteSql(&store, "SET POLICY progressive BUDGET 2").ok());

  // After a query the report carries the column's live state.
  ASSERT_TRUE(
      sql::ExecuteSql(&store, "SELECT COUNT(*) FROM R WHERE c0 < 500").ok());
  show = sql::ExecuteSql(&store, "SHOW POLICY");
  ASSERT_TRUE(show.ok());
  EXPECT_EQ(show->count, 1u);
  EXPECT_NE(show->message.find("R"), std::string::npos);
  EXPECT_NE(show->message.find("c0"), std::string::npos);
  EXPECT_NE(show->message.find("stochastic"), std::string::npos);

  // POLICY stayed a soft keyword: a column named "policy" still updates.
  EXPECT_FALSE(sql::ExecuteSql(&store, "UPDATE R SET policy = 5").ok());
  // (fails on the unknown column, not in the parser)
  auto parse_check = sql::ParseStatement("UPDATE R SET policy = 5");
  ASSERT_TRUE(parse_check.ok());
  EXPECT_EQ(parse_check->kind, sql::StatementKind::kUpdate);
}

// ---------------------------------------------------------------------------
// Concurrency: the self-driving policies ride the shared-latch path, and a
// racing SET POLICY must never corrupt an answer (TSan targets).
// ---------------------------------------------------------------------------

TEST(AdaptivePolicyTest, SelfDrivingPoliciesRideSharedPathUnderRace) {
  const uint64_t seed = TestSeed(616161);
  SCOPED_TRACE("seed=" + std::to_string(seed));
  TaskPool::SetGlobalThreads(4);
  for (CrackPolicy policy : {CrackPolicy::kAuto, CrackPolicy::kProgressive}) {
    SCOPED_TRACE(CrackPolicyName(policy));
    TapestryOptions topts;
    topts.num_rows = 3000;
    topts.seed = seed;

    AdaptiveStoreOptions sopts;
    sopts.strategy = AccessStrategy::kCrack;
    sopts.policy.policy = policy;
    sopts.policy.min_piece_size = 64;
    sopts.policy.progressive_budget = 0.1;
    AdaptiveStore serial(sopts);
    ASSERT_TRUE(serial.AddTable(*BuildTapestry("R", topts)).ok());

    AdaptiveStoreOptions copts = sopts;
    copts.concurrent = true;
    AdaptiveStore concurrent(copts);
    ASSERT_TRUE(concurrent.AddTable(*BuildTapestry("R", topts)).ok());

    const int64_t n = static_cast<int64_t>(topts.num_rows);
    struct Query {
      int64_t lo = 0;
      int64_t hi = 0;
      uint64_t want = 0;
    };
    Pcg32 rng(seed + 7);
    std::vector<Query> queries;
    for (int i = 0; i < 48; ++i) {
      Query q;
      q.lo = rng.NextInRange(1, n);
      q.hi = q.lo + rng.NextInRange(0, n / 3);
      auto want =
          serial.SelectRange("R", "c0", RangeBounds::Closed(q.lo, q.hi));
      ASSERT_TRUE(want.ok());
      q.want = want->count;
      queries.push_back(q);
    }
    std::vector<std::thread> threads;
    for (size_t k = 0; k < 4; ++k) {
      threads.emplace_back([&, k] {
        for (int pass = 0; pass < 4; ++pass) {
          for (size_t i = k; i < queries.size(); i += 4) {
            auto got = concurrent.SelectRange(
                "R", "c0", RangeBounds::Closed(queries[i].lo, queries[i].hi));
            if (!got.ok() || got->count != queries[i].want) {
              ADD_FAILURE()
                  << CrackPolicyName(policy) << " query " << i << ": got "
                  << (got.ok() ? got->count : 0) << " want "
                  << queries[i].want;
              return;
            }
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_GT(*concurrent.NumPieces("R", "c0"), 1u);
  }
  TaskPool::SetGlobalThreads(0);
}

TEST(AdaptivePolicyTest, RuntimeSetPolicyRacesReaders) {
  const uint64_t seed = TestSeed(717171);
  SCOPED_TRACE("seed=" + std::to_string(seed));
  TaskPool::SetGlobalThreads(4);
  TapestryOptions topts;
  topts.num_rows = 3000;
  topts.seed = seed;

  AdaptiveStoreOptions sopts;
  sopts.strategy = AccessStrategy::kCrack;
  sopts.policy.min_piece_size = 64;
  AdaptiveStore serial(sopts);
  ASSERT_TRUE(serial.AddTable(*BuildTapestry("R", topts)).ok());

  AdaptiveStoreOptions copts = sopts;
  copts.concurrent = true;
  AdaptiveStore concurrent(copts);
  ASSERT_TRUE(concurrent.AddTable(*BuildTapestry("R", topts)).ok());

  const int64_t n = static_cast<int64_t>(topts.num_rows);
  struct Query {
    int64_t lo = 0;
    int64_t hi = 0;
    uint64_t want = 0;
  };
  Pcg32 rng(seed + 3);
  std::vector<Query> queries;
  for (int i = 0; i < 32; ++i) {
    Query q;
    q.lo = rng.NextInRange(1, n);
    q.hi = q.lo + rng.NextInRange(0, n / 4);
    auto want = serial.SelectRange("R", "c0", RangeBounds::Closed(q.lo, q.hi));
    ASSERT_TRUE(want.ok());
    q.want = want->count;
    queries.push_back(q);
  }

  // Readers hammer the fixed query set while the main thread keeps
  // switching the live policy across every discipline. Every answer must
  // stay exact through every switch.
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (size_t k = 0; k < 4; ++k) {
    readers.emplace_back([&, k] {
      size_t i = k;
      while (!stop.load(std::memory_order_relaxed)) {
        const Query& q = queries[i % queries.size()];
        auto got = concurrent.SelectRange("R", "c0",
                                          RangeBounds::Closed(q.lo, q.hi));
        if (!got.ok() || got->count != q.want) {
          ADD_FAILURE() << "query " << (i % queries.size()) << ": got "
                        << (got.ok() ? got->count : 0) << " want " << q.want;
          stop.store(true, std::memory_order_relaxed);
          return;
        }
        ++i;
      }
    });
  }
  const CrackPolicy cycle[] = {CrackPolicy::kStochastic, CrackPolicy::kCoarse,
                               CrackPolicy::kProgressive, CrackPolicy::kAuto,
                               CrackPolicy::kStandard};
  for (int round = 0; round < 20 && !stop.load(); ++round) {
    CrackPolicyOptions next = concurrent.options().policy;
    next.policy = cycle[round % 5];
    ASSERT_TRUE(concurrent.SetPolicy(next).ok());
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  EXPECT_EQ(concurrent.options().policy.policy, CrackPolicy::kStandard);
  TaskPool::SetGlobalThreads(0);
}

}  // namespace
}  // namespace crackstore
