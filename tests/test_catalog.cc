// Copyright 2026 The CrackStore Authors
//
// Tests for the system catalog and partitioned-table administration.

#include <gtest/gtest.h>

#include "catalog/catalog.h"

namespace crackstore {
namespace {

Schema PairSchema() {
  return Schema({{"k", ValueType::kInt64}, {"a", ValueType::kInt64}});
}

std::shared_ptr<Relation> MakeRelation(const std::string& name) {
  return *Relation::Create(name, PairSchema());
}

TEST(CatalogTest, RegisterAndGetRelation) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterRelation(MakeRelation("R")).ok());
  auto rel = catalog.GetRelation("R");
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ((*rel)->name(), "R");
  EXPECT_TRUE(catalog.GetRelation("S").status().IsNotFound());
}

TEST(CatalogTest, RegisterAndGetRowTable) {
  Catalog catalog;
  ASSERT_TRUE(
      catalog.RegisterRowTable(RowTable::Create("T", PairSchema())).ok());
  EXPECT_TRUE(catalog.GetRowTable("T").ok());
  EXPECT_TRUE(catalog.GetRowTable("U").status().IsNotFound());
}

TEST(CatalogTest, DuplicateNamesRejectedAcrossKinds) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterRelation(MakeRelation("X")).ok());
  EXPECT_TRUE(catalog.RegisterRowTable(RowTable::Create("X", PairSchema()))
                  .IsAlreadyExists());
}

TEST(CatalogTest, NullRejected) {
  Catalog catalog;
  EXPECT_TRUE(catalog.RegisterRelation(nullptr).IsInvalidArgument());
  EXPECT_TRUE(catalog.RegisterRowTable(nullptr).IsInvalidArgument());
}

TEST(CatalogTest, DropTable) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterRelation(MakeRelation("R")).ok());
  EXPECT_TRUE(catalog.DropTable("R").ok());
  EXPECT_TRUE(catalog.GetRelation("R").status().IsNotFound());
  EXPECT_TRUE(catalog.DropTable("R").IsNotFound());
}

TEST(CatalogTest, HasTableAndCount) {
  Catalog catalog;
  EXPECT_FALSE(catalog.HasTable("R"));
  ASSERT_TRUE(catalog.RegisterRelation(MakeRelation("R")).ok());
  ASSERT_TRUE(
      catalog.RegisterRowTable(RowTable::Create("T", PairSchema())).ok());
  EXPECT_TRUE(catalog.HasTable("R"));
  EXPECT_TRUE(catalog.HasTable("T"));
  EXPECT_EQ(catalog.num_tables(), 2u);
}

TEST(CatalogTest, RowTableNames) {
  Catalog catalog;
  ASSERT_TRUE(
      catalog.RegisterRowTable(RowTable::Create("b", PairSchema())).ok());
  ASSERT_TRUE(
      catalog.RegisterRowTable(RowTable::Create("a", PairSchema())).ok());
  std::vector<std::string> names = catalog.RowTableNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
}

TEST(CatalogTest, MutationsCountCatalogOps) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterRelation(MakeRelation("R")).ok());
  uint64_t after_register = catalog.stats().catalog_ops;
  EXPECT_GE(after_register, 1u);
  ASSERT_TRUE(catalog.DropTable("R").ok());
  EXPECT_GT(catalog.stats().catalog_ops, after_register);
  EXPECT_GT(catalog.stats().page_writes, 0u);  // system-table page touches
}

TEST(CatalogTest, PartitionedTableLifecycle) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreatePartitionedTable("base").ok());
  EXPECT_TRUE(catalog.CreatePartitionedTable("base").IsAlreadyExists());

  FragmentInfo f;
  f.fragment_table = "base_in";
  f.column = "a";
  f.lo = 0;
  f.hi = 10;
  f.row_count = 11;
  ASSERT_TRUE(catalog.AddFragment("base", f).ok());
  EXPECT_TRUE(catalog.AddFragment("other", f).IsNotFound());

  auto frags = catalog.GetFragments("base");
  ASSERT_TRUE(frags.ok());
  ASSERT_EQ(frags->size(), 1u);
  EXPECT_EQ((*frags)[0].fragment_table, "base_in");
}

TEST(CatalogTest, FragmentPruningByBounds) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreatePartitionedTable("p").ok());
  FragmentInfo low;
  low.fragment_table = "p_low";
  low.column = "a";
  low.lo = 0;
  low.hi = 49;
  FragmentInfo high;
  high.fragment_table = "p_high";
  high.column = "a";
  high.lo = 50;
  high.hi = 100;
  ASSERT_TRUE(catalog.AddFragment("p", low).ok());
  ASSERT_TRUE(catalog.AddFragment("p", high).ok());

  auto hits = catalog.FragmentsIntersecting("p", "a", 10, 20);
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0].fragment_table, "p_low");

  auto both = catalog.FragmentsIntersecting("p", "a", 40, 60);
  ASSERT_TRUE(both.ok());
  EXPECT_EQ(both->size(), 2u);
}

TEST(CatalogTest, FragmentPruningRespectsExclusivity) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreatePartitionedTable("p").ok());
  FragmentInfo f;
  f.fragment_table = "edge";
  f.column = "a";
  f.lo = 0;
  f.hi = 50;
  f.hi_inclusive = false;  // values < 50
  ASSERT_TRUE(catalog.AddFragment("p", f).ok());
  // Query [50, 60] cannot match values < 50.
  auto hits = catalog.FragmentsIntersecting("p", "a", 50, 60);
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits->empty());
  // Query [49, 60] can.
  hits = catalog.FragmentsIntersecting("p", "a", 49, 60);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 1u);
}

TEST(CatalogTest, FragmentsOnOtherColumnAlwaysTouched) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreatePartitionedTable("p").ok());
  FragmentInfo f;
  f.fragment_table = "frag";
  f.column = "b";  // bounds describe column b, query is on a
  f.lo = 1000;
  f.hi = 2000;
  ASSERT_TRUE(catalog.AddFragment("p", f).ok());
  auto hits = catalog.FragmentsIntersecting("p", "a", 0, 1);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 1u);  // no knowledge on 'a' -> must be scanned
}

TEST(CatalogTest, DropRemovesPartitionList) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterRelation(MakeRelation("base")).ok());
  ASSERT_TRUE(catalog.CreatePartitionedTable("base").ok());
  ASSERT_TRUE(catalog.DropTable("base").ok());
  EXPECT_TRUE(catalog.GetFragments("base").status().IsNotFound());
}

}  // namespace
}  // namespace crackstore
