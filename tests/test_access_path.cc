// Copyright 2026 The CrackStore Authors
//
// Tests for the type-erased ColumnAccessPath layer: parity of every
// strategy × policy combination against a naive reference on randomized
// query sequences, pivot injection via ApplyPolicy, piece reporting and
// Explain output.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/access_path.h"
#include "storage/bat.h"
#include "util/rng.h"

namespace crackstore {
namespace {

/// A shuffled permutation column of 1..n.
template <typename T>
std::shared_ptr<Bat> PermutationColumn(size_t n, uint64_t seed) {
  std::vector<T> values(n);
  for (size_t i = 0; i < n; ++i) values[i] = static_cast<T>(i + 1);
  Pcg32 rng(seed);
  Shuffle(&values, &rng);
  return Bat::FromVector(values, "c");
}

/// Naive reference: the qualifying oids of `range` over `bat`.
template <typename T>
std::vector<Oid> ReferenceOids(const std::shared_ptr<Bat>& bat,
                               const RangeBounds& range) {
  std::vector<Oid> oids;
  const T* data = bat->TailData<T>();
  for (size_t i = 0; i < bat->size(); ++i) {
    if (range.Contains(static_cast<int64_t>(data[i]))) {
      oids.push_back(bat->head_base() + i);
    }
  }
  return oids;
}

/// The oids of an AccessSelection, sorted ascending.
std::vector<Oid> SelectionOids(const AccessSelection& sel) {
  if (!sel.contiguous) return sel.oids;
  std::vector<Oid> oids;
  oids.reserve(sel.count);
  for (size_t i = 0; i < sel.view.oids.size(); ++i) {
    oids.push_back(sel.view.oids.Get<Oid>(i));
  }
  std::sort(oids.begin(), oids.end());
  return oids;
}

std::vector<AccessPathConfig> AllConfigs() {
  std::vector<AccessPathConfig> configs;
  for (AccessStrategy strategy : {AccessStrategy::kScan, AccessStrategy::kCrack,
                                  AccessStrategy::kSort}) {
    for (CrackPolicy policy : {CrackPolicy::kStandard, CrackPolicy::kStochastic,
                               CrackPolicy::kCoarse}) {
      AccessPathConfig config;
      config.strategy = strategy;
      config.policy.policy = policy;
      config.policy.min_piece_size = 64;  // small so policies bite at n=4000
      configs.push_back(config);
    }
  }
  return configs;
}

std::string ConfigName(const AccessPathConfig& config) {
  return std::string(AccessStrategyName(config.strategy)) + "/" +
         CrackPolicyName(config.policy.policy);
}

template <typename T>
void RunParity(uint64_t seed) {
  const size_t n = 4000;
  auto bat = PermutationColumn<T>(n, seed);
  for (const AccessPathConfig& config : AllConfigs()) {
    auto path = CreateColumnAccessPath(bat, config);
    ASSERT_TRUE(path.ok()) << ConfigName(config);
    Pcg32 rng(seed + 1);
    for (int q = 0; q < 40; ++q) {
      int64_t lo = rng.NextInRange(-100, static_cast<int64_t>(n) + 100);
      int64_t hi = lo + rng.NextInRange(0, 600);
      RangeBounds range{lo, rng.NextBounded(2) == 0, hi,
                        rng.NextBounded(2) == 0};
      IoStats io;
      AccessSelection sel = (*path)->Select(range, /*want_oids=*/true, &io);
      std::vector<Oid> expected = ReferenceOids<T>(bat, range);
      ASSERT_EQ(sel.count, expected.size())
          << ConfigName(config) << " query " << q;
      ASSERT_EQ(SelectionOids(sel), expected)
          << ConfigName(config) << " query " << q;
    }
  }
}

TEST(AccessPathTest, ParityAcrossStrategiesAndPoliciesInt64) {
  RunParity<int64_t>(101);
}

TEST(AccessPathTest, ParityAcrossStrategiesAndPoliciesInt32) {
  RunParity<int32_t>(202);
}

TEST(AccessPathTest, ParityOnOneSidedAndEmptyRanges) {
  auto bat = PermutationColumn<int64_t>(2000, 7);
  for (const AccessPathConfig& config : AllConfigs()) {
    auto path = CreateColumnAccessPath(bat, config);
    ASSERT_TRUE(path.ok());
    for (const RangeBounds& range :
         {RangeBounds::All(), RangeBounds::AtMost(100),
          RangeBounds::GreaterThan(1900), RangeBounds::Equal(1234),
          RangeBounds::Closed(500, 400), RangeBounds::Open(10, 11)}) {
      IoStats io;
      AccessSelection sel = (*path)->Select(range, /*want_oids=*/true, &io);
      EXPECT_EQ(sel.count, ReferenceOids<int64_t>(bat, range).size())
          << ConfigName(config);
    }
  }
}

TEST(AccessPathTest, OutOfDomainBoundsOnNarrowColumns) {
  // A non-sentinel bound beyond int32's domain must keep its meaning after
  // clamping: `v >= 3e9` matches nothing (not the INT32_MAX rows), while
  // the INT64_MIN/MAX sentinels still mean "unbounded".
  std::vector<int32_t> values{1, 5, INT32_MAX, INT32_MIN, 42};
  auto bat = Bat::FromVector(values, "edge");
  for (const AccessPathConfig& config : AllConfigs()) {
    auto path = CreateColumnAccessPath(bat, config);
    ASSERT_TRUE(path.ok());
    IoStats io;
    EXPECT_EQ((*path)->Select(RangeBounds::AtLeast(3000000000LL), true, &io)
                  .count,
              0u)
        << ConfigName(config);
    EXPECT_EQ((*path)->Select(RangeBounds::AtMost(-3000000000LL), true, &io)
                  .count,
              0u)
        << ConfigName(config);
    EXPECT_EQ((*path)->Select(RangeBounds::All(), true, &io).count, 5u)
        << ConfigName(config);
    EXPECT_EQ((*path)
                  ->Select(RangeBounds::Closed(-4000000000LL, 4000000000LL),
                           true, &io)
                  .count,
              5u)
        << ConfigName(config);
  }
}

TEST(AccessPathTest, RejectsUnsupportedColumns) {
  // Strings are supported through the dictionary encoding since PR 3; raw
  // oid columns remain outside the factory.
  auto strings = Bat::Create(ValueType::kString, "s");
  AccessPathConfig config;
  EXPECT_TRUE(CreateColumnAccessPath(strings, config).ok());
  auto oids = Bat::Create(ValueType::kOid, "o");
  auto path = CreateColumnAccessPath(oids, config);
  EXPECT_TRUE(path.status().IsUnimplemented());
  EXPECT_TRUE(CreateColumnAccessPath(nullptr, config)
                  .status()
                  .IsInvalidArgument());
}

TEST(AccessPathTest, CrackPathBuildsLazily) {
  auto bat = PermutationColumn<int64_t>(1000, 3);
  AccessPathConfig config;
  config.strategy = AccessStrategy::kCrack;
  auto path = CreateColumnAccessPath(bat, config);
  ASSERT_TRUE(path.ok());
  // No accelerator before the first query...
  EXPECT_EQ((*path)->NumPieces(), 1u);
  EXPECT_NE((*path)->Explain().find("no accelerator yet"), std::string::npos);
  // ...and the first query is charged the clone investment (n reads).
  IoStats io;
  (*path)->Select(RangeBounds::Closed(1, 10), false, &io);
  EXPECT_GE(io.tuples_read, 1000u);
  EXPECT_GT((*path)->NumPieces(), 1u);
}

TEST(AccessPathTest, ApplyPolicyInjectsPivot) {
  auto bat = PermutationColumn<int64_t>(1000, 5);
  AccessPathConfig config;
  config.strategy = AccessStrategy::kCrack;
  auto path = CreateColumnAccessPath(bat, config);
  ASSERT_TRUE(path.ok());
  IoStats io;
  ASSERT_TRUE((*path)->ApplyPolicy({500, false}, &io).ok());
  EXPECT_EQ((*path)->NumPieces(), 2u);
  // The injected cut splits the column at value 500.
  std::vector<PieceInfo> pieces = (*path)->Pieces();
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_EQ(pieces[0].begin, 0u);
  EXPECT_EQ(pieces[0].end, 499u);  // values 1..499
  // Queries over the injected partitioning stay correct.
  AccessSelection sel = (*path)->Select(RangeBounds::Closed(450, 550),
                                        /*want_oids=*/true, &io);
  EXPECT_EQ(sel.count, 101u);
}

TEST(AccessPathTest, ApplyPolicyUnimplementedWithoutPieceTable) {
  auto bat = PermutationColumn<int64_t>(100, 5);
  for (AccessStrategy strategy :
       {AccessStrategy::kScan, AccessStrategy::kSort}) {
    AccessPathConfig config;
    config.strategy = strategy;
    auto path = CreateColumnAccessPath(bat, config);
    ASSERT_TRUE(path.ok());
    EXPECT_TRUE((*path)->ApplyPolicy({50, false}).IsUnimplemented())
        << AccessStrategyName(strategy);
  }
}

TEST(AccessPathTest, ExplainNamesPathAndPolicy) {
  auto bat = PermutationColumn<int64_t>(500, 9);
  for (const AccessPathConfig& config : AllConfigs()) {
    auto path = CreateColumnAccessPath(bat, config);
    ASSERT_TRUE(path.ok());
    IoStats io;
    (*path)->Select(RangeBounds::Closed(100, 200), false, &io);
    std::string explain = (*path)->Explain();
    EXPECT_NE(explain.find(std::string("access path: ") +
                           AccessStrategyName(config.strategy)),
              std::string::npos)
        << ConfigName(config);
    if (config.strategy == AccessStrategy::kCrack) {
      EXPECT_NE(explain.find(std::string("policy=") +
                             CrackPolicyName(config.policy.policy)),
                std::string::npos)
          << ConfigName(config);
    }
  }
}

TEST(AccessPathTest, MergeBudgetEnforcedInsidePath) {
  auto bat = PermutationColumn<int64_t>(5000, 11);
  AccessPathConfig config;
  config.strategy = AccessStrategy::kCrack;
  config.merge_budget = MergeBudget{MergePolicyKind::kLeastRecentlyUsed, 4};
  auto path = CreateColumnAccessPath(bat, config);
  ASSERT_TRUE(path.ok());
  Pcg32 rng(13);
  size_t dropped = 0;
  for (int q = 0; q < 30; ++q) {
    int64_t lo = rng.NextInRange(1, 4000);
    IoStats io;
    AccessSelection sel =
        (*path)->Select(RangeBounds::Closed(lo, lo + 500), false, &io);
    EXPECT_EQ(sel.count, 501u);
    dropped += sel.bounds_dropped;
  }
  EXPECT_GT(dropped, 0u);
  // <= 4 bounds -> at most 9 pieces (each bound contributes <= 2 cuts).
  EXPECT_LE((*path)->NumPieces(), 9u);
}

}  // namespace
}  // namespace crackstore
