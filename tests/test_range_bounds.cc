// Copyright 2026 The CrackStore Authors
//
// Tests for RangeBounds (the predicate vocabulary shared by the cracker and
// both engines). Also compiles the umbrella header as a smoke check of the
// public include surface.

#include <gtest/gtest.h>

#include "crackstore/crackstore.h"

namespace crackstore {
namespace {

TEST(RangeBoundsTest, ClosedContainsEndpoints) {
  RangeBounds r = RangeBounds::Closed(10, 20);
  EXPECT_TRUE(r.Contains(10));
  EXPECT_TRUE(r.Contains(15));
  EXPECT_TRUE(r.Contains(20));
  EXPECT_FALSE(r.Contains(9));
  EXPECT_FALSE(r.Contains(21));
}

TEST(RangeBoundsTest, HalfOpenExcludesUpper) {
  RangeBounds r = RangeBounds::HalfOpen(10, 20);
  EXPECT_TRUE(r.Contains(10));
  EXPECT_TRUE(r.Contains(19));
  EXPECT_FALSE(r.Contains(20));
}

TEST(RangeBoundsTest, OpenExcludesBoth) {
  RangeBounds r = RangeBounds::Open(10, 20);
  EXPECT_FALSE(r.Contains(10));
  EXPECT_TRUE(r.Contains(11));
  EXPECT_TRUE(r.Contains(19));
  EXPECT_FALSE(r.Contains(20));
}

TEST(RangeBoundsTest, OneSidedHelpers) {
  EXPECT_TRUE(RangeBounds::LessThan(5).Contains(4));
  EXPECT_FALSE(RangeBounds::LessThan(5).Contains(5));
  EXPECT_TRUE(RangeBounds::AtMost(5).Contains(5));
  EXPECT_FALSE(RangeBounds::AtMost(5).Contains(6));
  EXPECT_FALSE(RangeBounds::GreaterThan(5).Contains(5));
  EXPECT_TRUE(RangeBounds::GreaterThan(5).Contains(6));
  EXPECT_TRUE(RangeBounds::AtLeast(5).Contains(5));
  EXPECT_FALSE(RangeBounds::AtLeast(5).Contains(4));
}

TEST(RangeBoundsTest, EqualIsPointRange) {
  RangeBounds r = RangeBounds::Equal(7);
  EXPECT_TRUE(r.Contains(7));
  EXPECT_FALSE(r.Contains(6));
  EXPECT_FALSE(r.Contains(8));
  EXPECT_FALSE(r.IsEmpty());
}

TEST(RangeBoundsTest, AllContainsExtremes) {
  RangeBounds r = RangeBounds::All();
  EXPECT_TRUE(r.Contains(INT64_MIN));
  EXPECT_TRUE(r.Contains(0));
  EXPECT_TRUE(r.Contains(INT64_MAX));
}

TEST(RangeBoundsTest, EmptyDetection) {
  EXPECT_TRUE((RangeBounds{5, true, 4, true}).IsEmpty());    // inverted
  EXPECT_TRUE((RangeBounds{5, false, 5, true}).IsEmpty());   // (5,5]
  EXPECT_TRUE((RangeBounds{5, true, 5, false}).IsEmpty());   // [5,5)
  EXPECT_TRUE((RangeBounds{5, false, 5, false}).IsEmpty());  // (5,5)
  EXPECT_FALSE((RangeBounds{5, true, 5, true}).IsEmpty());   // [5,5]
  EXPECT_FALSE(RangeBounds::All().IsEmpty());
}

TEST(RangeBoundsTest, EmptyRangeContainsNothing) {
  RangeBounds r{5, false, 5, false};
  EXPECT_FALSE(r.Contains(5));
  EXPECT_FALSE(r.Contains(4));
  EXPECT_FALSE(r.Contains(6));
}

TEST(RangeBoundsTest, SentinelBoundsAtDomainEdges) {
  EXPECT_TRUE(RangeBounds::AtMost(INT64_MIN).Contains(INT64_MIN));
  EXPECT_FALSE(RangeBounds::LessThan(INT64_MIN).Contains(INT64_MIN));
  EXPECT_TRUE(RangeBounds::AtLeast(INT64_MAX).Contains(INT64_MAX));
  EXPECT_FALSE(RangeBounds::GreaterThan(INT64_MAX).Contains(INT64_MAX));
}

TEST(UmbrellaHeaderTest, PublicTypesVisible) {
  // The umbrella include must expose the whole public vocabulary.
  AdaptiveStoreOptions store_opts;
  (void)store_opts;
  CrackerIndexOptions index_opts;
  (void)index_opts;
  TapestryOptions tapestry_opts;
  (void)tapestry_opts;
  MqsSpec mqs;
  (void)mqs;
  CrackSimOptions sim;
  (void)sim;
  RowEngineOptions row;
  (void)row;
  ColumnEngineOptions col;
  (void)col;
  SUCCEED();
}

}  // namespace
}  // namespace crackstore
