// Copyright 2026 The CrackStore Authors
//
// Tests for the row-store substrate: pages, codec, heap file, journal,
// tables.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "rowstore/heap_file.h"
#include "rowstore/journal.h"
#include "rowstore/page.h"
#include "rowstore/row_table.h"
#include "rowstore/tuple_codec.h"

namespace crackstore {
namespace {

Schema PairSchema() {
  return Schema({{"k", ValueType::kInt64}, {"a", ValueType::kInt64}});
}

TEST(PageTest, InsertAndGet) {
  Page page(256);
  int s0 = page.Insert("hello");
  int s1 = page.Insert("world!");
  ASSERT_EQ(s0, 0);
  ASSERT_EQ(s1, 1);
  EXPECT_EQ(page.Get(0), "hello");
  EXPECT_EQ(page.Get(1), "world!");
  EXPECT_EQ(page.num_slots(), 2u);
}

TEST(PageTest, RejectsWhenFull) {
  Page page(64);
  std::string big(100, 'x');
  EXPECT_EQ(page.Insert(big), -1);
  std::string small(10, 'y');
  EXPECT_GE(page.Insert(small), 0);
}

TEST(PageTest, AccountsSlotDirectoryOverhead) {
  Page page(64);
  // Each slot entry costs 8 bytes; payload + slots must fit in 64.
  int count = 0;
  while (page.Insert("12345678") >= 0) ++count;
  EXPECT_GT(count, 0);
  EXPECT_LT(count, 8);  // 8 tuples * (8 payload + 8 slot) = 128 > 64
}

TEST(TupleCodecTest, RoundTripFixedWidth) {
  TupleCodec codec(PairSchema());
  std::string bytes;
  ASSERT_TRUE(codec.Encode({Value(int64_t{7}), Value(int64_t{-3})}, &bytes)
                  .ok());
  EXPECT_EQ(bytes.size(), 16u);
  auto decoded = codec.Decode(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ((*decoded)[0].AsInt64(), 7);
  EXPECT_EQ((*decoded)[1].AsInt64(), -3);
}

TEST(TupleCodecTest, RoundTripAllTypes) {
  Schema schema({{"i", ValueType::kInt32},
                 {"l", ValueType::kInt64},
                 {"d", ValueType::kFloat64},
                 {"o", ValueType::kOid},
                 {"s", ValueType::kString}});
  TupleCodec codec(schema);
  std::string bytes;
  ASSERT_TRUE(codec.Encode({Value(int32_t{1}), Value(int64_t{2}), Value(3.5),
                            Value::FromOid(4), Value(std::string("five"))},
                           &bytes)
                  .ok());
  auto decoded = codec.Decode(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ((*decoded)[0].AsInt32(), 1);
  EXPECT_EQ((*decoded)[1].AsInt64(), 2);
  EXPECT_DOUBLE_EQ((*decoded)[2].AsDouble(), 3.5);
  EXPECT_EQ((*decoded)[3].AsOid(), 4u);
  EXPECT_EQ((*decoded)[4].AsString(), "five");
}

TEST(TupleCodecTest, EncodeTypeMismatch) {
  TupleCodec codec(PairSchema());
  std::string bytes;
  Status s = codec.Encode({Value(1.5), Value(int64_t{1})}, &bytes);
  EXPECT_TRUE(s.IsTypeMismatch());
}

TEST(TupleCodecTest, DecodeTruncated) {
  TupleCodec codec(PairSchema());
  std::string bytes;
  ASSERT_TRUE(
      codec.Encode({Value(int64_t{1}), Value(int64_t{2})}, &bytes).ok());
  auto decoded = codec.Decode(std::string_view(bytes).substr(0, 10));
  EXPECT_TRUE(decoded.status().IsOutOfRange());
}

TEST(TupleCodecTest, DecodeTrailingGarbage) {
  TupleCodec codec(PairSchema());
  std::string bytes;
  ASSERT_TRUE(
      codec.Encode({Value(int64_t{1}), Value(int64_t{2})}, &bytes).ok());
  bytes += "xx";
  EXPECT_TRUE(codec.Decode(bytes).status().IsOutOfRange());
}

TEST(TupleCodecTest, DecodeSingleColumn) {
  Schema schema({{"s", ValueType::kString}, {"v", ValueType::kInt64}});
  TupleCodec codec(schema);
  std::string bytes;
  ASSERT_TRUE(
      codec.Encode({Value(std::string("key")), Value(int64_t{77})}, &bytes)
          .ok());
  auto v = codec.DecodeColumn(bytes, 1);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt64(), 77);
  auto s = codec.DecodeColumn(bytes, 0);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->AsString(), "key");
  EXPECT_TRUE(codec.DecodeColumn(bytes, 5).status().IsInvalidArgument());
}

TEST(HeapFileTest, AppendReadScan) {
  HeapFile file(256);
  TupleId id0 = file.Append("tuple-0");
  TupleId id1 = file.Append("tuple-1");
  EXPECT_EQ(file.num_tuples(), 2u);
  EXPECT_EQ(file.Read(id0), "tuple-0");
  EXPECT_EQ(file.Read(id1), "tuple-1");

  std::vector<std::string> seen;
  file.Scan([&](TupleId, std::string_view t) { seen.emplace_back(t); });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], "tuple-0");
  EXPECT_EQ(seen[1], "tuple-1");
}

TEST(HeapFileTest, SpillsAcrossPages) {
  HeapFile file(64);
  for (int i = 0; i < 20; ++i) file.Append("0123456789");
  EXPECT_GT(file.num_pages(), 1u);
  size_t count = 0;
  file.Scan([&](TupleId, std::string_view) { ++count; });
  EXPECT_EQ(count, 20u);
}

TEST(HeapFileTest, CountsIo) {
  HeapFile file(128);
  for (int i = 0; i < 10; ++i) file.Append("abcdefgh");
  uint64_t writes = file.stats().tuples_written;
  EXPECT_EQ(writes, 10u);
  EXPECT_GT(file.stats().page_writes, 0u);
  file.stats().Reset();
  size_t n = 0;
  file.Scan([&](TupleId, std::string_view) { ++n; });
  EXPECT_EQ(file.stats().tuples_read, 10u);
  EXPECT_EQ(file.stats().page_reads, file.num_pages());
}

TEST(JournalTest, LsnMonotone) {
  Journal journal;
  uint64_t l1 = journal.Append("t", "payload1");
  uint64_t l2 = journal.Append("t", "payload2");
  EXPECT_LT(l1, l2);
  EXPECT_EQ(journal.stats().journal_writes, 2u);
}

TEST(JournalTest, BytesAccumulate) {
  Journal journal;
  size_t before = journal.log_bytes();
  journal.Append("table", "0123456789");
  EXPECT_GT(journal.log_bytes(), before + 10);  // header + payload
}

TEST(JournalTest, CommitCounts) {
  Journal journal;
  journal.Commit();
  journal.Commit();
  EXPECT_EQ(journal.num_commits(), 2u);
}

TEST(JournalTest, VerifyLogAcceptsCleanLog) {
  Journal journal;
  for (int i = 0; i < 50; ++i) {
    journal.Append("t", "payload-" + std::to_string(i));
  }
  auto records = journal.VerifyLog();
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(*records, 50u);
}

TEST(JournalTest, VerifyLogEmptyLog) {
  Journal journal;
  auto records = journal.VerifyLog();
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(*records, 0u);
}

TEST(JournalTest, VerifyLogDetectsPayloadCorruption) {
  Journal journal;
  journal.Append("table", "precious bytes");
  // Flip a byte inside the record body (headers are 16 bytes).
  journal.CorruptByteForTesting(journal.log_bytes() - 3);
  auto records = journal.VerifyLog();
  ASSERT_FALSE(records.ok());
  EXPECT_TRUE(records.status().IsIoError());
  EXPECT_NE(records.status().message().find("checksum"), std::string::npos);
}

TEST(JournalTest, VerifyLogDetectsTruncatedHeader) {
  Journal journal;
  journal.Append("t", "x");
  // Corrupting the length field makes the body run past the log end.
  journal.CorruptByteForTesting(12);  // body_len field
  EXPECT_TRUE(journal.VerifyLog().status().IsIoError());
}

TEST(RowTableTest, InsertAndScan) {
  auto table = RowTable::Create("R", PairSchema());
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(table->Insert({Value(i), Value(i * 10)}).ok());
  }
  table->Commit();
  EXPECT_EQ(table->num_rows(), 100u);

  int64_t sum = 0;
  table->ScanRows([&](const std::vector<Value>& row) {
    sum += row[1].AsInt64();
  });
  EXPECT_EQ(sum, 49500);
}

TEST(RowTableTest, JournaledInsertWritesJournal) {
  RowTableOptions journaled;
  journaled.journaled = true;
  auto t1 = RowTable::Create("J", PairSchema(), journaled);
  ASSERT_TRUE(t1->Insert({Value(int64_t{1}), Value(int64_t{2})}).ok());
  EXPECT_EQ(t1->journal()->stats().journal_writes, 1u);

  RowTableOptions light;
  light.journaled = false;
  auto t2 = RowTable::Create("L", PairSchema(), light);
  ASSERT_TRUE(t2->Insert({Value(int64_t{1}), Value(int64_t{2})}).ok());
  EXPECT_EQ(t2->journal()->stats().journal_writes, 0u);
}

TEST(RowTableTest, ScanColumnDecodesOnlyOne) {
  auto table = RowTable::Create("R", PairSchema());
  ASSERT_TRUE(table->Insert({Value(int64_t{5}), Value(int64_t{50})}).ok());
  int64_t got = 0;
  ASSERT_TRUE(table
                  ->ScanColumn(1, [&](TupleId, const Value& v) {
                    got = v.AsInt64();
                  })
                  .ok());
  EXPECT_EQ(got, 50);
  EXPECT_TRUE(table->ScanColumn(9, [](TupleId, const Value&) {})
                  .IsInvalidArgument());
}

TEST(RowTableTest, RandomRead) {
  auto table = RowTable::Create("R", PairSchema());
  ASSERT_TRUE(table->Insert({Value(int64_t{1}), Value(int64_t{2})}).ok());
  auto row = table->Read(TupleId{0, 0});
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[0].AsInt64(), 1);
}

TEST(RowTableTest, SharedJournalAcrossTables) {
  auto journal = std::make_shared<Journal>();
  auto a = RowTable::Create("A", PairSchema(), {}, journal);
  auto b = RowTable::Create("B", PairSchema(), {}, journal);
  ASSERT_TRUE(a->Insert({Value(int64_t{1}), Value(int64_t{1})}).ok());
  ASSERT_TRUE(b->Insert({Value(int64_t{2}), Value(int64_t{2})}).ok());
  EXPECT_EQ(journal->stats().journal_writes, 2u);
}

TEST(RowTableTest, CollectStatsMergesFileAndJournal) {
  auto table = RowTable::Create("R", PairSchema());
  ASSERT_TRUE(table->Insert({Value(int64_t{1}), Value(int64_t{2})}).ok());
  IoStats stats = table->CollectStats();
  EXPECT_EQ(stats.tuples_written, 1u);
  EXPECT_EQ(stats.journal_writes, 1u);
}

TEST(IoStatsTest, AdditionAndReset) {
  IoStats a;
  a.tuples_read = 5;
  a.page_writes = 2;
  IoStats b;
  b.tuples_read = 3;
  b.cracks = 1;
  IoStats c = a + b;
  EXPECT_EQ(c.tuples_read, 8u);
  EXPECT_EQ(c.page_writes, 2u);
  EXPECT_EQ(c.cracks, 1u);
  c.Reset();
  EXPECT_EQ(c.tuples_read, 0u);
}

TEST(IoStatsTest, ToStringMentionsCounters) {
  IoStats s;
  s.tuples_read = 42;
  EXPECT_NE(s.ToString().find("read=42"), std::string::npos);
}

}  // namespace
}  // namespace crackstore
