// Copyright 2026 The CrackStore Authors
//
// Durability suite: log-format framing, journal recovery semantics,
// checkpoint round-trips, and the crash-torture harness — run a mixed DML
// workload against a durable store, copy the database directory mid-flight
// (the files are exactly what a kill -9 would leave), truncate the commit
// log at an arbitrary byte offset, reopen, and assert the recovered state
// equals the commit-prefix oracle. The matrix covers
// {standard, stochastic, auto} crack policies x {serial, concurrent}
// stores; accelerators are never persisted, so every post-recovery query
// also proves lazy rebuild.
//
// Randomized sections log their seed on failure; rerun a failing seed with
// CRACKSTORE_TEST_SEED=<seed>.

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <iterator>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"

#include "core/adaptive_store.h"
#include "durability/fs.h"
#include "durability/log_format.h"
#include "durability/manifest.h"
#include "durability/wal.h"
#include "rowstore/journal.h"
#include "storage/relation.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace crackstore {
namespace {

uint64_t TestSeed(uint64_t fallback) {
  const char* env = std::getenv("CRACKSTORE_TEST_SEED");
  if (env != nullptr && *env != '\0') return std::strtoull(env, nullptr, 10);
  return fallback;
}

// ---------------------------------------------------------------------------
// Filesystem scaffolding.
// ---------------------------------------------------------------------------

std::string MakeTempDir() {
  char tmpl[] = "/tmp/crackstore_dur_XXXXXX";
  char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return std::string(dir);
}

void RemoveAll(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  while (struct dirent* e = ::readdir(d)) {
    std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    std::string path = dir + "/" + name;
    struct stat st;
    if (::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
      RemoveAll(path);
    } else {
      ::unlink(path.c_str());
    }
  }
  ::closedir(d);
  ::rmdir(dir.c_str());
}

/// Copies every regular file of `src` into `dst` — the crash image. The WAL
/// writer appends with plain write(2), so the copied bytes are exactly what
/// the kernel would expose after a process kill.
void CopyDirFiles(const std::string& src, const std::string& dst) {
  ASSERT_TRUE(durability::EnsureDir(dst).ok());
  DIR* d = ::opendir(src.c_str());
  ASSERT_NE(d, nullptr);
  while (struct dirent* e = ::readdir(d)) {
    std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    auto contents = durability::ReadFile(src + "/" + name);
    ASSERT_TRUE(contents.ok()) << contents.status().ToString();
    ASSERT_TRUE(durability::WriteFileAtomic(dst, name, *contents).ok());
  }
  ::closedir(d);
}

uint64_t FileSize(const std::string& path) {
  struct stat st;
  EXPECT_EQ(::stat(path.c_str(), &st), 0) << path;
  return static_cast<uint64_t>(st.st_size);
}

class TempDirs {
 public:
  ~TempDirs() {
    for (const std::string& d : dirs_) RemoveAll(d);
  }
  std::string Make() {
    dirs_.push_back(MakeTempDir());
    return dirs_.back();
  }

 private:
  std::vector<std::string> dirs_;
};

// ---------------------------------------------------------------------------
// Log format: frame round-trips and tail classification.
// ---------------------------------------------------------------------------

TEST(LogFormat, FrameRoundTrip) {
  std::string log;
  durability::AppendFrame(&log, 1, "alpha");
  durability::AppendFrame(&log, 2, "beta");
  durability::AppendFrame(&log, 3, "");
  std::vector<std::pair<uint64_t, std::string>> seen;
  auto scan = durability::ScanFrames(
      log, 0, [&](uint64_t lsn, std::string_view body) {
        seen.emplace_back(lsn, std::string(body));
        return Status::OK();
      });
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->records, 3u);
  EXPECT_EQ(scan->last_lsn, 3u);
  EXPECT_EQ(scan->valid_bytes, log.size());
  EXPECT_FALSE(scan->torn_tail);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[1].second, "beta");
}

TEST(LogFormat, TruncationIsTornTail) {
  std::string log;
  durability::AppendFrame(&log, 1, "alpha");
  size_t first_end = log.size();
  durability::AppendFrame(&log, 2, "beta");
  log.resize(log.size() - 3);  // cut into the second frame's body
  auto scan = durability::ScanFrames(log, 0, nullptr);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->torn_tail);
  EXPECT_EQ(scan->records, 1u);
  EXPECT_EQ(scan->valid_bytes, first_end);
}

TEST(LogFormat, MidLogCorruptionIsIoError) {
  std::string log;
  durability::AppendFrame(&log, 1, "alpha");
  size_t first_end = log.size();
  durability::AppendFrame(&log, 2, "beta");
  log[first_end - 2] ^= 0x5A;  // damage the FIRST frame's body
  auto scan = durability::ScanFrames(log, 0, nullptr);
  ASSERT_FALSE(scan.ok());
  EXPECT_TRUE(scan.status().IsIoError());
}

// ---------------------------------------------------------------------------
// rowstore::Journal: strict verify vs lenient recovery (satellite fix).
// ---------------------------------------------------------------------------

TEST(JournalRecovery, TornTailTruncatesAndResumesLsn) {
  Journal journal;
  journal.Append("t", "payload-1");
  size_t intact = journal.log_bytes();
  journal.Append("t", "payload-2");
  journal.TruncateForTesting(journal.log_bytes() - 4);

  auto scan = journal.Recover();
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_TRUE(scan->torn_tail);
  EXPECT_EQ(scan->records, 1u);
  EXPECT_EQ(scan->valid_bytes, intact);
  EXPECT_EQ(journal.log_bytes(), intact);  // the torn bytes are gone

  // Appending resumes right above the recovered prefix; the log verifies
  // clean again.
  EXPECT_EQ(journal.Append("t", "payload-3"), scan->last_lsn + 1);
  auto verified = journal.VerifyLog();
  ASSERT_TRUE(verified.ok()) << verified.status().ToString();
  EXPECT_EQ(*verified, 2u);
}

TEST(JournalRecovery, MidLogCorruptionSurfacesError) {
  Journal journal;
  journal.Append("t", "payload-1");
  journal.Append("t", "payload-2");
  size_t before = journal.log_bytes();
  journal.CorruptByteForTesting(14);  // inside the first record
  auto scan = journal.Recover();
  ASSERT_FALSE(scan.ok());
  EXPECT_TRUE(scan.status().IsIoError());
  EXPECT_EQ(journal.log_bytes(), before);  // corruption is never truncated
}

TEST(JournalRecovery, RotateToWritesDurableSegment) {
  TempDirs tmp;
  std::string dir = tmp.Make();
  Journal journal;
  journal.Append("t", "payload-1");
  size_t bytes = journal.log_bytes();
  ASSERT_TRUE(journal.RotateTo(dir, "segment-1.log").ok());
  EXPECT_EQ(journal.log_bytes(), 0u);
  auto contents = durability::ReadFile(dir + "/segment-1.log");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->size(), bytes);
  // The rotated segment scans clean with the shared codec.
  auto scan = durability::ScanFrames(*contents, 0, nullptr);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->records, 1u);
}

// ---------------------------------------------------------------------------
// Lifecycle API: Open validation, Configure, Close.
// ---------------------------------------------------------------------------

TEST(Lifecycle, OpenValidatesOptions) {
  DbOptions opts;
  opts.durability = DurabilityMode::kWal;  // no path
  EXPECT_FALSE(AdaptiveStore::Open(opts).ok());

  DbOptions bad_policy;
  bad_policy.policy.min_piece_size = 0;
  EXPECT_FALSE(AdaptiveStore::Open(bad_policy).ok());
}

TEST(Lifecycle, ConfigureRejectsFrozenAxes) {
  auto db = AdaptiveStore::Open(DbOptions{});
  ASSERT_TRUE(db.ok());
  DbOptions next = (*db)->db_options();
  next.strategy = AccessStrategy::kSort;
  EXPECT_FALSE((*db)->Configure(next).ok());

  next = (*db)->db_options();
  next.policy.policy = CrackPolicy::kStochastic;
  EXPECT_TRUE((*db)->Configure(next).ok());
  EXPECT_EQ((*db)->db_options().policy.policy, CrackPolicy::kStochastic);
}

TEST(Lifecycle, SetPolicyRoutesThroughConfigure) {
  auto db = AdaptiveStore::Open(DbOptions{});
  ASSERT_TRUE(db.ok());
  CrackPolicyOptions opts = (*db)->options().policy;
  opts.policy = CrackPolicy::kCoarse;
  ASSERT_TRUE((*db)->SetPolicy(opts).ok());
  // The unified config surface sees the switch.
  EXPECT_EQ((*db)->db_options().policy.policy, CrackPolicy::kCoarse);
}

TEST(Lifecycle, CheckpointRequiresDurableStore) {
  auto db = AdaptiveStore::Open(DbOptions{});
  ASSERT_TRUE(db.ok());
  EXPECT_FALSE((*db)->Checkpoint().ok());
  EXPECT_TRUE((*db)->Close().ok());  // Close is a no-op in-memory
}

TEST(Lifecycle, CloseIsIdempotent) {
  TempDirs tmp;
  DbOptions opts;
  opts.path = tmp.Make();
  opts.durability = DurabilityMode::kWal;
  opts.fsync_policy = durability::FsyncPolicy::kOff;
  auto db = AdaptiveStore::Open(opts);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_TRUE((*db)->durable());
  EXPECT_TRUE((*db)->Close().ok());
  EXPECT_TRUE((*db)->Close().ok());
}

// ---------------------------------------------------------------------------
// Checkpoint + replay round trips.
// ---------------------------------------------------------------------------

Result<std::shared_ptr<Relation>> BuildSmallTable(const std::string& name,
                                                  int64_t rows) {
  CRACK_ASSIGN_OR_RETURN(
      auto rel,
      Relation::Create(name, Schema({{"c0", ValueType::kInt64},
                                     {"s", ValueType::kString}})));
  for (int64_t i = 0; i < rows; ++i) {
    CRACK_RETURN_NOT_OK(rel->AppendRow(
        {Value(i), Value(StrFormat("row-%04lld", static_cast<long long>(i)))}));
  }
  return rel;
}

TEST(Recovery, CleanCloseRoundTripsTablesAndStrings) {
  TempDirs tmp;
  DbOptions opts;
  opts.path = tmp.Make();
  opts.durability = DurabilityMode::kWal;
  opts.fsync_policy = durability::FsyncPolicy::kOff;

  {
    auto db = AdaptiveStore::Open(opts);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    auto rel = BuildSmallTable("T", 64);
    ASSERT_TRUE(rel.ok());
    ASSERT_TRUE((*db)->AddTable(*rel).ok());
    ASSERT_TRUE((*db)->Insert("T", {Value(int64_t{100}), Value("extra")}).ok());
    ASSERT_TRUE(
        (*db)->Delete("T", {{"c0", RangeBounds::Closed(0, 9)}}, kNoTxn).ok());
    ASSERT_TRUE((*db)->Close().ok());
  }

  auto db = AdaptiveStore::Open(opts);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_TRUE((*db)->recovery_info().recovered);
  EXPECT_EQ((*db)->recovery_info().replayed_commits, 0u);  // checkpointed
  auto live = (*db)->LiveRowCount("T");
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(*live, 64u + 1 - 10);
  // String columns round-trip through the dictionary rebuild.
  auto rel = (*db)->table("T");
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ((*rel)->GetRow(20)[1], Value("row-0020"));
  // A range query proves the accelerators rebuild lazily from recovered
  // base state.
  auto q = (*db)->SelectRange("T", "c0", RangeBounds::Closed(10, 40));
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->count, 31u);
  ASSERT_TRUE((*db)->Close().ok());
}

TEST(Recovery, ReplayWithoutCheckpointRestoresCommits) {
  TempDirs tmp;
  DbOptions opts;
  opts.path = tmp.Make();
  opts.durability = DurabilityMode::kWal;
  opts.fsync_policy = durability::FsyncPolicy::kOff;

  std::string crash_dir = tmp.Make();
  {
    auto db = AdaptiveStore::Open(opts);
    ASSERT_TRUE(db.ok());
    auto rel = BuildSmallTable("T", 16);
    ASSERT_TRUE(rel.ok());
    ASSERT_TRUE((*db)->AddTable(*rel).ok());
    for (int64_t v = 100; v < 110; ++v) {
      ASSERT_TRUE(
          (*db)
              ->Insert("T", {Value(v), Value(StrFormat(
                                           "ins-%lld",
                                           static_cast<long long>(v)))})
              .ok());
    }
    // Copy the directory BEFORE Close: no final checkpoint has run, so the
    // reopen must reconstruct everything from the table image + commits.
    CopyDirFiles(opts.path, crash_dir);
    ASSERT_TRUE((*db)->Close().ok());
  }

  DbOptions crash_opts = opts;
  crash_opts.path = crash_dir;
  auto db = AdaptiveStore::Open(crash_opts);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ((*db)->recovery_info().replayed_commits, 10u);
  auto live = (*db)->LiveRowCount("T");
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(*live, 26u);
  auto rel = (*db)->table("T");
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ((*rel)->GetRow(16)[0], Value(int64_t{100}));
  EXPECT_EQ((*rel)->GetRow(16)[1], Value("ins-100"));
  ASSERT_TRUE((*db)->Close().ok());
}

TEST(Recovery, FsyncPoliciesRoundTrip) {
  for (durability::FsyncPolicy policy :
       {durability::FsyncPolicy::kCommit, durability::FsyncPolicy::kInterval}) {
    TempDirs tmp;
    DbOptions opts;
    opts.path = tmp.Make();
    opts.durability = DurabilityMode::kWal;
    opts.fsync_policy = policy;
    opts.fsync_interval_seconds = 0.001;
    {
      auto db = AdaptiveStore::Open(opts);
      ASSERT_TRUE(db.ok()) << db.status().ToString();
      auto rel = Relation::Create("R", Schema({{"c0", ValueType::kInt64}}));
      ASSERT_TRUE(rel.ok());
      ASSERT_TRUE((*db)->AddTable(*rel).ok());
      for (int64_t v = 0; v < 20; ++v) {
        ASSERT_TRUE((*db)->Insert("R", {Value(v)}).ok());
      }
      ASSERT_TRUE((*db)->Close().ok());
    }
    auto db = AdaptiveStore::Open(opts);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    auto live = (*db)->LiveRowCount("R");
    ASSERT_TRUE(live.ok());
    EXPECT_EQ(*live, 20u) << "policy " << durability::FsyncPolicyName(policy);
    ASSERT_TRUE((*db)->Close().ok());
  }
}

TEST(Recovery, CheckpointResumesTunedCrackPolicy) {
  TempDirs tmp;
  DbOptions opts;
  opts.path = tmp.Make();
  opts.durability = DurabilityMode::kWal;
  opts.fsync_policy = durability::FsyncPolicy::kOff;
  opts.policy.policy = CrackPolicy::kStochastic;
  opts.policy.progressive_budget = 0.25;
  {
    auto db = AdaptiveStore::Open(opts);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    auto rel = Relation::Create("R", Schema({{"c0", ValueType::kInt64}}));
    ASSERT_TRUE(rel.ok());
    ASSERT_TRUE((*db)->AddTable(*rel).ok());
    for (int64_t v = 0; v < 512; ++v) {
      ASSERT_TRUE((*db)->Insert("R", {Value(v)}).ok());
    }
    // Materialize the accelerator so its policy state exists to persist.
    ASSERT_TRUE((*db)->SelectRange("R", "c0", RangeBounds::Closed(100, 300))
                    .ok());
    ASSERT_TRUE((*db)->Checkpoint().ok());
    ASSERT_TRUE((*db)->Close().ok());
  }
  // Reopen with a *different* default policy: the per-column state recorded
  // in the checkpoint must win over the store default when the column's
  // path is rebuilt.
  DbOptions reopened = opts;
  reopened.policy.policy = CrackPolicy::kStandard;
  reopened.policy.progressive_budget = 0.1;
  auto db = AdaptiveStore::Open(reopened);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE((*db)->SelectRange("R", "c0", RangeBounds::Closed(50, 200)).ok());
  std::vector<AdaptiveStore::ColumnPolicy> report = (*db)->PolicyReport();
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report[0].table, "R");
  EXPECT_EQ(report[0].column, "c0");
  EXPECT_EQ(report[0].status.configured, CrackPolicy::kStochastic);
  EXPECT_DOUBLE_EQ(report[0].status.progressive_budget, 0.25);
  ASSERT_TRUE((*db)->Close().ok());
}

// ---------------------------------------------------------------------------
// Crash torture: truncate the commit log anywhere, reopen, compare against
// the commit-prefix oracle.
// ---------------------------------------------------------------------------

struct ModelOp {
  enum Kind { kInsert, kDelete, kUpdate } kind;
  Oid oid = kInvalidOid;
  int64_t value = 0;
};
using ModelCommit = std::vector<ModelOp>;
using Model = std::map<Oid, int64_t>;  // live oid -> c0

void ApplyToModel(Model* model, const ModelCommit& commit) {
  for (const ModelOp& op : commit) {
    switch (op.kind) {
      case ModelOp::kInsert:
      case ModelOp::kUpdate:
        (*model)[op.oid] = op.value;
        break;
      case ModelOp::kDelete:
        model->erase(op.oid);
        break;
    }
  }
}

/// Runs the mixed DML workload. Values are unique (a monotone counter), so
/// a `c0 = v` conjunct always matches exactly one row and the oracle stays
/// exact. Appends the commits in commit order (single-threaded driver:
/// commit order == program order).
void RunWorkload(AdaptiveStore* store, Model* model,
                 std::vector<ModelCommit>* commits, uint64_t seed,
                 size_t num_ops) {
  Pcg32 rng(seed);
  int64_t next_value = 1 << 20;

  auto pick_live = [&](Oid* oid, int64_t* value) {
    if (model->empty()) return false;
    auto it = model->begin();
    std::advance(it, rng.NextBounded(static_cast<uint32_t>(model->size())));
    *oid = it->first;
    *value = it->second;
    return true;
  };

  // Rows touched by the open explicit transaction; the model only reflects
  // committed state, so in-txn picks must come from here-adjusted views.
  auto run_one = [&](TxnId txn, Model* view, ModelCommit* commit) {
    uint32_t dice = rng.NextBounded(4);
    if (dice < 2) {  // insert
      int64_t v = next_value++;
      auto r = store->Insert("R", {Value(v)}, txn);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      commit->push_back({ModelOp::kInsert, r->inserted_oid, v});
      (*view)[r->inserted_oid] = v;
    } else if (dice == 2) {  // delete one live row
      Oid oid = kInvalidOid;
      int64_t v = 0;
      if (model == view) {
        if (!pick_live(&oid, &v)) return;
      } else {
        if (view->empty()) return;
        auto it = view->begin();
        std::advance(it,
                     rng.NextBounded(static_cast<uint32_t>(view->size())));
        oid = it->first;
        v = it->second;
      }
      auto r = store->Delete("R", {{"c0", RangeBounds::Equal(v)}}, txn);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      commit->push_back({ModelOp::kDelete, oid, v});
      view->erase(oid);
    } else {  // update one live row to a fresh unique value
      Oid oid = kInvalidOid;
      int64_t v = 0;
      if (view->empty()) return;
      auto it = view->begin();
      std::advance(it, rng.NextBounded(static_cast<uint32_t>(view->size())));
      oid = it->first;
      v = it->second;
      int64_t nv = next_value++;
      auto r = store->Update("R", {{"c0", Value(nv)}},
                             {{"c0", RangeBounds::Equal(v)}}, txn);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      commit->push_back({ModelOp::kUpdate, oid, nv});
      (*view)[oid] = nv;
    }
  };

  for (size_t i = 0; i < num_ops; ++i) {
    if (i % 8 == 7) {
      // Explicit multi-statement transaction: one commit record.
      auto txn = store->Begin();
      ASSERT_TRUE(txn.ok())
          << txn.status().ToString() << " (seed " << seed << ")";
      ModelCommit commit;
      Model view = *model;  // the txn's private view of live rows
      for (int j = 0; j < 3; ++j) {
        run_one(*txn, &view, &commit);
        if (::testing::Test::HasFatalFailure()) return;
      }
      if (rng.NextBounded(8) == 0) {
        ASSERT_TRUE(store->Rollback(*txn).ok());  // no commit, no WAL record
      } else {
        ASSERT_TRUE(store->Commit(*txn).ok());
        if (!commit.empty()) {
          ApplyToModel(model, commit);
          commits->push_back(std::move(commit));
        }
      }
    } else {
      // Auto-commit statement: one commit record per mutating statement.
      ModelCommit commit;
      run_one(kNoTxn, model, &commit);
      if (::testing::Test::HasFatalFailure()) return;
      if (!commit.empty()) commits->push_back(std::move(commit));
    }
    if (i % 16 == 5) {
      // Interleaved reads keep the accelerators cracking mid-workload.
      auto q =
          store->SelectRange("R", "c0", RangeBounds::Closed(0, next_value));
      ASSERT_TRUE(q.ok());
    }
  }
}

void ExpectStoreMatchesModel(AdaptiveStore* store, const Model& model) {
  auto live = store->LiveOids("R");
  ASSERT_TRUE(live.ok()) << live.status().ToString();
  std::vector<Oid> expected;
  expected.reserve(model.size());
  for (const auto& [oid, value] : model) expected.push_back(oid);
  ASSERT_EQ(*live, expected);
  auto rel = store->table("R");
  ASSERT_TRUE(rel.ok());
  for (const auto& [oid, value] : model) {
    ASSERT_EQ((*rel)->GetRow(oid)[0], Value(value))
        << "row " << oid << " diverged";
  }
  // A cracking query over the full domain: lazily rebuilds the accelerator
  // and must agree with the live-row count.
  auto q =
      store->SelectRange("R", "c0", RangeBounds::Closed(0, int64_t{1} << 40));
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->count, model.size());
}

struct TortureImage {
  DbOptions opts;                    ///< options of the original store
  Model base_model;                  ///< committed state at the checkpoint
  std::vector<ModelCommit> commits;  ///< post-checkpoint commits, in order
  std::string crash_dir;             ///< directory copied before Close
  std::string wal_name;              ///< commit-log file inside crash_dir
  uint64_t wal_bytes = 0;            ///< its size at the copy
};

/// Builds one crash image: seed table -> checkpoint (so the log holds only
/// DML commits) -> mixed workload -> copy-before-close.
void BuildTortureImage(CrackPolicy policy, bool concurrent, uint64_t seed,
                       size_t num_ops, TempDirs* tmp, TortureImage* image) {
  image->opts.path = tmp->Make();
  image->opts.durability = DurabilityMode::kWal;
  image->opts.fsync_policy = durability::FsyncPolicy::kOff;
  image->opts.policy.policy = policy;
  image->opts.concurrent = concurrent;
  image->opts.autovacuum_version_threshold = 0;  // deterministic versions
  image->crash_dir = tmp->Make();

  auto db = AdaptiveStore::Open(image->opts);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto rel = Relation::Create("R", Schema({{"c0", ValueType::kInt64}}));
  ASSERT_TRUE(rel.ok());
  const size_t kInitialRows = 64;
  for (size_t i = 0; i < kInitialRows; ++i) {
    ASSERT_TRUE((*rel)->AppendRow({Value(static_cast<int64_t>(i))}).ok());
    image->base_model[static_cast<Oid>(i)] = static_cast<int64_t>(i);
  }
  ASSERT_TRUE((*db)->AddTable(*rel).ok());
  ASSERT_TRUE((*db)->Checkpoint().ok());

  Model model = image->base_model;
  RunWorkload(db->get(), &model, &image->commits, seed, num_ops);
  if (::testing::Test::HasFatalFailure()) return;

  CopyDirFiles(image->opts.path, image->crash_dir);
  if (::testing::Test::HasFatalFailure()) return;
  auto manifest = durability::ReadManifest(image->crash_dir);
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  image->wal_name = manifest->wal_file;
  image->wal_bytes =
      FileSize(durability::JoinPath(image->crash_dir, image->wal_name));
  ASSERT_TRUE((*db)->Close().ok());
}

/// Truncates a fresh copy of the crash image's commit log at `offset` bytes,
/// reopens, and asserts the recovered state matches the prefix oracle.
void CheckTruncatedRecovery(const TortureImage& image, TempDirs* tmp,
                            uint64_t offset, uint64_t seed) {
  SCOPED_TRACE(StrFormat("offset=%llu of %llu, seed=%llu",
                         static_cast<unsigned long long>(offset),
                         static_cast<unsigned long long>(image.wal_bytes),
                         static_cast<unsigned long long>(seed)));
  std::string work = tmp->Make();
  CopyDirFiles(image.crash_dir, work);
  if (::testing::Test::HasFatalFailure()) return;
  ASSERT_TRUE(
      durability::TruncateFile(durability::JoinPath(work, image.wal_name),
                               offset)
          .ok());

  DbOptions opts = image.opts;
  opts.path = work;
  auto db = AdaptiveStore::Open(opts);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  uint64_t replayed = (*db)->recovery_info().replayed_commits;
  ASSERT_LE(replayed, image.commits.size());
  if (offset >= image.wal_bytes) {
    EXPECT_EQ(replayed, image.commits.size());  // nothing was lost
  }

  Model expected = image.base_model;
  for (uint64_t k = 0; k < replayed; ++k) {
    ApplyToModel(&expected, image.commits[k]);
  }
  ExpectStoreMatchesModel(db->get(), expected);
  if (::testing::Test::HasFatalFailure()) return;
  ASSERT_TRUE((*db)->Close().ok());
}

TEST(CrashTorture, PolicyByConcurrencyMatrix) {
  const uint64_t seed = TestSeed(20040901);
  TempDirs tmp;
  Pcg32 rng(seed);
  int leg = 0;
  for (CrackPolicy policy :
       {CrackPolicy::kStandard, CrackPolicy::kStochastic, CrackPolicy::kAuto}) {
    for (bool concurrent : {false, true}) {
      SCOPED_TRACE(StrFormat("policy=%d concurrent=%d",
                             static_cast<int>(policy), concurrent ? 1 : 0));
      TortureImage image;
      BuildTortureImage(policy, concurrent, seed + leg++, 96, &tmp, &image);
      if (::testing::Test::HasFatalFailure()) return;
      ASSERT_GT(image.commits.size(), 0u);
      ASSERT_GT(image.wal_bytes, 0u);

      // Fixed structural offsets plus one random cut per leg.
      std::vector<uint64_t> offsets = {0, image.wal_bytes / 2,
                                       image.wal_bytes - 1, image.wal_bytes};
      offsets.push_back(rng.NextBounded(
          static_cast<uint32_t>(std::min<uint64_t>(image.wal_bytes, 1u << 30))));
      for (uint64_t offset : offsets) {
        CheckTruncatedRecovery(image, &tmp, offset, seed);
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
}

TEST(CrashTorture, EveryOffsetOnSmallLog) {
  const uint64_t seed = TestSeed(19991231);
  TempDirs tmp;
  TortureImage image;
  BuildTortureImage(CrackPolicy::kStandard, /*concurrent=*/false, seed, 24,
                    &tmp, &image);
  if (::testing::Test::HasFatalFailure()) return;
  ASSERT_GT(image.wal_bytes, 0u);
  // Every offset modulo a stride, plus the exact end: the recovered state
  // must be a committed prefix no matter where the crash landed.
  for (uint64_t offset = 0; offset <= image.wal_bytes; offset += 7) {
    CheckTruncatedRecovery(image, &tmp, offset, seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
  CheckTruncatedRecovery(image, &tmp, image.wal_bytes, seed);
}

// ---------------------------------------------------------------------------
// Autovacuum: the version log stays bounded under sustained churn.
// ---------------------------------------------------------------------------

TEST(Autovacuum, BoundsVersionLogUnderChurn) {
  DbOptions opts;  // in-memory: autovacuum is independent of the WAL
  opts.autovacuum_version_threshold = 256;
  auto db = AdaptiveStore::Open(opts);
  ASSERT_TRUE(db.ok());
  auto rel = Relation::Create("R", Schema({{"c0", ValueType::kInt64}}));
  ASSERT_TRUE(rel.ok());
  const int64_t kRows = 64;
  for (int64_t i = 0; i < kRows; ++i) {
    ASSERT_TRUE((*rel)->AppendRow({Value(i)}).ok());
  }
  ASSERT_TRUE((*db)->AddTable(*rel).ok());

  // Sustained update churn: every commit adds version-chain entries. With
  // the threshold at 256, an unbounded log would pass 1200 entries.
  int64_t next_value = 1 << 20;
  Pcg32 rng(TestSeed(7));
  std::vector<int64_t> current(kRows);
  for (int64_t i = 0; i < kRows; ++i) current[i] = i;
  for (int iter = 0; iter < 1200; ++iter) {
    int64_t row = rng.NextBounded(kRows);
    int64_t nv = next_value++;
    auto r = (*db)->Update("R", {{"c0", Value(nv)}},
                           {{"c0", RangeBounds::Equal(current[row])}}, kNoTxn);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    current[row] = nv;
  }

  EXPECT_GT((*db)->autovacuum_runs(), 0u);
  auto counts = (*db)->VersionCountsFor("R");
  ASSERT_TRUE(counts.ok());
  uint64_t footprint =
      counts->row_versions + counts->chain_entries + counts->purged;
  EXPECT_LT(footprint, 768u)  // threshold + probe slack, far below 1200+
      << "row_versions=" << counts->row_versions
      << " chain_entries=" << counts->chain_entries
      << " purged=" << counts->purged;
}

}  // namespace
}  // namespace crackstore
