// Copyright 2026 The CrackStore Authors
//
// Tests for Bat, BatView, VarHeap and statistics.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "storage/bat.h"
#include "storage/types.h"
#include "storage/var_heap.h"

namespace crackstore {
namespace {

TEST(ValueTypeTest, Widths) {
  EXPECT_EQ(ValueTypeWidth(ValueType::kInt32), 4u);
  EXPECT_EQ(ValueTypeWidth(ValueType::kInt64), 8u);
  EXPECT_EQ(ValueTypeWidth(ValueType::kFloat64), 8u);
  EXPECT_EQ(ValueTypeWidth(ValueType::kOid), 8u);
  EXPECT_EQ(ValueTypeWidth(ValueType::kString), 8u);
}

TEST(ValueTypeTest, Names) {
  EXPECT_STREQ(ValueTypeName(ValueType::kInt64), "int64");
  EXPECT_STREQ(ValueTypeName(ValueType::kString), "string");
}

TEST(ValueTest, TypedAccessors) {
  EXPECT_EQ(Value(int32_t{7}).AsInt32(), 7);
  EXPECT_EQ(Value(int64_t{-9}).AsInt64(), -9);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value(std::string("hi")).AsString(), "hi");
  EXPECT_EQ(Value::FromOid(11).AsOid(), 11u);
  EXPECT_TRUE(Value().is_null());
}

TEST(ValueTest, ToInt64Widens) {
  EXPECT_EQ(Value(int32_t{5}).ToInt64(), 5);
  EXPECT_EQ(Value(int64_t{5000000000LL}).ToInt64(), 5000000000LL);
  EXPECT_EQ(Value(3.9).ToInt64(), 3);
  EXPECT_EQ(Value::FromOid(8).ToInt64(), 8);
}

TEST(ValueTest, ToStringRenderings) {
  EXPECT_EQ(Value(int32_t{1}).ToString(), "1");
  EXPECT_EQ(Value(std::string("abc")).ToString(), "abc");
  EXPECT_EQ(Value().ToString(), "null");
}

TEST(ValueTest, Equality) {
  EXPECT_EQ(Value(int64_t{3}), Value(int64_t{3}));
  EXPECT_NE(Value(int64_t{3}), Value(int32_t{3}));  // different alternatives
  EXPECT_NE(Value(int64_t{3}), Value(int64_t{4}));
}

TEST(VarHeapTest, InternAndRead) {
  VarHeap heap;
  uint64_t a = heap.Intern("alpha");
  uint64_t b = heap.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(heap.Read(a), "alpha");
  EXPECT_EQ(heap.Read(b), "beta");
}

TEST(VarHeapTest, Deduplicates) {
  VarHeap heap;
  uint64_t a1 = heap.Intern("same");
  uint64_t a2 = heap.Intern("same");
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(heap.num_strings(), 1u);
}

TEST(VarHeapTest, EmptyString) {
  VarHeap heap;
  uint64_t off = heap.Intern("");
  EXPECT_EQ(heap.Read(off), "");
  // The empty string deduplicates like any other and costs no payload.
  EXPECT_EQ(heap.Intern(""), off);
  EXPECT_EQ(heap.num_strings(), 1u);
}

TEST(VarHeapTest, NonAsciiBytes) {
  VarHeap heap;
  std::string bytes("\x00\xff\x7f\x80", 4);  // embedded NUL and high bytes
  uint64_t off = heap.Intern(bytes);
  std::string_view read = heap.Read(off);
  ASSERT_EQ(read.size(), 4u);
  EXPECT_EQ(read, std::string_view(bytes));
  EXPECT_EQ(heap.Intern(bytes), off);  // dedup sees the full byte string
  // A prefix that stops at the NUL is a different string.
  EXPECT_NE(heap.Intern(std::string_view("\x00", 1)), off);
  EXPECT_EQ(heap.num_strings(), 2u);
}

TEST(VarHeapTest, PayloadBytesGrowOnlyForFreshStrings) {
  VarHeap heap;
  size_t before = heap.payload_bytes();
  heap.Intern("abc");
  size_t after_first = heap.payload_bytes();
  EXPECT_GT(after_first, before);
  heap.Intern("abc");  // duplicate: no growth
  EXPECT_EQ(heap.payload_bytes(), after_first);
}

TEST(BatTest, AppendAndGetTyped) {
  auto bat = Bat::Create(ValueType::kInt64, "t");
  bat->Append<int64_t>(10);
  bat->Append<int64_t>(-20);
  ASSERT_EQ(bat->size(), 2u);
  EXPECT_EQ(bat->Get<int64_t>(0), 10);
  EXPECT_EQ(bat->Get<int64_t>(1), -20);
}

TEST(BatTest, FromVectorCopiesContiguously) {
  std::vector<int64_t> v{5, 4, 3, 2, 1};
  auto bat = Bat::FromVector(v, "five");
  ASSERT_EQ(bat->size(), 5u);
  const int64_t* data = bat->TailData<int64_t>();
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(data[i], v[i]);
  EXPECT_EQ(bat->name(), "five");
}

TEST(BatTest, GrowsPastInitialCapacity) {
  auto bat = Bat::Create(ValueType::kInt32);
  for (int32_t i = 0; i < 1000; ++i) bat->Append<int32_t>(i);
  ASSERT_EQ(bat->size(), 1000u);
  for (int32_t i = 0; i < 1000; ++i) EXPECT_EQ(bat->Get<int32_t>(i), i);
}

TEST(BatTest, AppendValueTypeChecks) {
  auto bat = Bat::Create(ValueType::kInt64);
  EXPECT_TRUE(bat->AppendValue(Value(int64_t{1})).ok());
  EXPECT_TRUE(bat->AppendValue(Value(int32_t{2})).ok());  // widening allowed
  EXPECT_TRUE(bat->AppendValue(Value(1.5)).IsTypeMismatch());
  EXPECT_TRUE(bat->AppendValue(Value(std::string("x"))).IsTypeMismatch());
  EXPECT_EQ(bat->size(), 2u);
  EXPECT_EQ(bat->Get<int64_t>(1), 2);
}

TEST(BatTest, GetValueRoundTrip) {
  auto bat = Bat::Create(ValueType::kFloat64);
  bat->Append<double>(3.25);
  Value v = bat->GetValue(0);
  ASSERT_TRUE(v.is_double());
  EXPECT_DOUBLE_EQ(v.AsDouble(), 3.25);
}

TEST(BatTest, StringTail) {
  auto bat = Bat::Create(ValueType::kString, "s");
  bat->AppendString("foo");
  bat->AppendString("bar");
  bat->AppendString("foo");  // deduped in heap
  ASSERT_EQ(bat->size(), 3u);
  EXPECT_EQ(bat->GetString(0), "foo");
  EXPECT_EQ(bat->GetString(1), "bar");
  EXPECT_EQ(bat->GetString(2), "foo");
  EXPECT_EQ(bat->heap()->num_strings(), 2u);
}

TEST(BatTest, SetNumericRejectsStringTailsWithStatus) {
  auto bat = Bat::Create(ValueType::kString, "s");
  bat->AppendString("foo");
  Status st = bat->SetNumeric(0, 42);
  ASSERT_TRUE(st.IsTypeMismatch());
  EXPECT_NE(st.message().find("string"), std::string::npos);
  EXPECT_EQ(bat->GetString(0), "foo");  // untouched
  // Out-of-range rows error before the type check path.
  EXPECT_TRUE(bat->SetNumeric(5, 1).IsInvalidArgument());
}

TEST(BatTest, SetStringOverwritesInPlace) {
  auto bat = Bat::Create(ValueType::kString, "s");
  bat->AppendString("old");
  bat->AppendString("keep");
  ASSERT_TRUE(bat->SetString(0, "new").ok());
  EXPECT_EQ(bat->GetString(0), "new");
  EXPECT_EQ(bat->GetString(1), "keep");
  EXPECT_TRUE(bat->SetString(9, "x").IsInvalidArgument());
  // Non-string tails reject string overwrites symmetrically.
  auto ints = Bat::FromVector(std::vector<int64_t>{1}, "i");
  EXPECT_TRUE(ints->SetString(0, "x").IsTypeMismatch());
}

TEST(BatTest, SetValueDispatchesByType) {
  auto strings = Bat::Create(ValueType::kString, "s");
  strings->AppendString("a");
  ASSERT_TRUE(strings->SetValue(0, Value(std::string("b"))).ok());
  EXPECT_EQ(strings->GetString(0), "b");
  auto doubles = Bat::FromVector(std::vector<double>{1.0}, "d");
  ASSERT_TRUE(doubles->SetValue(0, Value(2.5)).ok());
  EXPECT_DOUBLE_EQ(doubles->Get<double>(0), 2.5);  // fraction preserved
  auto ints = Bat::FromVector(std::vector<int32_t>{1}, "i");
  ASSERT_TRUE(ints->SetValue(0, Value(int64_t{7})).ok());
  EXPECT_EQ(ints->Get<int32_t>(0), 7);
  EXPECT_TRUE(
      ints->SetValue(0, Value(int64_t{1} << 40)).IsInvalidArgument());
  EXPECT_TRUE(ints->SetValue(0, Value()).IsInvalidArgument());  // null
}

TEST(BatTest, StatsMinMaxSorted) {
  auto sorted = Bat::FromVector(std::vector<int64_t>{1, 2, 2, 9});
  const BatStats& s1 = sorted->ComputeStats();
  EXPECT_TRUE(s1.sorted_asc);
  EXPECT_EQ(s1.min, 1);
  EXPECT_EQ(s1.max, 9);

  auto unsorted = Bat::FromVector(std::vector<int64_t>{3, 1, 2});
  const BatStats& s2 = unsorted->ComputeStats();
  EXPECT_FALSE(s2.sorted_asc);
  EXPECT_EQ(s2.min, 1);
  EXPECT_EQ(s2.max, 3);
}

TEST(BatTest, StatsInvalidatedByMutation) {
  auto bat = Bat::FromVector(std::vector<int64_t>{1, 2});
  EXPECT_TRUE(bat->ComputeStats().sorted_asc);
  bat->Append<int64_t>(0);
  EXPECT_FALSE(bat->ComputeStats().sorted_asc);
}

TEST(BatTest, StatsOfEmptyBat) {
  auto bat = Bat::Create(ValueType::kInt64);
  const BatStats& s = bat->ComputeStats();
  EXPECT_TRUE(s.valid);
  EXPECT_TRUE(s.sorted_asc);
}

TEST(BatTest, CloneIsDeep) {
  auto bat = Bat::FromVector(std::vector<int64_t>{1, 2, 3}, "orig");
  auto clone = bat->Clone("copy");
  clone->MutableTailData<int64_t>()[0] = 99;
  EXPECT_EQ(bat->Get<int64_t>(0), 1);
  EXPECT_EQ(clone->Get<int64_t>(0), 99);
  EXPECT_EQ(clone->name(), "copy");
}

TEST(BatTest, HeadBasePropagation) {
  auto bat = Bat::FromVector(std::vector<int64_t>{7, 8});
  bat->set_head_base(100);
  EXPECT_EQ(bat->head_base(), 100u);
  auto clone = bat->Clone();
  EXPECT_EQ(clone->head_base(), 100u);
}

TEST(BatViewTest, WholeBatView) {
  auto bat = Bat::FromVector(std::vector<int64_t>{10, 20, 30});
  BatView view(bat);
  ASSERT_EQ(view.size(), 3u);
  EXPECT_EQ(view.Get<int64_t>(0), 10);
  EXPECT_EQ(view.Get<int64_t>(2), 30);
}

TEST(BatViewTest, WindowView) {
  auto bat = Bat::FromVector(std::vector<int64_t>{0, 1, 2, 3, 4});
  BatView view(bat, 1, 3);
  ASSERT_EQ(view.size(), 3u);
  EXPECT_EQ(view.Get<int64_t>(0), 1);
  EXPECT_EQ(view.Get<int64_t>(2), 3);
  EXPECT_EQ(view.offset(), 1u);
}

TEST(BatViewTest, HeadOidArithmetic) {
  auto bat = Bat::FromVector(std::vector<int64_t>{0, 1, 2, 3});
  bat->set_head_base(50);
  BatView view(bat, 2, 2);
  EXPECT_EQ(view.HeadOid(0), 52u);
  EXPECT_EQ(view.HeadOid(1), 53u);
}

TEST(BatViewTest, SliceIsRelative) {
  auto bat = Bat::FromVector(std::vector<int64_t>{0, 1, 2, 3, 4, 5});
  BatView view(bat, 2, 4);      // {2,3,4,5}
  BatView sub = view.Slice(1, 2);  // {3,4}
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.Get<int64_t>(0), 3);
  EXPECT_EQ(sub.Get<int64_t>(1), 4);
}

TEST(BatViewTest, ViewSeesParentMutation) {
  auto bat = Bat::FromVector(std::vector<int64_t>{1, 2, 3});
  BatView view(bat, 0, 3);
  bat->MutableTailData<int64_t>()[1] = 42;
  EXPECT_EQ(view.Get<int64_t>(1), 42);  // zero-copy semantics
}

TEST(BatViewTest, MaterializeCopies) {
  auto bat = Bat::FromVector(std::vector<int64_t>{9, 8, 7, 6});
  BatView view(bat, 1, 2);
  auto mat = view.Materialize("piece");
  ASSERT_EQ(mat->size(), 2u);
  EXPECT_EQ(mat->Get<int64_t>(0), 8);
  EXPECT_EQ(mat->Get<int64_t>(1), 7);
  EXPECT_EQ(mat->head_base(), 1u);
  bat->MutableTailData<int64_t>()[1] = 0;
  EXPECT_EQ(mat->Get<int64_t>(0), 8);  // decoupled from parent
}

TEST(BatViewTest, EmptyAndInvalid) {
  BatView invalid;
  EXPECT_FALSE(invalid.valid());
  EXPECT_EQ(invalid.size(), 0u);
  auto bat = Bat::FromVector(std::vector<int64_t>{1});
  BatView empty(bat, 1, 0);
  EXPECT_TRUE(empty.valid());
  EXPECT_TRUE(empty.empty());
}

TEST(BatViewTest, DataPointerIsOffset) {
  auto bat = Bat::FromVector(std::vector<int64_t>{4, 5, 6});
  BatView view(bat, 1, 2);
  EXPECT_EQ(view.data<int64_t>()[0], 5);
  EXPECT_EQ(view.data<int64_t>(), bat->TailData<int64_t>() + 1);
}

TEST(BatTest, TailBytes) {
  auto bat = Bat::FromVector(std::vector<int32_t>{1, 2, 3});
  EXPECT_EQ(bat->tail_bytes(), 12u);
}

}  // namespace
}  // namespace crackstore
