// Copyright 2026 The CrackStore Authors
//
// Tests for Status and Result<T>.

#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "util/result.h"
#include "util/status.h"

namespace crackstore {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("no table R");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "no table R");
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_FALSE(s.IsInvalidArgument());
}

TEST(StatusTest, EveryFactoryMapsToItsCode) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::TypeMismatch("x").IsTypeMismatch());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::InvalidArgument("bad arity").ToString(),
            "InvalidArgument: bad arity");
}

TEST(StatusTest, CopySemantics) {
  Status a = Status::Internal("boom");
  Status b = a;
  EXPECT_EQ(a, b);
  EXPECT_EQ(b.message(), "boom");
  b = Status::OK();
  EXPECT_TRUE(b.ok());
  EXPECT_FALSE(a.ok());  // deep copy, no aliasing
}

TEST(StatusTest, MoveSemantics) {
  Status a = Status::Internal("boom");
  Status b = std::move(a);
  EXPECT_TRUE(b.IsInternal());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_NE(Status::NotFound("x"), Status::NotFound("y"));
  EXPECT_NE(Status::NotFound("x"), Status::Internal("x"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, WithContextPrefixesMessage) {
  Status s = Status::NotFound("no column a").WithContext("table R");
  EXPECT_EQ(s.message(), "table R: no column a");
  EXPECT_TRUE(s.IsNotFound());
}

TEST(StatusTest, WithContextOnOkIsNoop) {
  EXPECT_TRUE(Status::OK().WithContext("ctx").ok());
}

TEST(StatusTest, StatusCodeToStringCoversAllCodes) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIoError), "IoError");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, ValueOrReturnsAlternativeOnError) {
  Result<int> ok = 7;
  Result<int> err = Status::Internal("x");
  EXPECT_EQ(ok.ValueOr(0), 7);
  EXPECT_EQ(err.ValueOr(99), 99);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

Result<int> Half(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Status UseHalf(int v, int* out) {
  CRACK_ASSIGN_OR_RETURN(*out, Half(v));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacroPropagatesValue) {
  int out = 0;
  ASSERT_TRUE(UseHalf(10, &out).ok());
  EXPECT_EQ(out, 5);
}

TEST(ResultTest, AssignOrReturnMacroPropagatesError) {
  int out = 0;
  Status s = UseHalf(3, &out);
  EXPECT_TRUE(s.IsInvalidArgument());
}

Status ReturnNotOkHelper(bool fail) {
  CRACK_RETURN_NOT_OK(fail ? Status::IoError("disk") : Status::OK());
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkMacro) {
  EXPECT_TRUE(ReturnNotOkHelper(false).ok());
  EXPECT_TRUE(ReturnNotOkHelper(true).IsIoError());
}

}  // namespace
}  // namespace crackstore
