// Copyright 2026 The CrackStore Authors
//
// Tests for multi-attribute conjunctive selections through the
// AdaptiveStore (each conjunct cracks its own column; oid sets intersect).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/adaptive_store.h"
#include "util/rng.h"
#include "workload/tapestry.h"

namespace crackstore {
namespace {

std::shared_ptr<Relation> Table(uint64_t n = 3000, uint64_t seed = 31) {
  TapestryOptions opts;
  opts.num_rows = n;
  opts.num_columns = 3;
  opts.seed = seed;
  return *BuildTapestry("R", opts);
}

using ColumnRange = AdaptiveStore::ColumnRange;

TEST(ConjunctionTest, ValidatesInput) {
  AdaptiveStore store;
  ASSERT_TRUE(store.AddTable(Table()).ok());
  EXPECT_TRUE(
      store.SelectConjunction("R", {}).status().IsInvalidArgument());
  EXPECT_TRUE(store
                  .SelectConjunction(
                      "R", {{"zz", RangeBounds::Closed(1, 2)}})
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(store
                  .SelectConjunction(
                      "X", {{"c0", RangeBounds::Closed(1, 2)}})
                  .status()
                  .IsNotFound());
}

TEST(ConjunctionTest, SingleConjunctDelegatesToSelectRange) {
  AdaptiveStore store;
  ASSERT_TRUE(store.AddTable(Table()).ok());
  auto result =
      store.SelectConjunction("R", {{"c0", RangeBounds::Closed(1, 100)}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->count, 100u);
}

TEST(ConjunctionTest, CountMatchesNaive) {
  auto rel = Table();
  AdaptiveStore store;
  ASSERT_TRUE(store.AddTable(rel).ok());
  RangeBounds r0 = RangeBounds::Closed(1, 1500);
  RangeBounds r1 = RangeBounds::Closed(1000, 2500);

  // Naive row-wise count.
  auto c0 = *rel->column("c0");
  auto c1 = *rel->column("c1");
  uint64_t expected = 0;
  for (size_t i = 0; i < rel->num_rows(); ++i) {
    expected += r0.Contains(c0->Get<int64_t>(i)) &&
                r1.Contains(c1->Get<int64_t>(i));
  }

  auto result = store.SelectConjunction("R", {{"c0", r0}, {"c1", r1}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->count, expected);
}

TEST(ConjunctionTest, AllStrategiesAgree) {
  auto rel = Table();
  Pcg32 rng(17);
  for (int q = 0; q < 10; ++q) {
    int64_t a0 = rng.NextInRange(1, 2000);
    int64_t a1 = rng.NextInRange(1, 2000);
    std::vector<ColumnRange> conjuncts{
        {"c0", RangeBounds::Closed(a0, a0 + 800)},
        {"c1", RangeBounds::Closed(a1, a1 + 800)},
        {"c2", RangeBounds::AtLeast(500)}};

    uint64_t counts[3];
    int i = 0;
    for (AccessStrategy s : {AccessStrategy::kScan, AccessStrategy::kCrack,
                             AccessStrategy::kSort}) {
      AdaptiveStoreOptions opts;
      opts.strategy = s;
      opts.track_lineage = false;
      AdaptiveStore store(opts);
      ASSERT_TRUE(store.AddTable(rel).ok());
      auto result = store.SelectConjunction("R", conjuncts);
      ASSERT_TRUE(result.ok());
      counts[i++] = result->count;
    }
    EXPECT_EQ(counts[0], counts[1]) << "query " << q;
    EXPECT_EQ(counts[0], counts[2]) << "query " << q;
  }
}

TEST(ConjunctionTest, ViewDeliveryReturnsSortedOids) {
  auto rel = Table();
  AdaptiveStore store;
  ASSERT_TRUE(store.AddTable(rel).ok());
  auto result = store.SelectConjunction(
      "R",
      {{"c0", RangeBounds::Closed(1, 500)}, {"c1", RangeBounds::Closed(1, 500)}},
      Delivery::kView);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->scan_oids.size(), result->count);
  EXPECT_TRUE(std::is_sorted(result->scan_oids.begin(),
                             result->scan_oids.end()));
  // Every returned oid satisfies both predicates.
  auto c0 = *rel->column("c0");
  auto c1 = *rel->column("c1");
  for (Oid oid : result->scan_oids) {
    EXPECT_LE(c0->Get<int64_t>(static_cast<size_t>(oid)), 500);
    EXPECT_LE(c1->Get<int64_t>(static_cast<size_t>(oid)), 500);
  }
}

TEST(ConjunctionTest, CracksEveryReferencedColumn) {
  AdaptiveStore store;
  ASSERT_TRUE(store.AddTable(Table()).ok());
  ASSERT_TRUE(store
                  .SelectConjunction("R",
                                     {{"c0", RangeBounds::Closed(100, 900)},
                                      {"c1", RangeBounds::Closed(200, 800)}})
                  .ok());
  EXPECT_GT(*store.NumPieces("R", "c0"), 1u);
  EXPECT_GT(*store.NumPieces("R", "c1"), 1u);
  EXPECT_EQ(*store.NumPieces("R", "c2"), 1u);  // untouched column
}

TEST(ConjunctionTest, RepeatConjunctionGetsCheaper) {
  AdaptiveStore store;
  ASSERT_TRUE(store.AddTable(Table(50000)).ok());
  std::vector<ColumnRange> conjuncts{{"c0", RangeBounds::Closed(1000, 5000)},
                                     {"c1", RangeBounds::Closed(2000, 6000)}};
  auto first = store.SelectConjunction("R", conjuncts);
  ASSERT_TRUE(first.ok());
  auto second = store.SelectConjunction("R", conjuncts);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->count, second->count);
  // The repeat pays only the intersection, not the cracking.
  EXPECT_EQ(second->io.cracks, 0u);
  EXPECT_LT(second->io.tuples_read, first->io.tuples_read);
}

TEST(ConjunctionTest, EmptyIntersection) {
  AdaptiveStore store;
  ASSERT_TRUE(store.AddTable(Table()).ok());
  // c0 small and c0 large can't both hold (same column twice).
  auto result = store.SelectConjunction(
      "R", {{"c0", RangeBounds::AtMost(100)},
            {"c0", RangeBounds::AtLeast(2000)}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->count, 0u);
}

TEST(ConjunctionTest, MaterializeUnimplementedHint) {
  AdaptiveStore store;
  ASSERT_TRUE(store.AddTable(Table()).ok());
  EXPECT_TRUE(store
                  .SelectConjunction("R",
                                     {{"c0", RangeBounds::Closed(1, 10)},
                                      {"c1", RangeBounds::Closed(1, 10)}},
                                     Delivery::kMaterialize)
                  .status()
                  .IsUnimplemented());
}

}  // namespace
}  // namespace crackstore
