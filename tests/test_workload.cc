// Copyright 2026 The CrackStore Authors
//
// Tests for DBtapestry, the contraction models (Fig. 8) and the MQS
// sequence generators (homerun / hiking / strolling).

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <tuple>
#include <vector>

#include "workload/contraction.h"
#include "workload/sequence.h"
#include "workload/tapestry.h"

namespace crackstore {
namespace {

bool IsPermutationOf1ToN(const Bat& bat) {
  size_t n = bat.size();
  std::vector<bool> seen(n + 1, false);
  const int64_t* d = bat.TailData<int64_t>();
  for (size_t i = 0; i < n; ++i) {
    if (d[i] < 1 || d[i] > static_cast<int64_t>(n)) return false;
    if (seen[static_cast<size_t>(d[i])]) return false;
    seen[static_cast<size_t>(d[i])] = true;
  }
  return true;
}

TEST(TapestryTest, EveryColumnIsAPermutation) {
  TapestryOptions opts;
  opts.num_rows = 5000;
  opts.num_columns = 3;
  auto rel = BuildTapestry("T", opts);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ((*rel)->num_rows(), 5000u);
  EXPECT_EQ((*rel)->num_columns(), 3u);
  for (size_t c = 0; c < 3; ++c) {
    EXPECT_TRUE(IsPermutationOf1ToN(*(*rel)->column(c))) << "column " << c;
  }
}

TEST(TapestryTest, NonMultipleOfSeedBlock) {
  TapestryOptions opts;
  opts.num_rows = 1000;
  opts.seed_table_size = 300;  // 1000 = 3*300 + 100 -> overflow remap path
  auto rel = BuildTapestry("T", opts);
  ASSERT_TRUE(rel.ok());
  EXPECT_TRUE(IsPermutationOf1ToN(*(*rel)->column(size_t{0})));
}

TEST(TapestryTest, TinyTables) {
  TapestryOptions opts;
  opts.num_rows = 1;
  auto rel = BuildTapestry("T", opts);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ((*rel)->column(size_t{0})->Get<int64_t>(0), 1);
}

TEST(TapestryTest, DeterministicInSeed) {
  TapestryOptions opts;
  opts.num_rows = 500;
  auto a = *BuildTapestry("A", opts);
  auto b = *BuildTapestry("B", opts);
  for (size_t i = 0; i < 500; ++i) {
    EXPECT_EQ(a->column(size_t{0})->Get<int64_t>(i),
              b->column(size_t{0})->Get<int64_t>(i));
  }
  opts.seed += 1;
  auto c = *BuildTapestry("C", opts);
  bool all_equal = true;
  for (size_t i = 0; i < 500; ++i) {
    all_equal &= a->column(size_t{0})->Get<int64_t>(i) ==
                 c->column(size_t{0})->Get<int64_t>(i);
  }
  EXPECT_FALSE(all_equal);
}

TEST(TapestryTest, ColumnsAreIndependent) {
  TapestryOptions opts;
  opts.num_rows = 1000;
  auto rel = *BuildTapestry("T", opts);
  size_t same = 0;
  for (size_t i = 0; i < 1000; ++i) {
    if (rel->column(size_t{0})->Get<int64_t>(i) ==
        rel->column(size_t{1})->Get<int64_t>(i)) {
      ++same;
    }
  }
  EXPECT_LT(same, 20u);  // ~1 expected for independent permutations
}

TEST(TapestryTest, ValidatesOptions) {
  TapestryOptions opts;
  opts.num_rows = 0;
  EXPECT_TRUE(BuildTapestry("T", opts).status().IsInvalidArgument());
  opts.num_rows = 10;
  opts.num_columns = 0;
  EXPECT_TRUE(BuildTapestry("T", opts).status().IsInvalidArgument());
  opts.num_columns = 1;
  opts.seed_table_size = 0;
  EXPECT_TRUE(BuildTapestry("T", opts).status().IsInvalidArgument());
}

TEST(TapestryTest, PermutationColumnHelper) {
  auto col = BuildPermutationColumn(777, 3, "p");
  EXPECT_TRUE(IsPermutationOf1ToN(*col));
}

// Parameterized permutation sweep: sizes around seed-block boundaries.
class TapestrySweepTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint64_t>> {};

TEST_P(TapestrySweepTest, PermutationInvariant) {
  auto [rows, seed_block] = GetParam();
  TapestryOptions opts;
  opts.num_rows = rows;
  opts.num_columns = 1;
  opts.seed_table_size = seed_block;
  auto rel = BuildTapestry("T", opts);
  ASSERT_TRUE(rel.ok());
  EXPECT_TRUE(IsPermutationOf1ToN(*(*rel)->column(size_t{0})));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TapestrySweepTest,
    ::testing::Combine(
        ::testing::Values<uint64_t>(1, 2, 17, 100, 1023, 1024, 1025, 4096),
        ::testing::Values<uint64_t>(1, 7, 1024)));

// ---------------------------------------------------------------------------
// Contraction models.
// ---------------------------------------------------------------------------

class ContractionModelTest
    : public ::testing::TestWithParam<ContractionModel> {};

TEST_P(ContractionModelTest, EndpointsAndMonotonicity) {
  ContractionModel model = GetParam();
  const size_t k = 20;
  const double sigma = 0.2;
  double prev = Contraction(model, 0, k, sigma);
  EXPECT_GT(prev, 0.95);  // starts at (or near) the whole table
  for (size_t i = 1; i <= k; ++i) {
    double cur = Contraction(model, i, k, sigma);
    EXPECT_LE(cur, prev + 1e-12) << "step " << i;
    EXPECT_GE(cur, sigma - 1e-12);
    prev = cur;
  }
  EXPECT_NEAR(Contraction(model, k, k, sigma), sigma, 1e-9);
}

TEST_P(ContractionModelTest, BeyondKStaysAtSigma) {
  EXPECT_DOUBLE_EQ(Contraction(GetParam(), 25, 20, 0.3), 0.3);
}

TEST_P(ContractionModelTest, SigmaOneIsConstant) {
  for (size_t i = 0; i <= 10; ++i) {
    EXPECT_DOUBLE_EQ(Contraction(GetParam(), i, 10, 1.0), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, ContractionModelTest,
                         ::testing::Values(ContractionModel::kLinear,
                                           ContractionModel::kExponential,
                                           ContractionModel::kLogarithmic));

TEST(ContractionTest, LinearIsExactlyLinear) {
  // (1 - i (1-σ)/k)
  EXPECT_DOUBLE_EQ(Contraction(ContractionModel::kLinear, 10, 20, 0.2), 0.6);
  EXPECT_DOUBLE_EQ(Contraction(ContractionModel::kLinear, 5, 20, 0.2), 0.8);
}

TEST(ContractionTest, ShapesMatchFig8) {
  // Fig. 8 (σ=0.2, k=20): at mid-sequence the exponential curve is already
  // near σ, the linear curve at (1+σ)/2, the logarithmic still near 1.
  const size_t k = 20;
  const double sigma = 0.2;
  double exp_mid = Contraction(ContractionModel::kExponential, 10, k, sigma);
  double lin_mid = Contraction(ContractionModel::kLinear, 10, k, sigma);
  double log_mid = Contraction(ContractionModel::kLogarithmic, 10, k, sigma);
  EXPECT_LT(exp_mid, 0.3);
  EXPECT_NEAR(lin_mid, 0.6, 1e-9);
  EXPECT_GT(log_mid, 0.9);
  EXPECT_LT(exp_mid, lin_mid);
  EXPECT_LT(lin_mid, log_mid);
}

TEST(ContractionTest, NamesAndParsing) {
  EXPECT_STREQ(ContractionModelName(ContractionModel::kLinear), "linear");
  EXPECT_EQ(ContractionModelFromString("exp"),
            ContractionModel::kExponential);
  EXPECT_EQ(ContractionModelFromString("logarithmic"),
            ContractionModel::kLogarithmic);
  EXPECT_EQ(ContractionModelFromString("junk"), ContractionModel::kLinear);
}

// ---------------------------------------------------------------------------
// Sequence generators.
// ---------------------------------------------------------------------------

MqsSpec BaseSpec(Profile profile) {
  MqsSpec spec;
  spec.num_rows = 100000;
  spec.sequence_length = 20;
  spec.target_selectivity = 0.05;
  spec.profile = profile;
  spec.seed = 99;
  return spec;
}

TEST(SequenceTest, ValidatesSpec) {
  MqsSpec bad = BaseSpec(Profile::kHomerun);
  bad.num_rows = 0;
  EXPECT_TRUE(GenerateSequence(bad).status().IsInvalidArgument());
  bad = BaseSpec(Profile::kHomerun);
  bad.sequence_length = 0;
  EXPECT_TRUE(GenerateSequence(bad).status().IsInvalidArgument());
  bad = BaseSpec(Profile::kHomerun);
  bad.target_selectivity = 0.0;
  EXPECT_TRUE(GenerateSequence(bad).status().IsInvalidArgument());
  bad.target_selectivity = 1.5;
  EXPECT_TRUE(GenerateSequence(bad).status().IsInvalidArgument());
}

TEST(SequenceTest, DeterministicInSeed) {
  auto a = *GenerateSequence(BaseSpec(Profile::kStrolling));
  auto b = *GenerateSequence(BaseSpec(Profile::kStrolling));
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].lo, b[i].lo);
    EXPECT_EQ(a[i].hi, b[i].hi);
  }
}

class ProfileTest : public ::testing::TestWithParam<Profile> {};

TEST_P(ProfileTest, QueriesStayInDomainWithSaneWidths) {
  MqsSpec spec = BaseSpec(GetParam());
  auto queries = GenerateSequence(spec);
  ASSERT_TRUE(queries.ok());
  ASSERT_EQ(queries->size(), spec.sequence_length);
  int64_t n = static_cast<int64_t>(spec.num_rows);
  for (const RangeQuery& q : *queries) {
    EXPECT_GE(q.lo, 1);
    EXPECT_LE(q.hi, n);
    EXPECT_LE(q.lo, q.hi);
    EXPECT_GT(q.selectivity, 0.0);
    EXPECT_LE(q.selectivity, 1.0);
    EXPECT_NEAR(q.selectivity,
                static_cast<double>(q.width()) / static_cast<double>(n),
                1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, ProfileTest,
                         ::testing::Values(Profile::kHomerun,
                                           Profile::kHiking,
                                           Profile::kStrolling,
                                           Profile::kStrollingConverge));

TEST(SequenceTest, HomerunIsNestedAndMonotone) {
  for (auto model :
       {ContractionModel::kLinear, ContractionModel::kExponential,
        ContractionModel::kLogarithmic}) {
    MqsSpec spec = BaseSpec(Profile::kHomerun);
    spec.rho = model;
    auto queries = *GenerateSequence(spec);
    for (size_t i = 1; i < queries.size(); ++i) {
      EXPECT_GE(queries[i].lo, queries[i - 1].lo) << "step " << i;
      EXPECT_LE(queries[i].hi, queries[i - 1].hi) << "step " << i;
      EXPECT_LE(queries[i].width(), queries[i - 1].width());
    }
    // Final query hits the target selectivity exactly.
    EXPECT_NEAR(queries.back().selectivity, spec.target_selectivity, 1e-3);
  }
}

TEST(SequenceTest, HomerunFirstQueryIsBroad) {
  auto queries = *GenerateSequence(BaseSpec(Profile::kHomerun));
  EXPECT_GT(queries.front().selectivity, 0.8);
}

TEST(SequenceTest, HikingWindowsHaveFixedWidthAndConverge) {
  MqsSpec spec = BaseSpec(Profile::kHiking);
  auto queries = *GenerateSequence(spec);
  int64_t w = queries.front().width();
  for (const RangeQuery& q : queries) EXPECT_EQ(q.width(), w);
  // Later windows overlap their predecessor more and more (δ -> 100%).
  auto overlap = [](const RangeQuery& a, const RangeQuery& b) {
    int64_t lo = std::max(a.lo, b.lo);
    int64_t hi = std::min(a.hi, b.hi);
    return hi >= lo ? hi - lo + 1 : 0;
  };
  int64_t late = overlap(queries[queries.size() - 2], queries.back());
  EXPECT_GT(late, w / 2);  // near-total overlap at the end
}

TEST(SequenceTest, StrollingConvergeShrinksWidths) {
  MqsSpec spec = BaseSpec(Profile::kStrollingConverge);
  auto queries = *GenerateSequence(spec);
  // Widths follow ρ: non-increasing.
  for (size_t i = 1; i < queries.size(); ++i) {
    EXPECT_LE(queries[i].width(), queries[i - 1].width());
  }
  EXPECT_NEAR(queries.back().selectivity, spec.target_selectivity, 1e-3);
}

TEST(SequenceTest, StrollingPositionsVary) {
  MqsSpec spec = BaseSpec(Profile::kStrolling);
  spec.sequence_length = 50;
  auto queries = *GenerateSequence(spec);
  std::set<int64_t> los;
  for (const RangeQuery& q : queries) los.insert(q.lo);
  EXPECT_GT(los.size(), 25u);  // not stuck in one place
}

TEST(SequenceTest, ProfileNamesAndParsing) {
  EXPECT_STREQ(ProfileName(Profile::kHomerun), "homerun");
  EXPECT_STREQ(ProfileName(Profile::kStrollingConverge),
               "strolling-converge");
  EXPECT_EQ(ProfileFromString("hiking"), Profile::kHiking);
  EXPECT_EQ(ProfileFromString("strolling"), Profile::kStrolling);
  EXPECT_EQ(ProfileFromString("???"), Profile::kHomerun);
}

TEST(SequenceTest, FullSelectivityTarget) {
  MqsSpec spec = BaseSpec(Profile::kHomerun);
  spec.target_selectivity = 1.0;  // whole table every step
  auto queries = GenerateSequence(spec);
  ASSERT_TRUE(queries.ok());
  for (const RangeQuery& q : *queries) {
    EXPECT_EQ(q.width(), static_cast<int64_t>(spec.num_rows));
  }
}

}  // namespace
}  // namespace crackstore
