// Copyright 2026 The CrackStore Authors
//
// Tests for the SQL frontend: lexer, parser, and execution against the
// AdaptiveStore (cross-checked with the direct API).

#include <gtest/gtest.h>

#include "sql/executor.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "workload/tapestry.h"

namespace crackstore {
namespace sql {
namespace {

// ---------------------------------------------------------------------------
// Lexer.
// ---------------------------------------------------------------------------

TEST(LexerTest, TokenizesKeywordsCaseInsensitively) {
  auto tokens = *Tokenize("select FROM Where");
  ASSERT_EQ(tokens.size(), 4u);  // + end
  EXPECT_TRUE(tokens[0].IsKeyword("SELECT"));
  EXPECT_TRUE(tokens[1].IsKeyword("FROM"));
  EXPECT_TRUE(tokens[2].IsKeyword("WHERE"));
  EXPECT_EQ(tokens[3].type, TokenType::kEnd);
}

TEST(LexerTest, IdentifiersKeepCase) {
  auto tokens = *Tokenize("MyTable c0");
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[0].text, "MyTable");
  EXPECT_EQ(tokens[1].text, "c0");
}

TEST(LexerTest, Numbers) {
  auto tokens = *Tokenize("42 -17 0");
  EXPECT_EQ(tokens[0].number, 42);
  EXPECT_EQ(tokens[1].number, -17);
  EXPECT_EQ(tokens[2].number, 0);
}

TEST(LexerTest, Operators) {
  auto tokens = *Tokenize("< <= > >= = <>");
  EXPECT_EQ(tokens[0].text, "<");
  EXPECT_EQ(tokens[1].text, "<=");
  EXPECT_EQ(tokens[2].text, ">");
  EXPECT_EQ(tokens[3].text, ">=");
  EXPECT_EQ(tokens[4].text, "=");
  EXPECT_EQ(tokens[5].text, "<>");
}

TEST(LexerTest, SymbolsAndQualifiedNames) {
  auto tokens = *Tokenize("R.c0, (*);");
  EXPECT_EQ(tokens[0].text, "R");
  EXPECT_EQ(tokens[1].text, ".");
  EXPECT_EQ(tokens[2].text, "c0");
  EXPECT_EQ(tokens[3].text, ",");
  EXPECT_EQ(tokens[4].text, "(");
  EXPECT_EQ(tokens[5].text, "*");
}

TEST(LexerTest, RejectsGarbage) {
  EXPECT_FALSE(Tokenize("select @ from t").ok());
  EXPECT_FALSE(Tokenize("select # t").ok());
}

TEST(LexerTest, StringLiterals) {
  auto tokens = *Tokenize("'hello' 'it''s' ''");
  ASSERT_EQ(tokens.size(), 4u);  // three strings + end
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_EQ(tokens[0].text, "hello");
  EXPECT_EQ(tokens[1].type, TokenType::kString);
  EXPECT_EQ(tokens[1].text, "it's");  // '' decodes to a single quote
  EXPECT_EQ(tokens[2].type, TokenType::kString);
  EXPECT_EQ(tokens[2].text, "");  // the empty string is a valid literal
}

TEST(LexerTest, UnterminatedStringLiteral) {
  auto result = Tokenize("SELECT * FROM t WHERE name = 'oops");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("unterminated string literal"),
            std::string::npos);
  EXPECT_NE(result.status().message().find("position"), std::string::npos);
  // A trailing '' escape must not read past the end either.
  EXPECT_FALSE(Tokenize("WHERE name = 'trailing''").ok());
}

// ---------------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------------

TEST(ParserTest, CountStar) {
  auto stmt = *Parse("SELECT COUNT(*) FROM R");
  EXPECT_TRUE(stmt.count_star);
  EXPECT_EQ(stmt.table, "R");
  EXPECT_TRUE(stmt.where.empty());
}

TEST(ParserTest, SelectStarWithWhere) {
  auto stmt = *Parse("SELECT * FROM R WHERE c0 BETWEEN 10 AND 20");
  EXPECT_TRUE(stmt.select_star);
  ASSERT_EQ(stmt.where.size(), 1u);
  EXPECT_EQ(stmt.where[0].column, "c0");
  EXPECT_TRUE(stmt.where[0].range.Contains(10));
  EXPECT_TRUE(stmt.where[0].range.Contains(20));
  EXPECT_FALSE(stmt.where[0].range.Contains(21));
}

TEST(ParserTest, AllComparisonOperators) {
  auto lt = *Parse("SELECT COUNT(*) FROM R WHERE a < 5");
  EXPECT_FALSE(lt.where[0].range.Contains(5));
  EXPECT_TRUE(lt.where[0].range.Contains(4));
  auto le = *Parse("SELECT COUNT(*) FROM R WHERE a <= 5");
  EXPECT_TRUE(le.where[0].range.Contains(5));
  auto gt = *Parse("SELECT COUNT(*) FROM R WHERE a > 5");
  EXPECT_FALSE(gt.where[0].range.Contains(5));
  auto ge = *Parse("SELECT COUNT(*) FROM R WHERE a >= 5");
  EXPECT_TRUE(ge.where[0].range.Contains(5));
  auto eq = *Parse("SELECT COUNT(*) FROM R WHERE a = 5");
  EXPECT_TRUE(eq.where[0].range.Contains(5));
  EXPECT_FALSE(eq.where[0].range.Contains(4));
}

TEST(ParserTest, StringPredicates) {
  auto eq = *Parse("SELECT COUNT(*) FROM P WHERE name = 'gadget'");
  ASSERT_EQ(eq.where.size(), 1u);
  EXPECT_TRUE(eq.where[0].range.has_string());
  EXPECT_TRUE(eq.where[0].range.Contains("gadget"));
  EXPECT_FALSE(eq.where[0].range.Contains("gizmo"));

  auto between = *Parse("SELECT * FROM P WHERE name BETWEEN 'a' AND 'mzz'");
  EXPECT_TRUE(between.where[0].range.Contains("banana"));
  EXPECT_FALSE(between.where[0].range.Contains("zebra"));

  auto lt = *Parse("SELECT COUNT(*) FROM P WHERE name < 'm'");
  EXPECT_TRUE(lt.where[0].range.Contains("alpha"));
  EXPECT_FALSE(lt.where[0].range.Contains("m"));

  // Mixed-family BETWEEN endpoints are a parse error.
  EXPECT_FALSE(Parse("SELECT * FROM P WHERE name BETWEEN 'a' AND 5").ok());
}

TEST(ParserTest, UpdateWithStringLiteral) {
  auto stmt = *ParseStatement("UPDATE P SET name = 'widget' WHERE qty = 3");
  ASSERT_EQ(stmt.update.sets.size(), 1u);
  EXPECT_EQ(stmt.update.sets[0].value, Value(std::string("widget")));
}

TEST(ParserTest, ConjunctiveWhere) {
  auto stmt = *Parse(
      "SELECT COUNT(*) FROM R WHERE c0 > 10 AND c1 BETWEEN 5 AND 9 AND "
      "c2 <= 100");
  ASSERT_EQ(stmt.where.size(), 3u);
  EXPECT_EQ(stmt.where[0].column, "c0");
  EXPECT_EQ(stmt.where[1].column, "c1");
  EXPECT_EQ(stmt.where[2].column, "c2");
}

TEST(ParserTest, ColumnList) {
  auto stmt = *Parse("SELECT c0, c1 FROM R WHERE c0 < 5");
  EXPECT_FALSE(stmt.select_star);
  ASSERT_EQ(stmt.items.size(), 2u);
  EXPECT_EQ(stmt.items[0].column, "c0");
  EXPECT_EQ(stmt.items[1].column, "c1");
}

TEST(ParserTest, Aggregates) {
  auto stmt = *Parse("SELECT SUM(c1) FROM R GROUP BY c0");
  ASSERT_EQ(stmt.items.size(), 1u);
  EXPECT_EQ(stmt.items[0].agg, AggFunc::kSum);
  EXPECT_EQ(stmt.items[0].column, "c1");
  ASSERT_TRUE(stmt.group_by.has_value());
  EXPECT_EQ(*stmt.group_by, "c0");
}

TEST(ParserTest, Join) {
  auto stmt = *Parse("SELECT COUNT(*) FROM R JOIN S ON R.c0 = S.c1");
  ASSERT_TRUE(stmt.join.has_value());
  EXPECT_EQ(stmt.join->table, "S");
  EXPECT_EQ(stmt.join->left_table, "R");
  EXPECT_EQ(stmt.join->left_column, "c0");
  EXPECT_EQ(stmt.join->right_table, "S");
  EXPECT_EQ(stmt.join->right_column, "c1");
}

TEST(ParserTest, TrailingSemicolonAllowed) {
  EXPECT_TRUE(Parse("SELECT COUNT(*) FROM R;").ok());
}

TEST(ParserTest, InsertStatement) {
  auto stmt = *ParseStatement("INSERT INTO R VALUES (1, -2, 30);");
  ASSERT_EQ(stmt.kind, StatementKind::kInsert);
  EXPECT_EQ(stmt.insert.table, "R");
  ASSERT_EQ(stmt.insert.values.size(), 3u);
  EXPECT_EQ(stmt.insert.values[0], Value(int64_t{1}));
  EXPECT_EQ(stmt.insert.values[1], Value(int64_t{-2}));
  EXPECT_EQ(stmt.insert.values[2], Value(int64_t{30}));
}

TEST(ParserTest, InsertStatementWithStringLiterals) {
  auto stmt = *ParseStatement("INSERT INTO P VALUES ('widget', 7, 'a''b')");
  ASSERT_EQ(stmt.kind, StatementKind::kInsert);
  ASSERT_EQ(stmt.insert.values.size(), 3u);
  EXPECT_EQ(stmt.insert.values[0], Value(std::string("widget")));
  EXPECT_EQ(stmt.insert.values[1], Value(int64_t{7}));
  EXPECT_EQ(stmt.insert.values[2], Value(std::string("a'b")));
}

TEST(ParserTest, DeleteStatement) {
  auto stmt = *ParseStatement("DELETE FROM R WHERE c0 BETWEEN 5 AND 9");
  ASSERT_EQ(stmt.kind, StatementKind::kDelete);
  EXPECT_EQ(stmt.del.table, "R");
  ASSERT_EQ(stmt.del.where.size(), 1u);
  EXPECT_TRUE(stmt.del.where[0].range.Contains(5));
  EXPECT_FALSE(stmt.del.where[0].range.Contains(10));

  auto all = *ParseStatement("DELETE FROM R");
  EXPECT_TRUE(all.del.where.empty());
}

TEST(ParserTest, UpdateStatement) {
  auto stmt = *ParseStatement(
      "UPDATE R SET c0 = 5, c1 = -7 WHERE c0 > 100 AND c1 <= 50");
  ASSERT_EQ(stmt.kind, StatementKind::kUpdate);
  EXPECT_EQ(stmt.update.table, "R");
  ASSERT_EQ(stmt.update.sets.size(), 2u);
  EXPECT_EQ(stmt.update.sets[0].column, "c0");
  EXPECT_EQ(stmt.update.sets[0].value, Value(int64_t{5}));
  EXPECT_EQ(stmt.update.sets[1].column, "c1");
  EXPECT_EQ(stmt.update.sets[1].value, Value(int64_t{-7}));
  EXPECT_EQ(stmt.update.where.size(), 2u);
}

TEST(ParserTest, ParseStatementStillHandlesSelect) {
  auto stmt = *ParseStatement("SELECT COUNT(*) FROM R WHERE c0 < 5");
  ASSERT_EQ(stmt.kind, StatementKind::kSelect);
  EXPECT_TRUE(stmt.select.count_star);
}

TEST(ParserTest, DmlErrors) {
  EXPECT_FALSE(ParseStatement("INSERT INTO R").ok());
  EXPECT_FALSE(ParseStatement("INSERT INTO R VALUES ()").ok());
  EXPECT_FALSE(ParseStatement("INSERT INTO R VALUES (1, 2").ok());
  EXPECT_FALSE(ParseStatement("DELETE R WHERE c0 < 5").ok());
  EXPECT_FALSE(ParseStatement("UPDATE R c0 = 5").ok());
  EXPECT_FALSE(ParseStatement("UPDATE R SET c0 5").ok());
  EXPECT_FALSE(ParseStatement("INSERT INTO R VALUES (1) trailing").ok());
  // The SELECT-only legacy entry rejects DML.
  EXPECT_FALSE(Parse("INSERT INTO R VALUES (1)").ok());
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("SELECT").ok());
  EXPECT_FALSE(Parse("SELECT * FROM").ok());
  EXPECT_FALSE(Parse("SELECT * R").ok());
  EXPECT_FALSE(Parse("SELECT * FROM R WHERE").ok());
  EXPECT_FALSE(Parse("SELECT * FROM R WHERE c0 <").ok());
  EXPECT_FALSE(Parse("SELECT * FROM R WHERE c0 BETWEEN 5").ok());
  EXPECT_FALSE(Parse("SELECT * FROM R extra garbage").ok());
  EXPECT_FALSE(Parse("SELECT * FROM R WHERE c0 <> 5").ok());  // unsupported
  EXPECT_FALSE(Parse("SELECT COUNT(*) FROM R JOIN S ON c0 = c1").ok());
}

TEST(ParserTest, ErrorMessagesCarryPosition) {
  auto result = Parse("SELECT * FROM R WHERE c0 !! 5");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("position"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Executor (against a real store).
// ---------------------------------------------------------------------------

class SqlExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TapestryOptions opts;
    opts.num_rows = 2000;
    opts.num_columns = 2;
    opts.seed = 61;
    ASSERT_TRUE(store_.AddTable(*BuildTapestry("R", opts)).ok());
    opts.seed = 62;
    ASSERT_TRUE(store_.AddTable(*BuildTapestry("S", opts)).ok());
  }

  AdaptiveStore store_;
};

TEST_F(SqlExecutorTest, CountStarNoWhere) {
  auto out = *ExecuteSql(&store_, "SELECT COUNT(*) FROM R");
  EXPECT_EQ(out.kind, OutputKind::kCount);
  EXPECT_EQ(out.count, 2000u);
}

TEST_F(SqlExecutorTest, CountStarWithRange) {
  auto out =
      *ExecuteSql(&store_, "SELECT COUNT(*) FROM R WHERE c0 BETWEEN 100 AND 199");
  EXPECT_EQ(out.count, 100u);  // permutation of 1..2000
}

TEST_F(SqlExecutorTest, CountMatchesDirectApi) {
  auto via_sql =
      *ExecuteSql(&store_, "SELECT COUNT(*) FROM R WHERE c0 <= 500");
  auto direct = *store_.SelectRange("R", "c0", RangeBounds::AtMost(500));
  EXPECT_EQ(via_sql.count, direct.count);
  EXPECT_EQ(via_sql.count, 500u);
}

TEST_F(SqlExecutorTest, ConjunctionCracksBothColumns) {
  auto out = *ExecuteSql(
      &store_, "SELECT COUNT(*) FROM R WHERE c0 <= 1000 AND c1 <= 1000");
  // Independent permutations: expect ~ n * (1/2) * (1/2) = 500.
  EXPECT_GT(out.count, 350u);
  EXPECT_LT(out.count, 650u);
  EXPECT_GT(*store_.NumPieces("R", "c0"), 1u);
  EXPECT_GT(*store_.NumPieces("R", "c1"), 1u);
}

TEST_F(SqlExecutorTest, SelectStarMaterializesRows) {
  auto out = *ExecuteSql(&store_, "SELECT * FROM R WHERE c0 BETWEEN 1 AND 10");
  ASSERT_EQ(out.kind, OutputKind::kRows);
  ASSERT_NE(out.rows, nullptr);
  EXPECT_EQ(out.rows->num_rows(), 10u);
  EXPECT_EQ(out.rows->num_columns(), 2u);
}

TEST_F(SqlExecutorTest, ProjectionKeepsRequestedColumns) {
  auto out = *ExecuteSql(&store_, "SELECT c1 FROM R WHERE c0 = 7");
  ASSERT_EQ(out.kind, OutputKind::kRows);
  EXPECT_EQ(out.rows->num_columns(), 1u);
  EXPECT_EQ(out.rows->num_rows(), 1u);
  EXPECT_EQ(out.rows->schema().column(0).name, "c1");
}

TEST_F(SqlExecutorTest, GlobalAggregate) {
  auto out = *ExecuteSql(&store_, "SELECT SUM(c0) FROM R");
  ASSERT_EQ(out.kind, OutputKind::kGroups);
  ASSERT_EQ(out.groups.size(), 1u);
  EXPECT_EQ(out.groups[0].value, 2000 * 2001 / 2);  // sum of 1..2000
}

TEST_F(SqlExecutorTest, GlobalAggregateWithWhere) {
  auto out = *ExecuteSql(&store_, "SELECT MAX(c0) FROM R WHERE c0 <= 1234");
  ASSERT_EQ(out.groups.size(), 1u);
  EXPECT_EQ(out.groups[0].value, 1234);
  auto min = *ExecuteSql(&store_, "SELECT MIN(c0) FROM R WHERE c0 > 1500");
  EXPECT_EQ(min.groups[0].value, 1501);
}

TEST_F(SqlExecutorTest, JoinCount) {
  auto out =
      *ExecuteSql(&store_, "SELECT COUNT(*) FROM R JOIN S ON R.c0 = S.c0");
  EXPECT_EQ(out.count, 2000u);  // permutation x permutation
  // Reversed qualifier order resolves too.
  auto reversed =
      *ExecuteSql(&store_, "SELECT COUNT(*) FROM R JOIN S ON S.c0 = R.c0");
  EXPECT_EQ(reversed.count, 2000u);
}

TEST_F(SqlExecutorTest, GroupByAggregate) {
  // Build a small grouped table.
  Schema schema({{"g", ValueType::kInt64}, {"v", ValueType::kInt64}});
  auto rel = *Relation::Create("G", schema);
  for (int64_t i = 0; i < 90; ++i) {
    ASSERT_TRUE(rel->AppendRow({Value(i % 3), Value(i)}).ok());
  }
  ASSERT_TRUE(store_.AddTable(rel).ok());
  auto out = *ExecuteSql(&store_, "SELECT SUM(v) FROM G GROUP BY g");
  ASSERT_EQ(out.kind, OutputKind::kGroups);
  ASSERT_EQ(out.groups.size(), 3u);
  int64_t total = 0;
  for (const auto& g : out.groups) total += g.value;
  EXPECT_EQ(total, 89 * 90 / 2);
  auto counts = *ExecuteSql(&store_, "SELECT COUNT(*) FROM G GROUP BY g");
  for (const auto& g : counts.groups) EXPECT_EQ(g.value, 30);
}

TEST_F(SqlExecutorTest, ExecutionErrors) {
  EXPECT_TRUE(ExecuteSql(&store_, "SELECT COUNT(*) FROM missing")
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(ExecuteSql(&store_, "SELECT COUNT(*) FROM R WHERE zz < 5")
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(ExecuteSql(&store_, "SELECT zz FROM R WHERE c0 < 5")
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(
      ExecuteSql(&store_,
                 "SELECT COUNT(*) FROM R JOIN S ON R.c0 = S.c0 GROUP BY c0")
          .status()
          .IsUnimplemented());
}

TEST_F(SqlExecutorTest, SqlQueriesDriveCracking) {
  EXPECT_EQ(*store_.NumPieces("R", "c0"), 1u);
  ASSERT_TRUE(
      ExecuteSql(&store_, "SELECT COUNT(*) FROM R WHERE c0 BETWEEN 50 AND 90")
          .ok());
  EXPECT_EQ(*store_.NumPieces("R", "c0"), 3u);
  // The repeat is answered from the index.
  auto repeat = *ExecuteSql(
      &store_, "SELECT COUNT(*) FROM R WHERE c0 BETWEEN 50 AND 90");
  EXPECT_EQ(repeat.io.cracks, 0u);
}

TEST_F(SqlExecutorTest, InsertRoundTrip) {
  auto ins = *ExecuteSql(&store_, "INSERT INTO R VALUES (5001, 5002)");
  EXPECT_EQ(ins.kind, OutputKind::kAffected);
  EXPECT_EQ(ins.count, 1u);
  auto count = *ExecuteSql(&store_, "SELECT COUNT(*) FROM R");
  EXPECT_EQ(count.count, 2001u);
  auto rows = *ExecuteSql(&store_, "SELECT * FROM R WHERE c0 >= 5000");
  ASSERT_EQ(rows.rows->num_rows(), 1u);
  EXPECT_EQ(rows.rows->GetRow(0)[0].AsInt64(), 5001);
  EXPECT_EQ(rows.rows->GetRow(0)[1].AsInt64(), 5002);
}

TEST_F(SqlExecutorTest, DeleteRoundTrip) {
  auto del =
      *ExecuteSql(&store_, "DELETE FROM R WHERE c0 BETWEEN 1 AND 100");
  EXPECT_EQ(del.kind, OutputKind::kAffected);
  EXPECT_EQ(del.count, 100u);
  EXPECT_EQ(ExecuteSql(&store_, "SELECT COUNT(*) FROM R")->count, 1900u);
  EXPECT_EQ(
      ExecuteSql(&store_, "SELECT COUNT(*) FROM R WHERE c0 <= 100")->count,
      0u);
  // Deleting the same band again touches nothing.
  EXPECT_EQ(
      ExecuteSql(&store_, "DELETE FROM R WHERE c0 BETWEEN 1 AND 100")->count,
      0u);
  // SELECT * must not materialize ghosts.
  auto rows = *ExecuteSql(&store_, "SELECT * FROM R WHERE c0 <= 110");
  EXPECT_EQ(rows.rows->num_rows(), 10u);
}

TEST_F(SqlExecutorTest, UpdateRoundTrip) {
  auto upd = *ExecuteSql(&store_, "UPDATE R SET c1 = 9999 WHERE c0 <= 50");
  EXPECT_EQ(upd.kind, OutputKind::kAffected);
  EXPECT_EQ(upd.count, 50u);
  EXPECT_EQ(
      ExecuteSql(&store_, "SELECT COUNT(*) FROM R WHERE c1 = 9999")->count,
      50u);
  // The updated rows keep their other column: c0 still selects them.
  EXPECT_EQ(ExecuteSql(&store_,
                       "SELECT COUNT(*) FROM R WHERE c0 <= 50 AND c1 = 9999")
                ->count,
            50u);
  // Aggregates see the new values.
  auto max = *ExecuteSql(&store_, "SELECT MAX(c1) FROM R");
  EXPECT_EQ(max.groups[0].value, 9999);
}

TEST_F(SqlExecutorTest, MixedDmlSequenceStaysConsistent) {
  ASSERT_TRUE(ExecuteSql(&store_, "INSERT INTO R VALUES (3000, 3000)").ok());
  ASSERT_TRUE(ExecuteSql(&store_, "INSERT INTO R VALUES (3001, 3001)").ok());
  ASSERT_TRUE(
      ExecuteSql(&store_, "DELETE FROM R WHERE c0 = 3000").ok());
  ASSERT_TRUE(
      ExecuteSql(&store_, "UPDATE R SET c0 = 4000 WHERE c0 = 3001").ok());
  EXPECT_EQ(
      ExecuteSql(&store_, "SELECT COUNT(*) FROM R WHERE c0 >= 3000")->count,
      1u);
  auto rows = *ExecuteSql(&store_, "SELECT c1 FROM R WHERE c0 = 4000");
  ASSERT_EQ(rows.rows->num_rows(), 1u);
  EXPECT_EQ(rows.rows->GetRow(0)[0].AsInt64(), 3001);
  // The DML WHERE clauses cracked the column like any SELECT would.
  EXPECT_GT(*store_.NumPieces("R", "c0"), 1u);
}

TEST_F(SqlExecutorTest, DmlExecutionErrors) {
  EXPECT_TRUE(ExecuteSql(&store_, "INSERT INTO missing VALUES (1)")
                  .status()
                  .IsNotFound());
  // Arity mismatch: R has two columns.
  EXPECT_FALSE(ExecuteSql(&store_, "INSERT INTO R VALUES (1)").ok());
  EXPECT_TRUE(ExecuteSql(&store_, "DELETE FROM missing").status().IsNotFound());
  EXPECT_TRUE(ExecuteSql(&store_, "UPDATE R SET zz = 5 WHERE c0 < 5")
                  .status()
                  .IsNotFound());
}

TEST_F(SqlExecutorTest, FormatOutputRendersAffectedRows) {
  auto out = *ExecuteSql(&store_, "DELETE FROM R WHERE c0 <= 3");
  EXPECT_NE(FormatOutput(out).find("3 row(s) affected"), std::string::npos);
}

TEST_F(SqlExecutorTest, FormatOutputRendersAllKinds) {
  auto count = *ExecuteSql(&store_, "SELECT COUNT(*) FROM R");
  EXPECT_NE(FormatOutput(count).find("count: 2000"), std::string::npos);
  auto rows = *ExecuteSql(&store_, "SELECT * FROM R WHERE c0 <= 3");
  std::string rendered = FormatOutput(rows, 2);
  EXPECT_NE(rendered.find("(c0:int64, c1:int64)"), std::string::npos);
  EXPECT_NE(rendered.find("... (3 rows)"), std::string::npos);
  auto agg = *ExecuteSql(&store_, "SELECT MIN(c0) FROM R");
  EXPECT_NE(FormatOutput(agg).find("min(c0)"), std::string::npos);
}

}  // namespace
}  // namespace sql
}  // namespace crackstore
