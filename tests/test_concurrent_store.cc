// Copyright 2026 The CrackStore Authors
//
// Concurrency suite for the latch-protocol AdaptiveStore (and the
// primitives underneath it): the RangeLockTable, the TaskPool, a serialized
// parity sweep across every strategy × crack-policy × delta-merge-policy
// combination (the concurrent code paths must answer exactly like the
// model oracle), and free-running reader/writer races whose final state is
// checked against a replayed oracle. The free-running sections are the
// ThreadSanitizer targets: any latch-protocol hole shows up as a data race
// there long before it corrupts an answer.

// Randomized sections print their seed on failure; rerun a reported seed
// with CRACKSTORE_TEST_SEED=<seed>.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/adaptive_store.h"
#include "core/latch.h"
#include "core/task_pool.h"
#include "engine/colstore_engine.h"
#include "storage/relation.h"
#include "util/rng.h"
#include "workload/tapestry.h"

namespace crackstore {
namespace {

uint64_t TestSeed(uint64_t fallback) {
  const char* env = std::getenv("CRACKSTORE_TEST_SEED");
  if (env != nullptr && *env != '\0') return std::strtoull(env, nullptr, 10);
  return fallback;
}

// ---------------------------------------------------------------------------
// RangeLockTable.
// ---------------------------------------------------------------------------

TEST(RangeLockTable, SharedHoldersOverlap) {
  RangeLockTable table;
  table.Acquire(0, 10, /*exclusive=*/false);
  table.Acquire(5, 15, /*exclusive=*/false);  // overlapping shared: no block
  EXPECT_EQ(table.holders(), 2u);
  table.Release(0, 10, false);
  table.Release(5, 15, false);
  EXPECT_EQ(table.holders(), 0u);
}

TEST(RangeLockTable, DisjointExclusivesOverlap) {
  RangeLockTable table;
  table.Acquire(0, 10, /*exclusive=*/true);
  table.Acquire(10, 20, /*exclusive=*/true);  // disjoint: no block
  EXPECT_EQ(table.holders(), 2u);
  table.Release(0, 10, true);
  table.Release(10, 20, true);
}

TEST(RangeLockTable, ExclusiveBlocksOverlapUntilReleased) {
  RangeLockTable table;
  table.Acquire(0, 10, /*exclusive=*/true);
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    table.Acquire(5, 15, /*exclusive=*/false);
    acquired.store(true, std::memory_order_release);
    table.Release(5, 15, false);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(acquired.load(std::memory_order_acquire));
  table.Release(0, 10, true);
  waiter.join();
  EXPECT_TRUE(acquired.load(std::memory_order_acquire));
}

TEST(RangeLockTable, EmptyRangeIsNoOp) {
  RangeLockTable table;
  table.Acquire(7, 7, /*exclusive=*/true);  // must not register or block
  EXPECT_EQ(table.holders(), 0u);
  RangeLockGuard guard(&table, 3, 3, /*exclusive=*/true);
  EXPECT_EQ(table.holders(), 0u);
}

// ---------------------------------------------------------------------------
// TaskPool.
// ---------------------------------------------------------------------------

TEST(TaskPool, RunsEveryTask) {
  TaskPool pool(4);
  std::atomic<int> sum{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 64; ++i) {
    tasks.emplace_back([&sum, i] { sum.fetch_add(i); });
  }
  pool.RunBatch(std::move(tasks));
  EXPECT_EQ(sum.load(), 64 * 63 / 2);
}

TEST(TaskPool, InlineWithZeroThreads) {
  TaskPool pool(0);
  int sum = 0;  // no atomics needed: inline execution
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 8; ++i) tasks.emplace_back([&sum] { ++sum; });
  pool.RunBatch(std::move(tasks));
  EXPECT_EQ(sum, 8);
}

TEST(TaskPool, NestedBatchesDoNotDeadlock) {
  TaskPool pool(2);  // fewer workers than outer tasks: submitters must help
  std::atomic<int> sum{0};
  std::vector<std::function<void()>> outer;
  for (int i = 0; i < 8; ++i) {
    outer.emplace_back([&pool, &sum] {
      std::vector<std::function<void()>> inner;
      for (int j = 0; j < 4; ++j) inner.emplace_back([&sum] { ++sum; });
      pool.RunBatch(std::move(inner));
    });
  }
  pool.RunBatch(std::move(outer));
  EXPECT_EQ(sum.load(), 32);
}

// ---------------------------------------------------------------------------
// Store fixtures.
// ---------------------------------------------------------------------------

struct StoreConfig {
  AccessStrategy strategy;
  CrackPolicy policy;
  DeltaMergePolicy merge;
};

std::string ConfigName(const StoreConfig& config) {
  return std::string(AccessStrategyName(config.strategy)) + "/" +
         CrackPolicyName(config.policy) + "/" +
         DeltaMergePolicyName(config.merge);
}

std::vector<StoreConfig> AllConfigs() {
  std::vector<StoreConfig> configs;
  for (AccessStrategy strategy :
       {AccessStrategy::kScan, AccessStrategy::kCrack,
        AccessStrategy::kSort}) {
    for (DeltaMergePolicy merge :
         {DeltaMergePolicy::kImmediate, DeltaMergePolicy::kThreshold,
          DeltaMergePolicy::kRippleOnSelect}) {
      std::vector<CrackPolicy> policies{CrackPolicy::kStandard};
      if (strategy == AccessStrategy::kCrack) {
        policies = {CrackPolicy::kStandard, CrackPolicy::kStochastic,
                    CrackPolicy::kCoarse};
      }
      for (CrackPolicy policy : policies) {
        configs.push_back({strategy, policy, merge});
      }
    }
  }
  return configs;
}

std::unique_ptr<AdaptiveStore> MakeConcurrentStore(const StoreConfig& config) {
  AdaptiveStoreOptions opts;
  opts.strategy = config.strategy;
  opts.policy.policy = config.policy;
  opts.policy.min_piece_size = 32;
  opts.delta_merge.policy = config.merge;
  opts.delta_merge.threshold_fraction = 0.05;
  opts.concurrent = true;
  return std::make_unique<AdaptiveStore>(opts);
}

/// Two-column (c0, c1) int64 table; c0 values come from `values`.
std::shared_ptr<Relation> MakeTable(const std::string& name,
                                    const std::vector<int64_t>& values) {
  auto rel = *Relation::Create(
      name, Schema({{"c0", ValueType::kInt64}, {"c1", ValueType::kInt64}}));
  for (size_t i = 0; i < values.size(); ++i) {
    Status st = rel->AppendRow(
        {Value(values[i]), Value(static_cast<int64_t>(i))});
    CRACK_CHECK(st.ok());
  }
  return rel;
}

/// Oracle of live rows: oid -> c0 value.
using Model = std::map<Oid, int64_t>;

std::vector<Oid> ModelOids(const Model& model, int64_t lo, int64_t hi) {
  std::vector<Oid> oids;
  for (const auto& [oid, value] : model) {
    if (value >= lo && value <= hi) oids.push_back(oid);
  }
  return oids;  // std::map iterates ascending
}

// ---------------------------------------------------------------------------
// Serialized parity: many threads, one op at a time, exact answers. This
// drives every concurrent-mode code path (latches, shared selects, the
// maintenance hook) through the full configuration sweep while keeping the
// oracle comparable after every read.
// ---------------------------------------------------------------------------

TEST(ConcurrentStore, SerializedParityAcrossConfigSweep) {
  const uint64_t base_seed = TestSeed(20260728);
  const int64_t domain = 1200;
  const size_t n0 = 500;
  size_t config_index = 0;
  for (const StoreConfig& config : AllConfigs()) {
    uint64_t seed = base_seed + 13 * config_index++;
    SCOPED_TRACE("config=" + ConfigName(config) +
                 " seed=" + std::to_string(seed) +
                 " (rerun with CRACKSTORE_TEST_SEED)");
    Pcg32 init_rng(seed);
    std::vector<int64_t> initial(n0);
    for (auto& v : initial) v = init_rng.NextInRange(1, domain);
    auto store = MakeConcurrentStore(config);
    ASSERT_TRUE(store->AddTable(MakeTable("t", initial)).ok());
    Model model;
    for (size_t i = 0; i < n0; ++i) model[i] = initial[i];

    std::mutex oracle_mu;  // serializes store-op + oracle + check
    const size_t kThreads = 4;
    const size_t kOpsPerThread = 90;
    std::vector<std::thread> threads;
    std::atomic<bool> failed{false};
    for (size_t k = 0; k < kThreads; ++k) {
      threads.emplace_back([&, k] {
        Pcg32 rng(seed + 1000 * (k + 1));
        for (size_t op = 0; op < kOpsPerThread && !failed; ++op) {
          std::lock_guard<std::mutex> lock(oracle_mu);
          int dice = static_cast<int>(rng.NextBounded(100));
          if (dice < 50) {  // range select, exact parity
            int64_t lo = rng.NextInRange(-20, domain + 20);
            int64_t hi = lo + rng.NextInRange(0, domain / 3);
            auto r = store->SelectRange("t", "c0",
                                        RangeBounds::Closed(lo, hi),
                                        Delivery::kView);
            if (!r.ok()) {
              ADD_FAILURE() << "select: " << r.status().ToString();
              failed = true;
              return;
            }
            std::vector<Oid> got = std::move(*r).CollectOids();
            std::vector<Oid> want = ModelOids(model, lo, hi);
            if (got != want) {
              ADD_FAILURE() << "parity: got " << got.size() << " want "
                            << want.size() << " in [" << lo << "," << hi
                            << "]";
              failed = true;
              return;
            }
          } else if (dice < 70) {  // insert
            int64_t v = rng.NextInRange(1, domain);
            auto r = store->Insert("t", {Value(v), Value(int64_t{0})});
            if (!r.ok() || r->inserted_oid == kInvalidOid) {
              ADD_FAILURE() << "insert: " << r.status().ToString();
              failed = true;
              return;
            }
            model[r->inserted_oid] = v;
          } else if (dice < 85) {  // delete a random live row
            if (model.empty()) continue;
            auto it = model.begin();
            std::advance(it, rng.NextBounded(
                                 static_cast<uint32_t>(model.size())));
            auto r = store->DeleteOids("t", {it->first});
            if (!r.ok() || r->count != 1) {
              ADD_FAILURE() << "delete: " << r.status().ToString();
              failed = true;
              return;
            }
            model.erase(it);
          } else {  // value-predicate update of c0
            int64_t from = rng.NextInRange(1, domain);
            int64_t to = rng.NextInRange(1, domain);
            auto r = store->Update(
                "t", {{"c0", Value(to)}},
                {{"c0", TypedRange(RangeBounds::Equal(from))}});
            if (!r.ok()) {
              ADD_FAILURE() << "update: " << r.status().ToString();
              failed = true;
              return;
            }
            uint64_t touched = 0;
            for (auto& [oid, value] : model) {
              if (value == from) {
                value = to;
                ++touched;
              }
            }
            if (r->count != touched) {
              ADD_FAILURE() << "update count " << r->count << " want "
                            << touched;
              failed = true;
              return;
            }
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    if (failed) return;

    auto live = store->LiveRowCount("t");
    ASSERT_TRUE(live.ok());
    EXPECT_EQ(*live, model.size());
  }
}

// ---------------------------------------------------------------------------
// Free-running readers and writers (the TSan target). Writers own disjoint
// value stripes and oid sets, so a per-writer op log replays into an exact
// final oracle regardless of cross-thread interleaving; readers assert
// structural invariants while the store churns.
// ---------------------------------------------------------------------------

struct WriterOp {
  enum Kind { kInsert, kDelete, kUpdate } kind;
  Oid oid = 0;       // kInsert (assigned) / kDelete
  int64_t from = 0;  // kUpdate: WHERE c0 = from
  int64_t to = 0;    // kInsert value / kUpdate SET value
};

void RunReaderWriterRace(const StoreConfig& config, uint64_t seed) {
  SCOPED_TRACE("config=" + ConfigName(config) +
               " seed=" + std::to_string(seed) +
               " (rerun with CRACKSTORE_TEST_SEED)");
  const int64_t domain = 2000;
  const size_t n0 = 600;
  const size_t kWriters = 2;
  const size_t kReaders = 2;
  const size_t kWriterOps = 140;

  // Writer w owns value stripe [w*domain/W + 1, (w+1)*domain/W] and the
  // initial rows whose index % W == w (their values drawn from w's stripe).
  auto stripe_lo = [&](size_t w) {
    return static_cast<int64_t>(w) * domain / kWriters + 1;
  };
  auto stripe_hi = [&](size_t w) {
    return static_cast<int64_t>(w + 1) * domain / kWriters;
  };
  Pcg32 init_rng(seed);
  std::vector<int64_t> initial(n0);
  for (size_t i = 0; i < n0; ++i) {
    size_t w = i % kWriters;
    initial[i] = init_rng.NextInRange(stripe_lo(w), stripe_hi(w));
  }
  auto store = MakeConcurrentStore(config);
  ASSERT_TRUE(store->AddTable(MakeTable("t", initial)).ok());

  std::vector<std::vector<WriterOp>> logs(kWriters);
  std::atomic<bool> writers_done{false};
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;

  for (size_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      Pcg32 rng(seed + 31 * (w + 1));
      std::vector<std::pair<Oid, int64_t>> live;  // my live rows (oid, c0)
      for (size_t i = w; i < n0; i += kWriters) {
        live.emplace_back(i, initial[i]);
      }
      for (size_t op = 0; op < kWriterOps && !failed; ++op) {
        int dice = static_cast<int>(rng.NextBounded(100));
        if (dice < 40 || live.empty()) {  // insert into my stripe
          int64_t v = rng.NextInRange(stripe_lo(w), stripe_hi(w));
          auto r = store->Insert("t", {Value(v), Value(int64_t{7})});
          if (!r.ok() || r->inserted_oid == kInvalidOid) {
            ADD_FAILURE() << "insert: " << r.status().ToString();
            failed = true;
            return;
          }
          Oid oid = r->inserted_oid;
          live.emplace_back(oid, v);
          logs[w].push_back({WriterOp::kInsert, oid, 0, v});
        } else if (dice < 70) {  // delete one of my rows
          size_t pick = rng.NextBounded(static_cast<uint32_t>(live.size()));
          Oid oid = live[pick].first;
          auto r = store->DeleteOids("t", {oid});
          if (!r.ok() || r->count != 1) {
            ADD_FAILURE() << "delete oid " << oid << ": "
                          << r.status().ToString();
            failed = true;
            return;
          }
          live.erase(live.begin() + pick);
          logs[w].push_back({WriterOp::kDelete, oid, 0, 0});
        } else {  // value-predicate update within my stripe
          size_t pick = rng.NextBounded(static_cast<uint32_t>(live.size()));
          int64_t from = live[pick].second;
          int64_t to = rng.NextInRange(stripe_lo(w), stripe_hi(w));
          auto r = store->Update(
              "t", {{"c0", Value(to)}},
              {{"c0", TypedRange(RangeBounds::Equal(from))}});
          if (!r.ok()) {
            ADD_FAILURE() << "update: " << r.status().ToString();
            failed = true;
            return;
          }
          for (auto& row : live) {
            if (row.second == from) row.second = to;
          }
          logs[w].push_back({WriterOp::kUpdate, 0, from, to});
        }
      }
    });
  }
  for (size_t r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      Pcg32 rng(seed + 7777 * (r + 1));
      // Bounded: enough to overlap the writers' whole run, but readers must
      // not spin the clock out once the writers are done.
      for (int q = 0; q < 200 && !failed; ++q) {
        if (writers_done.load(std::memory_order_acquire) && q >= 40) break;
        int64_t lo = rng.NextInRange(1, domain);
        int64_t hi = lo + rng.NextInRange(0, domain / 4);
        bool view = rng.NextBounded(2) == 0;
        auto qr = store->SelectRange("t", "c0", RangeBounds::Closed(lo, hi),
                                     view ? Delivery::kView
                                          : Delivery::kCount);
        if (!qr.ok()) {
          ADD_FAILURE() << "reader: " << qr.status().ToString();
          failed = true;
          return;
        }
        if (view) {
          // Structural invariants: sorted, unique, count-consistent.
          std::vector<Oid> oids = std::move(*qr).CollectOids();
          for (size_t i = 1; i < oids.size(); ++i) {
            if (oids[i - 1] >= oids[i]) {
              ADD_FAILURE() << "oids not strictly ascending";
              failed = true;
              return;
            }
          }
        }
        if (q % 8 == 0) {
          // Values never leave [1, domain]: the band above it stays empty.
          auto empty = store->SelectRange("t", "c0",
                                          RangeBounds::AtLeast(domain + 100),
                                          Delivery::kCount);
          if (!empty.ok() || empty->count != 0) {
            ADD_FAILURE() << "phantom rows beyond the domain";
            failed = true;
            return;
          }
        }
      }
    });
  }
  // Writers are the first kWriters threads.
  for (size_t w = 0; w < kWriters; ++w) threads[w].join();
  writers_done.store(true, std::memory_order_release);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();
  if (failed) return;

  // Replay the per-writer logs into the oracle. Stripes are disjoint, so
  // cross-writer order is irrelevant; per-writer order is the log order.
  Model model;
  for (size_t i = 0; i < n0; ++i) model[i] = initial[i];
  for (size_t w = 0; w < kWriters; ++w) {
    for (const WriterOp& op : logs[w]) {
      switch (op.kind) {
        case WriterOp::kInsert:
          model[op.oid] = op.to;
          break;
        case WriterOp::kDelete:
          model.erase(op.oid);
          break;
        case WriterOp::kUpdate:
          for (auto& [oid, value] : model) {
            // Only w's rows can hold a value inside w's stripe.
            if (value == op.from) value = op.to;
          }
          break;
      }
    }
  }

  auto live = store->LiveRowCount("t");
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(*live, model.size());
  auto full = store->SelectRange("t", "c0", RangeBounds::Closed(1, domain),
                                 Delivery::kView);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(std::move(*full).CollectOids(), ModelOids(model, 1, domain));
  Pcg32 check_rng(seed + 5);
  for (int i = 0; i < 16; ++i) {
    int64_t lo = check_rng.NextInRange(1, domain);
    int64_t hi = lo + check_rng.NextInRange(0, domain / 3);
    auto qr = store->SelectRange("t", "c0", RangeBounds::Closed(lo, hi),
                                 Delivery::kView);
    ASSERT_TRUE(qr.ok());
    EXPECT_EQ(std::move(*qr).CollectOids(), ModelOids(model, lo, hi))
        << "final range [" << lo << "," << hi << "]";
  }
}

TEST(ConcurrentStore, ReadersAndWritersRace) {
  const uint64_t base_seed = TestSeed(4242);
  const std::vector<StoreConfig> configs = {
      {AccessStrategy::kCrack, CrackPolicy::kStandard,
       DeltaMergePolicy::kThreshold},
      {AccessStrategy::kCrack, CrackPolicy::kStandard,
       DeltaMergePolicy::kRippleOnSelect},
      {AccessStrategy::kCrack, CrackPolicy::kStandard,
       DeltaMergePolicy::kImmediate},
      {AccessStrategy::kCrack, CrackPolicy::kStochastic,
       DeltaMergePolicy::kThreshold},
      {AccessStrategy::kCrack, CrackPolicy::kCoarse,
       DeltaMergePolicy::kImmediate},
      {AccessStrategy::kSort, CrackPolicy::kStandard,
       DeltaMergePolicy::kThreshold},
      {AccessStrategy::kSort, CrackPolicy::kStandard,
       DeltaMergePolicy::kRippleOnSelect},
      {AccessStrategy::kScan, CrackPolicy::kStandard,
       DeltaMergePolicy::kImmediate},
  };
  size_t i = 0;
  for (const StoreConfig& config : configs) {
    RunReaderWriterRace(config, base_seed + 97 * i++);
  }
}

// ---------------------------------------------------------------------------
// Steered policies (stochastic / coarse) ride the shared-latch path: the
// access path must advertise shared reads, and racing readers must answer
// exactly like a serial store over the same data.
// ---------------------------------------------------------------------------

TEST(ConcurrentStore, SteeredPoliciesRideSharedPath) {
  const uint64_t seed = TestSeed(515151);
  SCOPED_TRACE("seed=" + std::to_string(seed));
  TaskPool::SetGlobalThreads(4);
  for (CrackPolicy policy : {CrackPolicy::kStochastic, CrackPolicy::kCoarse}) {
    SCOPED_TRACE(CrackPolicyName(policy));
    TapestryOptions topts;
    topts.num_rows = 3000;
    topts.seed = seed;

    AdaptiveStoreOptions sopts;
    sopts.strategy = AccessStrategy::kCrack;
    sopts.policy.policy = policy;
    sopts.policy.min_piece_size = 64;
    AdaptiveStore serial(sopts);
    ASSERT_TRUE(serial.AddTable(*BuildTapestry("R", topts)).ok());

    AdaptiveStoreOptions copts = sopts;
    copts.concurrent = true;
    AdaptiveStore concurrent(copts);
    ASSERT_TRUE(concurrent.AddTable(*BuildTapestry("R", topts)).ok());

    // Warm the accelerator, then check the policy no longer forces the
    // exclusive latch.
    ASSERT_TRUE(
        concurrent.SelectRange("R", "c0", RangeBounds::Closed(1, 10)).ok());
    auto path = concurrent.AccessPathFor("R", "c0");
    ASSERT_TRUE(path.ok());
    EXPECT_EQ((*path)->concurrency(), PathConcurrency::kSharedReads);

    // Fixed query set with a serial oracle; issued from racing readers.
    const int64_t n = static_cast<int64_t>(topts.num_rows);
    struct Query {
      int64_t lo = 0;
      int64_t hi = 0;
      uint64_t want = 0;
    };
    Pcg32 rng(seed + 7);
    std::vector<Query> queries;
    for (int i = 0; i < 32; ++i) {
      Query q;
      q.lo = rng.NextInRange(1, n);
      q.hi = q.lo + rng.NextInRange(0, n / 3);
      auto want = serial.SelectRange("R", "c0", RangeBounds::Closed(q.lo, q.hi));
      ASSERT_TRUE(want.ok());
      q.want = want->count;
      queries.push_back(q);
    }
    std::vector<std::thread> threads;
    for (size_t k = 0; k < 4; ++k) {
      threads.emplace_back([&, k] {
        for (size_t i = k; i < queries.size(); i += 4) {
          auto got = concurrent.SelectRange(
              "R", "c0", RangeBounds::Closed(queries[i].lo, queries[i].hi));
          if (!got.ok() || got->count != queries[i].want) {
            ADD_FAILURE() << CrackPolicyName(policy) << " query " << i
                          << ": got " << (got.ok() ? got->count : 0)
                          << " want " << queries[i].want;
            return;
          }
        }
      });
    }
    for (auto& t : threads) t.join();

    // The policy must have steered: stochastic shrinks big pieces with
    // auxiliary pivots, coarse leaves bound-straddling pieces whole.
    auto pieces = concurrent.NumPieces("R", "c0");
    ASSERT_TRUE(pieces.ok());
    EXPECT_GT(*pieces, 1u);
  }
  TaskPool::SetGlobalThreads(0);
}

// ---------------------------------------------------------------------------
// Conjunctions fan their legs over the task pool; answers must match a
// serial store fed the same queries.
// ---------------------------------------------------------------------------

TEST(ConcurrentStore, ParallelConjunctionMatchesSerial) {
  const uint64_t seed = TestSeed(918273);
  SCOPED_TRACE("seed=" + std::to_string(seed));
  TaskPool::SetGlobalThreads(4);
  TapestryOptions topts;
  topts.num_rows = 4000;
  topts.num_columns = 3;
  topts.seed = seed;

  AdaptiveStoreOptions serial_opts;
  AdaptiveStore serial(serial_opts);
  ASSERT_TRUE(serial.AddTable(*BuildTapestry("R", topts)).ok());

  AdaptiveStoreOptions conc_opts;
  conc_opts.concurrent = true;
  AdaptiveStore concurrent(conc_opts);
  ASSERT_TRUE(concurrent.AddTable(*BuildTapestry("R", topts)).ok());

  // Fixed query set, issued from several threads against the concurrent
  // store; counts must match the serial store's answers exactly.
  const int64_t n = static_cast<int64_t>(topts.num_rows);
  struct Query {
    std::vector<AdaptiveStore::ColumnRange> conjuncts;
    uint64_t want = 0;
  };
  std::vector<Query> queries;
  Pcg32 rng(seed + 1);
  for (int i = 0; i < 24; ++i) {
    Query q;
    for (int c = 0; c < 3; ++c) {
      int64_t lo = rng.NextInRange(1, n);
      int64_t hi = lo + rng.NextInRange(0, n / 2);
      q.conjuncts.push_back(
          {"c" + std::to_string(c), TypedRange(RangeBounds::Closed(lo, hi))});
    }
    auto want = serial.SelectConjunction("R", q.conjuncts, Delivery::kCount);
    ASSERT_TRUE(want.ok());
    q.want = want->count;
    queries.push_back(std::move(q));
  }

  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (size_t k = 0; k < 4; ++k) {
    threads.emplace_back([&, k] {
      for (size_t i = k; i < queries.size(); i += 4) {
        auto got = concurrent.SelectConjunction("R", queries[i].conjuncts,
                                                Delivery::kCount);
        if (!got.ok() || got->count != queries[i].want) {
          ADD_FAILURE() << "conjunction " << i << ": got "
                        << (got.ok() ? got->count : 0) << " want "
                        << queries[i].want;
          failed = true;
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  TaskPool::SetGlobalThreads(0);
  (void)failed;
}

// ---------------------------------------------------------------------------
// The engine's batched count-selects fan legs over the task pool; answers
// must match the one-at-a-time API.
// ---------------------------------------------------------------------------

TEST(ColumnEngineBatch, MatchesSequentialCounts) {
  const uint64_t seed = TestSeed(66601);
  SCOPED_TRACE("seed=" + std::to_string(seed));
  TapestryOptions topts;
  topts.num_rows = 2000;
  topts.num_columns = 3;
  topts.seed = seed;

  ColumnEngineOptions opts;
  opts.strategy = AccessStrategy::kCrack;
  ColumnEngine engine(opts);
  ASSERT_TRUE(engine.AddTable(*BuildTapestry("R", topts)).ok());

  const int64_t n = static_cast<int64_t>(topts.num_rows);
  Pcg32 rng(seed + 3);
  std::vector<ColumnEngine::SelectSpec> specs;
  for (int i = 0; i < 18; ++i) {
    int64_t lo = rng.NextInRange(1, n);
    int64_t hi = lo + rng.NextInRange(0, n / 2);
    specs.push_back({"R", "c" + std::to_string(i % 3),
                     TypedRange(RangeBounds::Closed(lo, hi))});
  }
  // Expected counts from a second engine driven one select at a time.
  ColumnEngine oracle(opts);
  ASSERT_TRUE(oracle.AddTable(*BuildTapestry("R", topts)).ok());
  std::vector<uint64_t> want;
  for (const auto& spec : specs) {
    auto r = oracle.RunSelect(spec.table, spec.column, spec.range,
                              DeliveryMode::kCount);
    ASSERT_TRUE(r.ok());
    want.push_back(r->count);
  }

  TaskPool::SetGlobalThreads(4);
  auto got = engine.RunSelectCountBatch(specs);
  TaskPool::SetGlobalThreads(0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, want);
}

// ---------------------------------------------------------------------------
// The stale-window fix: an UPDATE whose victim set was computed before a
// concurrent DELETE landed must skip the dead rows, not abort half-applied.
// ---------------------------------------------------------------------------

TEST(ConcurrentStore, UpdateSkipsRowsDeletedMidStatement) {
  const uint64_t seed = TestSeed(55501);
  SCOPED_TRACE("seed=" + std::to_string(seed));
  const int64_t domain = 1000;
  const size_t n0 = 800;
  Pcg32 init_rng(seed);
  std::vector<int64_t> initial(n0);
  for (auto& v : initial) v = init_rng.NextInRange(1, domain);
  auto store = MakeConcurrentStore({AccessStrategy::kCrack,
                                    CrackPolicy::kStandard,
                                    DeltaMergePolicy::kThreshold});
  ASSERT_TRUE(store->AddTable(MakeTable("t", initial)).ok());

  std::atomic<bool> failed{false};
  std::atomic<bool> done{false};
  std::thread updater([&] {
    Pcg32 rng(seed + 1);
    for (int i = 0; i < 60 && !failed; ++i) {
      // Wide WHERE: the victim set routinely overlaps the deleter's picks.
      auto r = store->Update("t", {{"c1", Value(static_cast<int64_t>(i))}},
                             {{"c0", TypedRange(RangeBounds::Closed(
                                         1, domain / 2))}});
      if (!r.ok()) {
        ADD_FAILURE() << "update must not abort: " << r.status().ToString();
        failed = true;
      }
    }
    done = true;
  });
  std::thread deleter([&] {
    Pcg32 rng(seed + 2);
    while (!done.load(std::memory_order_acquire) && !failed) {
      Oid oid = rng.NextBounded(static_cast<uint32_t>(n0));
      (void)store->DeleteOids("t", {oid});  // AlreadyExists duplicates fine
    }
  });
  updater.join();
  deleter.join();
  ASSERT_FALSE(failed);

  // The store stays internally consistent: live count equals a full select.
  auto live = store->LiveRowCount("t");
  ASSERT_TRUE(live.ok());
  auto full = store->SelectRange("t", "c0", RangeBounds::Closed(1, domain),
                                 Delivery::kCount);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->count, *live);
}

// ---------------------------------------------------------------------------
// Duplicate SET clauses on one column are legal (last one wins); the
// concurrent write path must lock that column's latch once, not deadlock
// trying to acquire it twice. Regression for the distinct-latch-set fix.
// ---------------------------------------------------------------------------

TEST(ConcurrentStore, DuplicateSetColumnsDoNotSelfDeadlock) {
  // Stochastic policy: the path is kExclusiveOnly, so a duplicate column
  // would have meant two unique_lock acquisitions of one shared_mutex.
  auto store = MakeConcurrentStore({AccessStrategy::kCrack,
                                    CrackPolicy::kStochastic,
                                    DeltaMergePolicy::kImmediate});
  ASSERT_TRUE(store->AddTable(MakeTable("t", {5, 10, 15, 20})).ok());
  // Touch the column so the path exists before the update.
  ASSERT_TRUE(store
                  ->SelectRange("t", "c0", RangeBounds::Closed(1, 100),
                                Delivery::kCount)
                  .ok());
  auto r = store->Update("t", {{"c0", Value(int64_t{7})},
                               {"c0", Value(int64_t{9})}},
                         {{"c0", TypedRange(RangeBounds::Equal(10))}});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->count, 1u);
  // Last assignment wins, matching the serial path's semantics.
  auto nine = store->SelectRange("t", "c0", RangeBounds::Equal(9),
                                 Delivery::kCount);
  ASSERT_TRUE(nine.ok());
  EXPECT_EQ(nine->count, 1u);
}

// ---------------------------------------------------------------------------
// String columns run exclusive-only; contention must still be safe and the
// single-writer history exact.
// ---------------------------------------------------------------------------

TEST(ConcurrentStore, StringColumnUnderContention) {
  const uint64_t seed = TestSeed(31337);
  SCOPED_TRACE("seed=" + std::to_string(seed));
  auto rel = *Relation::Create(
      "p", Schema({{"s", ValueType::kString}, {"v", ValueType::kInt64}}));
  Pcg32 init_rng(seed);
  for (int i = 0; i < 300; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%06u", init_rng.NextBounded(64));
    ASSERT_TRUE(
        rel->AppendRow({Value(std::string(key)), Value(int64_t{1})}).ok());
  }
  auto store = MakeConcurrentStore({AccessStrategy::kCrack,
                                    CrackPolicy::kStandard,
                                    DeltaMergePolicy::kThreshold});
  ASSERT_TRUE(store->AddTable(rel).ok());

  std::atomic<bool> failed{false};
  std::atomic<bool> done{false};
  std::atomic<uint64_t> inserted{0};
  std::thread writer([&] {
    Pcg32 rng(seed + 1);
    for (int i = 0; i < 120 && !failed; ++i) {
      char key[16];
      std::snprintf(key, sizeof(key), "k%06u", rng.NextBounded(256));
      auto r = store->Insert("p", {Value(std::string(key)),
                                   Value(int64_t{2})});
      if (!r.ok()) {
        ADD_FAILURE() << "string insert: " << r.status().ToString();
        failed = true;
        return;
      }
      inserted.fetch_add(1);
    }
    done = true;
  });
  std::vector<std::thread> readers;
  for (int k = 0; k < 2; ++k) {
    readers.emplace_back([&, k] {
      Pcg32 rng(seed + 100 + k);
      while (!done.load(std::memory_order_acquire) && !failed) {
        char lo[16];
        std::snprintf(lo, sizeof(lo), "k%06u", rng.NextBounded(128));
        TypedRange range;
        range.lo = Value(std::string(lo));
        range.lo_incl = true;
        auto r = store->SelectRange("p", "s", range, Delivery::kCount);
        if (!r.ok()) {
          ADD_FAILURE() << "string select: " << r.status().ToString();
          failed = true;
          return;
        }
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  ASSERT_FALSE(failed);

  auto live = store->LiveRowCount("p");
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(*live, 300 + inserted.load());
  // Full string-range count agrees with the live count.
  TypedRange all;
  all.lo = Value(std::string(""));
  all.lo_incl = true;
  auto full = store->SelectRange("p", "s", all, Delivery::kCount);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->count, *live);
}

}  // namespace
}  // namespace crackstore
