// Copyright 2026 The CrackStore Authors
//
// Tests for the cracking policies (core/crack_policy.h): the stochastic
// policy must stay correct AND keep per-query cost converging under the
// sequential worst-case workload that defeats standard cracking (Halim et
// al. 2012), and the coarse policy must cap the piece table.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/access_path.h"
#include "core/adaptive_store.h"
#include "storage/bat.h"
#include "util/rng.h"
#include "workload/tapestry.h"

namespace crackstore {
namespace {

std::shared_ptr<Bat> PermutationColumn(size_t n, uint64_t seed) {
  std::vector<int64_t> values(n);
  for (size_t i = 0; i < n; ++i) values[i] = static_cast<int64_t>(i + 1);
  Pcg32 rng(seed);
  Shuffle(&values, &rng);
  return Bat::FromVector(values, "c");
}

TEST(CrackPolicyTest, NamesRoundTrip) {
  EXPECT_STREQ(CrackPolicyName(CrackPolicy::kStandard), "standard");
  EXPECT_STREQ(CrackPolicyName(CrackPolicy::kStochastic), "stochastic");
  EXPECT_STREQ(CrackPolicyName(CrackPolicy::kCoarse), "coarse");
  EXPECT_STREQ(CrackPolicyName(CrackPolicy::kAuto), "auto");
  EXPECT_STREQ(CrackPolicyName(CrackPolicy::kProgressive), "progressive");
  EXPECT_EQ(CrackPolicyFromString("stochastic"), CrackPolicy::kStochastic);
  EXPECT_EQ(CrackPolicyFromString("auto"), CrackPolicy::kAuto);
  EXPECT_EQ(CrackPolicyFromString("progressive"), CrackPolicy::kProgressive);
  EXPECT_EQ(CrackPolicyFromString("ddc"), CrackPolicy::kStochastic);
  EXPECT_EQ(CrackPolicyFromString("coarse"), CrackPolicy::kCoarse);
  EXPECT_EQ(CrackPolicyFromString("dd1c"), CrackPolicy::kCoarse);
  EXPECT_EQ(CrackPolicyFromString("standard"), CrackPolicy::kStandard);
  EXPECT_EQ(CrackPolicyFromString("garbage"), CrackPolicy::kStandard);
}

/// Runs a sequential (ascending bounds) workload — the pattern where
/// standard cracking keeps shaving slivers off one huge piece — and
/// returns the cumulative tuples_read.
uint64_t SequentialWorkloadCost(CrackPolicy policy, size_t n, size_t queries,
                                std::vector<uint64_t>* per_query = nullptr) {
  auto bat = PermutationColumn(n, 42);
  AccessPathConfig config;
  config.strategy = AccessStrategy::kCrack;
  config.policy.policy = policy;
  config.policy.min_piece_size = 256;
  auto path = CreateColumnAccessPath(bat, config);
  EXPECT_TRUE(path.ok());
  uint64_t total = 0;
  int64_t step = static_cast<int64_t>(n / queries);
  for (size_t q = 0; q < queries; ++q) {
    int64_t lo = static_cast<int64_t>(q) * step + 1;
    IoStats io;
    AccessSelection sel = (*path)->Select(
        RangeBounds::HalfOpen(lo, lo + step), /*want_oids=*/false, &io);
    EXPECT_EQ(sel.count, static_cast<uint64_t>(step));
    total += io.tuples_read;
    if (per_query != nullptr) per_query->push_back(io.tuples_read);
  }
  return total;
}

TEST(CrackPolicyTest, StochasticBeatsStandardOnSequentialWorkload) {
  const size_t n = 50000;
  const size_t queries = 100;
  uint64_t standard = SequentialWorkloadCost(CrackPolicy::kStandard, n,
                                             queries);
  uint64_t stochastic = SequentialWorkloadCost(CrackPolicy::kStochastic, n,
                                               queries);
  // Standard cracking degenerates to ~n reads per query here (the untouched
  // right piece shrinks by only one query-width per step); the stochastic
  // auxiliary pivots amortize the partitioning like a quicksort instead.
  EXPECT_LT(stochastic, standard / 2)
      << "standard=" << standard << " stochastic=" << stochastic;
}

TEST(CrackPolicyTest, StochasticPerQueryCostConverges) {
  const size_t n = 50000;
  const size_t queries = 100;
  std::vector<uint64_t> per_query;
  SequentialWorkloadCost(CrackPolicy::kStochastic, n, queries, &per_query);
  // The early queries pay the random partitioning; once it is amortized the
  // typical query touches only small pieces around its bounds. Individual
  // late queries can still spike (a bound may land in a piece an unlucky
  // pivot left large), so assert on the halves' averages, not per query.
  uint64_t first_half = 0;
  uint64_t second_half = 0;
  for (size_t q = 0; q < queries / 2; ++q) first_half += per_query[q];
  for (size_t q = queries / 2; q < queries; ++q) second_half += per_query[q];
  first_half /= queries / 2;
  second_half /= queries - queries / 2;
  EXPECT_LT(second_half, first_half)
      << "no convergence: first-half avg " << first_half
      << ", second-half avg " << second_half;
  EXPECT_LT(second_half, n / 10)
      << "second-half avg " << second_half << " is still scan-like";
  // Standard cracking stays scan-like on this workload throughout.
  std::vector<uint64_t> standard;
  SequentialWorkloadCost(CrackPolicy::kStandard, n, queries, &standard);
  uint64_t standard_second_half = 0;
  for (size_t q = queries / 2; q < queries; ++q) {
    standard_second_half += standard[q];
  }
  standard_second_half /= queries - queries / 2;
  EXPECT_LT(2 * second_half, standard_second_half);
}

TEST(CrackPolicyTest, StochasticConvergesThroughTheStore) {
  // End-to-end: same sequential pathology via the AdaptiveStore facade.
  TapestryOptions topts;
  topts.num_rows = 20000;
  topts.seed = 7;
  auto rel = *BuildTapestry("R", topts);

  AdaptiveStoreOptions opts;
  opts.strategy = AccessStrategy::kCrack;
  opts.policy.policy = CrackPolicy::kStochastic;
  opts.policy.min_piece_size = 256;
  opts.track_lineage = false;
  AdaptiveStore store(opts);
  ASSERT_TRUE(store.AddTable(rel).ok());

  uint64_t last = 0;
  for (int q = 0; q < 50; ++q) {
    int64_t lo = q * 400 + 1;
    auto result =
        store.SelectRange("R", "c0", RangeBounds::Closed(lo, lo + 399));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->count, 400u);
    last = result->io.tuples_read;
  }
  // The store kept cracking: many pieces, and the tail queries are cheap.
  EXPECT_GT(*store.NumPieces("R", "c0"), 50u);
  EXPECT_LT(last, 20000u / 4);
}

TEST(CrackPolicyTest, CoarseCapsPieceTable) {
  const size_t n = 20000;
  auto bat = PermutationColumn(n, 13);

  auto run = [&](CrackPolicy policy) {
    AccessPathConfig config;
    config.strategy = AccessStrategy::kCrack;
    config.policy.policy = policy;
    config.policy.min_piece_size = 512;
    auto path = CreateColumnAccessPath(bat, config);
    EXPECT_TRUE(path.ok());
    Pcg32 rng(17);
    for (int q = 0; q < 200; ++q) {
      int64_t lo = rng.NextInRange(1, static_cast<int64_t>(n) - 200);
      IoStats io;
      AccessSelection sel = (*path)->Select(RangeBounds::Closed(lo, lo + 99),
                                            /*want_oids=*/false, &io);
      EXPECT_EQ(sel.count, 100u);
    }
    return (*path)->NumPieces();
  };

  size_t standard_pieces = run(CrackPolicy::kStandard);
  size_t coarse_pieces = run(CrackPolicy::kCoarse);
  // Coarse never cracks pieces <= 512 tuples, so the piece table stays far
  // smaller than standard's (which registers ~2 cuts per query). Each crack
  // of a >512 piece can still leave sub-512 shards, hence the slack factor.
  EXPECT_LT(coarse_pieces, standard_pieces / 2)
      << "standard=" << standard_pieces << " coarse=" << coarse_pieces;
  EXPECT_LE(coarse_pieces, 4 * (n / 512) + 4);
}

TEST(CrackPolicyTest, StoreOptionsExposePolicy) {
  AdaptiveStoreOptions opts;
  opts.policy.policy = CrackPolicy::kStochastic;
  AdaptiveStore store(opts);
  EXPECT_EQ(store.options().policy.policy, CrackPolicy::kStochastic);

  TapestryOptions topts;
  topts.num_rows = 2000;
  ASSERT_TRUE(store.AddTable(*BuildTapestry("R", topts)).ok());
  ASSERT_TRUE(store.SelectRange("R", "c0", RangeBounds::Closed(1, 50)).ok());
  auto explain = store.ExplainColumn("R", "c0");
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain->find("access path: crack, policy=stochastic"),
            std::string::npos);
}

TEST(CrackPolicyTest, PoliciesAgreeThroughConjunctionsAndSql) {
  TapestryOptions topts;
  topts.num_rows = 3000;
  topts.num_columns = 2;
  topts.seed = 23;
  auto rel = *BuildTapestry("R", topts);

  uint64_t expected = 0;
  bool first = true;
  for (CrackPolicy policy : {CrackPolicy::kStandard, CrackPolicy::kStochastic,
                             CrackPolicy::kCoarse}) {
    AdaptiveStoreOptions opts;
    opts.policy.policy = policy;
    opts.policy.min_piece_size = 128;
    AdaptiveStore store(opts);
    ASSERT_TRUE(store.AddTable(rel).ok());
    auto result = store.SelectConjunction(
        "R", {{"c0", RangeBounds::Closed(100, 1500)},
              {"c1", RangeBounds::Closed(500, 2000)}},
        Delivery::kView);
    ASSERT_TRUE(result.ok());
    if (first) {
      expected = result->count;
      first = false;
    }
    EXPECT_EQ(result->count, expected) << CrackPolicyName(policy);
    EXPECT_EQ(result->scan_oids.size(), expected);
  }
}

}  // namespace
}  // namespace crackstore
