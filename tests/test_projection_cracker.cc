// Copyright 2026 The CrackStore Authors
//
// Tests for Ψ-cracking (vertical fragmentation) and its reconstruction.

#include <gtest/gtest.h>

#include "core/projection_cracker.h"

namespace crackstore {
namespace {

std::shared_ptr<Relation> MakeWideTable() {
  Schema schema({{"k", ValueType::kInt64},
                 {"a", ValueType::kInt64},
                 {"b", ValueType::kInt64},
                 {"tag", ValueType::kString}});
  auto rel = *Relation::Create("W", schema);
  for (int64_t i = 0; i < 50; ++i) {
    EXPECT_TRUE(rel->AppendRow({Value(i), Value(i * 2), Value(i * 3),
                                Value(std::string(i % 2 == 0 ? "even"
                                                             : "odd"))})
                    .ok());
  }
  return rel;
}

TEST(ProjectionCrackerTest, SplitsIntoTwoFragments) {
  auto rel = MakeWideTable();
  auto cracked = CrackProjection(rel, {"a", "b"});
  ASSERT_TRUE(cracked.ok());
  // P1: oid + projected, P2: oid + rest.
  EXPECT_EQ(cracked->projected->num_columns(), 3u);
  EXPECT_EQ(cracked->remainder->num_columns(), 3u);
  EXPECT_GE(cracked->projected->schema().FieldIndex("a"), 0);
  EXPECT_GE(cracked->projected->schema().FieldIndex("b"), 0);
  EXPECT_GE(cracked->remainder->schema().FieldIndex("k"), 0);
  EXPECT_GE(cracked->remainder->schema().FieldIndex("tag"), 0);
  EXPECT_EQ(cracked->projected->schema().FieldIndex("k"), -1);
}

TEST(ProjectionCrackerTest, BothFragmentsCarrySurrogates) {
  auto cracked = CrackProjection(MakeWideTable(), {"a"});
  ASSERT_TRUE(cracked.ok());
  EXPECT_EQ(cracked->projected->schema().column(0).name, "oid");
  EXPECT_EQ(cracked->projected->schema().column(0).type, ValueType::kOid);
  EXPECT_EQ(cracked->remainder->schema().column(0).name, "oid");
  // Surrogates are duplicate-free and aligned.
  auto oids = *cracked->projected->column("oid");
  for (size_t i = 0; i < oids->size(); ++i) {
    EXPECT_EQ(oids->Get<Oid>(i), i);
  }
}

TEST(ProjectionCrackerTest, FragmentsShareColumnStorage) {
  auto rel = MakeWideTable();
  auto cracked = CrackProjection(rel, {"a"});
  ASSERT_TRUE(cracked.ok());
  // Vertical cracking on BATs is zero-copy: same physical column objects.
  EXPECT_EQ((*cracked->projected->column("a")).get(),
            (*rel->column("a")).get());
}

TEST(ProjectionCrackerTest, ValidatesAttributeList) {
  auto rel = MakeWideTable();
  EXPECT_TRUE(CrackProjection(rel, {}).status().IsInvalidArgument());
  EXPECT_TRUE(CrackProjection(rel, {"nope"}).status().IsNotFound());
  EXPECT_TRUE(CrackProjection(rel, {"a", "a"}).status().IsInvalidArgument());
  EXPECT_TRUE(CrackProjection(rel, {"k", "a", "b", "tag"})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(CrackProjection(nullptr, {"a"}).status().IsInvalidArgument());
}

TEST(ProjectionCrackerTest, ReconstructRestoresOriginal) {
  auto rel = MakeWideTable();
  auto cracked = CrackProjection(rel, {"a", "tag"});
  ASSERT_TRUE(cracked.ok());
  auto rebuilt = ReconstructProjection(*cracked, rel->schema(), "W2");
  ASSERT_TRUE(rebuilt.ok());
  ASSERT_EQ((*rebuilt)->num_rows(), rel->num_rows());
  ASSERT_TRUE((*rebuilt)->schema() == rel->schema());
  for (size_t i = 0; i < rel->num_rows(); ++i) {
    EXPECT_EQ((*rebuilt)->GetRow(i), rel->GetRow(i)) << "row " << i;
  }
}

TEST(ProjectionCrackerTest, ReconstructHandlesReorderedRemainder) {
  auto rel = MakeWideTable();
  auto cracked = CrackProjection(rel, {"a"});
  ASSERT_TRUE(cracked.ok());

  // Simulate independent physical reorganization of the remainder fragment
  // (e.g. it was Ξ-cracked on k): reverse its rows.
  auto rem = cracked->remainder;
  auto reversed = *Relation::Create("rev", rem->schema());
  for (size_t i = rem->num_rows(); i > 0; --i) {
    ASSERT_TRUE(reversed->AppendRow(rem->GetRow(i - 1)).ok());
  }
  ProjectionCrackResult shuffled;
  shuffled.projected = cracked->projected;
  shuffled.remainder = reversed;

  auto rebuilt = ReconstructProjection(shuffled, rel->schema(), "W3");
  ASSERT_TRUE(rebuilt.ok());
  for (size_t i = 0; i < rel->num_rows(); ++i) {
    EXPECT_EQ((*rebuilt)->GetRow(i), rel->GetRow(i)) << "row " << i;
  }
}

TEST(ProjectionCrackerTest, ReconstructDetectsCorruptSurrogates) {
  auto rel = MakeWideTable();
  auto cracked = CrackProjection(rel, {"a"});
  ASSERT_TRUE(cracked.ok());
  // Break the remainder's surrogate column: duplicate oid 0.
  auto bad = *Relation::Create("bad", cracked->remainder->schema());
  for (size_t i = 0; i < cracked->remainder->num_rows(); ++i) {
    auto row = cracked->remainder->GetRow(i);
    row[0] = Value::FromOid(0);
    ASSERT_TRUE(bad->AppendRow(row).ok());
  }
  ProjectionCrackResult corrupt;
  corrupt.projected = cracked->projected;
  corrupt.remainder = bad;
  auto rebuilt = ReconstructProjection(corrupt, rel->schema(), "X");
  EXPECT_FALSE(rebuilt.ok());
}

TEST(ProjectionCrackerTest, ReconstructValidatesCardinality) {
  auto rel = MakeWideTable();
  auto cracked = CrackProjection(rel, {"a"});
  ASSERT_TRUE(cracked.ok());
  ProjectionCrackResult truncated;
  truncated.projected = cracked->projected;
  truncated.remainder = *Relation::Create("empty",
                                          cracked->remainder->schema());
  EXPECT_TRUE(ReconstructProjection(truncated, rel->schema(), "X")
                  .status()
                  .IsInvalidArgument());
}

TEST(ProjectionCrackerTest, StatsAccounting) {
  IoStats stats;
  auto cracked = CrackProjection(MakeWideTable(), {"a"}, &stats);
  ASSERT_TRUE(cracked.ok());
  EXPECT_EQ(stats.tuples_written, 100u);  // two surrogate columns of 50
  EXPECT_EQ(stats.pieces_created, 2u);
}

}  // namespace
}  // namespace crackstore
