// Copyright 2026 The CrackStore Authors
//
// Tests for the row and column engine facades: delivery-mode cost spread,
// SQL-level cracking, partitioned selects, chain joins and the plan-budget
// optimizer.

#include <gtest/gtest.h>

#include "engine/colstore_engine.h"
#include "engine/plan_optimizer.h"
#include "engine/rowstore_engine.h"
#include "workload/tapestry.h"

namespace crackstore {
namespace {

std::shared_ptr<Relation> Tapestry(const std::string& name, uint64_t n,
                                   uint64_t seed = 1) {
  TapestryOptions opts;
  opts.num_rows = n;
  opts.seed = seed;
  return *BuildTapestry(name, opts);
}

TEST(PlanOptimizerTest, SmallChainsPlanFully) {
  PlanOptimizerOptions opts;
  opts.plan_budget = 10000;
  PlanDecision d = PlanChainJoin(4, opts);
  EXPECT_EQ(d.algo, JoinAlgo::kHash);
  EXPECT_FALSE(d.budget_exhausted);
  EXPECT_GT(d.plans_considered, 0u);
}

TEST(PlanOptimizerTest, LongChainsExhaustBudget) {
  PlanOptimizerOptions opts;
  opts.plan_budget = 10000;
  PlanDecision d = PlanChainJoin(40, opts);
  EXPECT_EQ(d.algo, JoinAlgo::kNestedLoop);
  EXPECT_TRUE(d.budget_exhausted);
  EXPECT_GE(d.plans_considered, opts.plan_budget);
}

TEST(PlanOptimizerTest, EnumerationGrowsWithChainLength) {
  PlanOptimizerOptions opts;
  opts.plan_budget = 1000000;
  uint64_t prev = 0;
  for (size_t k = 2; k <= 8; ++k) {
    PlanDecision d = PlanChainJoin(k, opts);
    EXPECT_GT(d.plans_considered, prev) << "k=" << k;
    prev = d.plans_considered;
  }
}

TEST(PlanOptimizerTest, TrivialCases) {
  PlanOptimizerOptions opts;
  EXPECT_EQ(PlanChainJoin(1, opts).algo, JoinAlgo::kHash);
  EXPECT_EQ(PlanChainJoin(0, opts).algo, JoinAlgo::kHash);
}

TEST(RowEngineTest, ImportAndCount) {
  RowEngine engine;
  auto table = engine.ImportRelation(*Tapestry("R", 1000));
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->num_rows(), 1000u);
  EXPECT_TRUE(engine.ImportRelation(*Tapestry("R", 10)).status()
                  .IsAlreadyExists());
}

TEST(RowEngineTest, SelectCountCorrect) {
  RowEngine engine;
  ASSERT_TRUE(engine.ImportRelation(*Tapestry("R", 1000)).ok());
  auto run = engine.RunSelect("R", "c0", RangeBounds::Closed(1, 100),
                              DeliveryMode::kCount);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->count, 100u);
}

TEST(RowEngineTest, DeliveryModeCostSpread) {
  // The Fig. 1 anatomy: materialize must cost more than print, print more
  // than count (in deterministic I/O units).
  RowEngine engine;
  ASSERT_TRUE(engine.ImportRelation(*Tapestry("R", 5000)).ok());
  RangeBounds range = RangeBounds::Closed(1, 2500);  // 50% selectivity
  auto count = engine.RunSelect("R", "c0", range, DeliveryMode::kCount);
  auto print = engine.RunSelect("R", "c0", range, DeliveryMode::kPrint);
  auto mat = engine.RunSelect("R", "c0", range, DeliveryMode::kMaterialize);
  ASSERT_TRUE(count.ok() && print.ok() && mat.ok());
  EXPECT_EQ(count->count, print->count);
  EXPECT_EQ(count->count, mat->count);
  // Materialization writes pages + journal; count writes nothing.
  EXPECT_EQ(count->io.tuples_written, 0u);
  EXPECT_GT(mat->io.tuples_written, 0u);
  EXPECT_GT(mat->io.journal_writes, 0u);
  EXPECT_GT(print->bytes_shipped, 0u);
  EXPECT_EQ(count->bytes_shipped, 0u);
}

TEST(RowEngineTest, MaterializeRegistersResultTable) {
  RowEngine engine;
  ASSERT_TRUE(engine.ImportRelation(*Tapestry("R", 100)).ok());
  ASSERT_TRUE(engine
                  .RunSelect("R", "c0", RangeBounds::Closed(1, 10),
                             DeliveryMode::kMaterialize, "newR")
                  .ok());
  auto result = engine.catalog().GetRowTable("newR");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->num_rows(), 10u);
  // Re-running with the same result name replaces the table.
  ASSERT_TRUE(engine
                  .RunSelect("R", "c0", RangeBounds::Closed(1, 20),
                             DeliveryMode::kMaterialize, "newR")
                  .ok());
  EXPECT_EQ((*engine.catalog().GetRowTable("newR"))->num_rows(), 20u);
}

TEST(RowEngineTest, SqlLevelCrackSplitsLosslessly) {
  RowEngine engine;
  ASSERT_TRUE(engine.ImportRelation(*Tapestry("R", 1000)).ok());
  auto run = engine.CrackTableSql("R", "c0", RangeBounds::AtMost(300), "Rp");
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->count, 300u);
  auto in_frag = engine.catalog().GetRowTable("Rp_in");
  auto out_frag = engine.catalog().GetRowTable("Rp_out");
  ASSERT_TRUE(in_frag.ok() && out_frag.ok());
  EXPECT_EQ((*in_frag)->num_rows(), 300u);
  EXPECT_EQ((*out_frag)->num_rows(), 700u);
  // Two full scans + two materializations; strictly more expensive than one
  // plain materializing select.
  EXPECT_GE(run->io.tuples_read, 2000u);
  EXPECT_GE(run->io.journal_writes, 1000u);
}

TEST(RowEngineTest, PartitionedSelectPrunesFragments) {
  RowEngine engine;
  ASSERT_TRUE(engine.ImportRelation(*Tapestry("R", 1000)).ok());
  ASSERT_TRUE(
      engine.CrackTableSql("R", "c0", RangeBounds::AtMost(300), "Rp").ok());

  // A query inside the in-fragment's bounds touches only 300 tuples.
  auto pruned = engine.RunSelectPartitioned("Rp", "c0",
                                            RangeBounds::Closed(100, 200),
                                            DeliveryMode::kCount);
  ASSERT_TRUE(pruned.ok());
  EXPECT_EQ(pruned->count, 101u);
  EXPECT_LE(pruned->io.tuples_read, 300u);

  // A straddling query touches both fragments but still answers correctly.
  auto both = engine.RunSelectPartitioned("Rp", "c0",
                                          RangeBounds::Closed(250, 350),
                                          DeliveryMode::kCount);
  ASSERT_TRUE(both.ok());
  EXPECT_EQ(both->count, 101u);
}

TEST(RowEngineTest, ChainJoinHashCountsPaths) {
  RowEngine engine;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(engine
                    .ImportRelation(*Tapestry("T" + std::to_string(i), 200,
                                              /*seed=*/10 + i))
                    .ok());
  }
  auto run = engine.RunChainJoin({"T0", "T1", "T2"}, "c1", "c0");
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->join_algo, JoinAlgo::kHash);
  // Permutation chains: every tuple continues exactly once.
  EXPECT_EQ(run->count, 200u);
}

TEST(RowEngineTest, ChainJoinNestedLoopAgrees) {
  RowEngineOptions opts;
  opts.optimizer.plan_budget = 1;  // force the nested-loop fallback
  RowEngine engine(opts);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(engine
                    .ImportRelation(*Tapestry("T" + std::to_string(i), 60,
                                              /*seed=*/20 + i))
                    .ok());
  }
  auto run = engine.RunChainJoin({"T0", "T1", "T2"}, "c1", "c0");
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->join_algo, JoinAlgo::kNestedLoop);
  EXPECT_EQ(run->count, 60u);
}

TEST(RowEngineTest, DeadlineTruncatesRunaways) {
  RowEngineOptions opts;
  opts.optimizer.plan_budget = 1;
  opts.statement_deadline_seconds = 0.05;
  RowEngine engine(opts);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(engine
                    .ImportRelation(*Tapestry("T" + std::to_string(i), 2000,
                                              /*seed=*/30 + i))
                    .ok());
  }
  std::vector<std::string> tables;
  for (int i = 0; i < 4; ++i) tables.push_back("T" + std::to_string(i));
  auto run = engine.RunChainJoin(tables, "c1", "c0");
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->truncated);
  EXPECT_LT(run->count, 2000u);  // stopped before completing
}

TEST(ColumnEngineTest, SelectAgreesWithRowEngine) {
  auto rel = Tapestry("R", 2000, /*seed=*/5);
  RowEngine row_engine;
  ASSERT_TRUE(row_engine.ImportRelation(*rel).ok());
  ColumnEngine col_engine;
  ASSERT_TRUE(col_engine.AddTable(rel).ok());

  for (auto mode : {DeliveryMode::kCount, DeliveryMode::kPrint,
                    DeliveryMode::kMaterialize}) {
    auto row_run =
        row_engine.RunSelect("R", "c0", RangeBounds::Closed(100, 600), mode);
    auto col_run =
        col_engine.RunSelect("R", "c0", RangeBounds::Closed(100, 600), mode);
    ASSERT_TRUE(row_run.ok() && col_run.ok());
    EXPECT_EQ(row_run->count, col_run->count);
  }
}

TEST(ColumnEngineTest, MaterializeProducesRelation) {
  ColumnEngine engine;
  ASSERT_TRUE(engine.AddTable(Tapestry("R", 500)).ok());
  auto run = engine.RunSelect("R", "c0", RangeBounds::Closed(1, 50),
                              DeliveryMode::kMaterialize, "result");
  ASSERT_TRUE(run.ok());
  ASSERT_NE(engine.last_result(), nullptr);
  EXPECT_EQ(engine.last_result()->num_rows(), 50u);
  EXPECT_EQ(engine.last_result()->name(), "result");
}

TEST(ColumnEngineTest, ChainJoinMatchesRowEngine) {
  RowEngine row_engine;
  ColumnEngine col_engine;
  std::vector<std::string> tables;
  for (int i = 0; i < 4; ++i) {
    auto rel = Tapestry("T" + std::to_string(i), 150, /*seed=*/40 + i);
    ASSERT_TRUE(row_engine.ImportRelation(*rel).ok());
    ASSERT_TRUE(col_engine.AddTable(rel).ok());
    tables.push_back(rel->name());
  }
  auto row_run = row_engine.RunChainJoin(tables, "c1", "c0");
  auto col_run = col_engine.RunChainJoin(tables, "c1", "c0");
  ASSERT_TRUE(row_run.ok() && col_run.ok());
  EXPECT_EQ(row_run->count, col_run->count);
  EXPECT_EQ(col_run->count, 150u);
}

TEST(ColumnEngineTest, LongChainStaysCheap) {
  ColumnEngine engine;
  std::vector<std::string> tables;
  for (int i = 0; i < 32; ++i) {
    auto rel = Tapestry("T" + std::to_string(i), 500, /*seed=*/100 + i);
    ASSERT_TRUE(engine.AddTable(rel).ok());
    tables.push_back(rel->name());
  }
  auto run = engine.RunChainJoin(tables, "c1", "c0");
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->count, 500u);
  EXPECT_FALSE(run->truncated);
}

TEST(ColumnEngineTest, ValidatesInputs) {
  ColumnEngine engine;
  ASSERT_TRUE(engine.AddTable(Tapestry("R", 10)).ok());
  EXPECT_TRUE(engine.AddTable(Tapestry("R", 10)).IsAlreadyExists());
  EXPECT_TRUE(engine
                  .RunSelect("X", "c0", RangeBounds::All(),
                             DeliveryMode::kCount)
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(engine.RunChainJoin({"R"}, "c1", "c0").status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace crackstore
