// Copyright 2026 The CrackStore Authors
//
// Tests for ^-cracking (join cracker).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/join_cracker.h"
#include "util/rng.h"
#include "workload/tapestry.h"

namespace crackstore {
namespace {

std::shared_ptr<Bat> I64(std::vector<int64_t> v, const char* name = "c") {
  return Bat::FromVector(v, name);
}

std::multiset<int64_t> ViewValues(const BatView& view) {
  std::multiset<int64_t> out;
  for (size_t i = 0; i < view.size(); ++i) out.insert(view.Get<int64_t>(i));
  return out;
}

TEST(JoinCrackerTest, SplitsMatchingAndNonMatching) {
  auto r = I64({1, 2, 3, 4, 5}, "R.k");
  auto s = I64({4, 5, 6, 7}, "S.k");
  auto cracked = CrackJoin(r, s);
  ASSERT_TRUE(cracked.ok());
  EXPECT_EQ(ViewValues(cracked->left.matching()),
            (std::multiset<int64_t>{4, 5}));
  EXPECT_EQ(ViewValues(cracked->left.non_matching()),
            (std::multiset<int64_t>{1, 2, 3}));
  EXPECT_EQ(ViewValues(cracked->right.matching()),
            (std::multiset<int64_t>{4, 5}));
  EXPECT_EQ(ViewValues(cracked->right.non_matching()),
            (std::multiset<int64_t>{6, 7}));
}

TEST(JoinCrackerTest, LossLessBothSides) {
  Pcg32 rng(5);
  std::vector<int64_t> rv(200), sv(300);
  for (auto& v : rv) v = rng.NextInRange(0, 100);
  for (auto& v : sv) v = rng.NextInRange(50, 150);
  auto cracked = CrackJoin(I64(rv), I64(sv));
  ASSERT_TRUE(cracked.ok());
  // P1 u P2 == R, P3 u P4 == S (multiset equality).
  std::multiset<int64_t> left_all = ViewValues(cracked->left.matching());
  for (int64_t v : ViewValues(cracked->left.non_matching())) {
    left_all.insert(v);
  }
  EXPECT_EQ(left_all, std::multiset<int64_t>(rv.begin(), rv.end()));
  std::multiset<int64_t> right_all = ViewValues(cracked->right.matching());
  for (int64_t v : ViewValues(cracked->right.non_matching())) {
    right_all.insert(v);
  }
  EXPECT_EQ(right_all, std::multiset<int64_t>(sv.begin(), sv.end()));
}

TEST(JoinCrackerTest, SemijoinProperty) {
  // Every matching value must appear in the other side; every non-matching
  // value must not.
  Pcg32 rng(6);
  std::vector<int64_t> rv(150), sv(150);
  for (auto& v : rv) v = rng.NextInRange(0, 80);
  for (auto& v : sv) v = rng.NextInRange(40, 120);
  auto cracked = CrackJoin(I64(rv), I64(sv));
  ASSERT_TRUE(cracked.ok());
  std::set<int64_t> s_keys(sv.begin(), sv.end());
  for (int64_t v : ViewValues(cracked->left.matching())) {
    EXPECT_TRUE(s_keys.count(v) > 0);
  }
  for (int64_t v : ViewValues(cracked->left.non_matching())) {
    EXPECT_TRUE(s_keys.count(v) == 0);
  }
}

TEST(JoinCrackerTest, OidsMapBackToSources) {
  auto r = I64({10, 20, 30}, "R");
  auto s = I64({30, 10, 99}, "S");
  auto cracked = CrackJoin(r, s);
  ASSERT_TRUE(cracked.ok());
  for (size_t i = 0; i < cracked->left.values->size(); ++i) {
    Oid oid = cracked->left.oids->Get<Oid>(i);
    EXPECT_EQ(r->Get<int64_t>(static_cast<size_t>(oid)),
              cracked->left.values->Get<int64_t>(i));
  }
  for (size_t i = 0; i < cracked->right.values->size(); ++i) {
    Oid oid = cracked->right.oids->Get<Oid>(i);
    EXPECT_EQ(s->Get<int64_t>(static_cast<size_t>(oid)),
              cracked->right.values->Get<int64_t>(i));
  }
}

TEST(JoinCrackerTest, JoinMatchingAreasEqualsFullHashJoin) {
  Pcg32 rng(7);
  std::vector<int64_t> rv(300), sv(200);
  for (auto& v : rv) v = rng.NextInRange(0, 150);
  for (auto& v : sv) v = rng.NextInRange(100, 250);
  auto r = I64(rv, "R");
  auto s = I64(sv, "S");

  auto cracked = CrackJoin(r, s);
  ASSERT_TRUE(cracked.ok());
  std::vector<OidPair> via_crack = JoinMatchingAreas(*cracked);
  auto full = HashJoinOids(r, s);
  ASSERT_TRUE(full.ok());

  auto normalize = [](std::vector<OidPair> pairs) {
    std::vector<std::pair<Oid, Oid>> out;
    out.reserve(pairs.size());
    for (const auto& p : pairs) out.emplace_back(p.left, p.right);
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(normalize(via_crack), normalize(*full));
}

TEST(JoinCrackerTest, DisjointInputs) {
  auto cracked = CrackJoin(I64({1, 2}), I64({3, 4}));
  ASSERT_TRUE(cracked.ok());
  EXPECT_EQ(cracked->left.split, 0u);
  EXPECT_EQ(cracked->right.split, 0u);
  EXPECT_TRUE(JoinMatchingAreas(*cracked).empty());
}

TEST(JoinCrackerTest, IdenticalInputs) {
  auto cracked = CrackJoin(I64({1, 2, 3}), I64({1, 2, 3}));
  ASSERT_TRUE(cracked.ok());
  EXPECT_EQ(cracked->left.split, 3u);
  EXPECT_EQ(cracked->right.split, 3u);
  EXPECT_EQ(JoinMatchingAreas(*cracked).size(), 3u);
}

TEST(JoinCrackerTest, DuplicateKeysMultiplyPairs) {
  auto r = I64({7, 7});
  auto s = I64({7, 7, 7});
  auto cracked = CrackJoin(r, s);
  ASSERT_TRUE(cracked.ok());
  EXPECT_EQ(JoinMatchingAreas(*cracked).size(), 6u);  // 2 x 3
}

TEST(JoinCrackerTest, EmptyOperand) {
  auto cracked = CrackJoin(I64({}), I64({1, 2}));
  ASSERT_TRUE(cracked.ok());
  EXPECT_EQ(cracked->left.split, 0u);
  EXPECT_EQ(cracked->right.split, 0u);
}

TEST(JoinCrackerTest, TypeMismatchRejected) {
  auto r = I64({1});
  auto s = Bat::FromVector(std::vector<int32_t>{1}, "i32");
  EXPECT_TRUE(CrackJoin(r, s).status().IsTypeMismatch());
  EXPECT_TRUE(HashJoinOids(r, s).status().IsTypeMismatch());
}

TEST(JoinCrackerTest, NullRejected) {
  EXPECT_TRUE(CrackJoin(nullptr, I64({1})).status().IsInvalidArgument());
  EXPECT_TRUE(HashJoinOids(I64({1}), nullptr).status().IsInvalidArgument());
}

TEST(JoinCrackerTest, StatsAccounting) {
  IoStats stats;
  auto cracked = CrackJoin(I64({1, 2, 3, 4}), I64({3, 4, 5}), &stats);
  ASSERT_TRUE(cracked.ok());
  EXPECT_GT(stats.tuples_read, 0u);
  EXPECT_EQ(stats.cracks, 2u);          // one shuffle per side
  EXPECT_EQ(stats.pieces_created, 4u);  // P1..P4
}

TEST(JoinCrackerTest, HeadBaseRespected) {
  auto r = I64({5, 6});
  r->set_head_base(100);
  auto s = I64({6});
  auto pairs = HashJoinOids(r, s);
  ASSERT_TRUE(pairs.ok());
  ASSERT_EQ(pairs->size(), 1u);
  EXPECT_EQ((*pairs)[0].left, 101u);
  EXPECT_EQ((*pairs)[0].right, 0u);
}

TEST(JoinCrackerTest, PermutationSelfJoinCountsN) {
  auto r = BuildPermutationColumn(1000, 31, "p1");
  auto s = BuildPermutationColumn(1000, 37, "p2");
  auto cracked = CrackJoin(r, s);
  ASSERT_TRUE(cracked.ok());
  // Two permutations of 1..N match everywhere.
  EXPECT_EQ(cracked->left.split, 1000u);
  EXPECT_EQ(JoinMatchingAreas(*cracked).size(), 1000u);
}

}  // namespace
}  // namespace crackstore
