// Copyright 2026 The CrackStore Authors
//
// Tests for RNG, string helpers and the table printer.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <set>
#include <vector>

#include "util/crc32.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace crackstore {
namespace {

TEST(SplitMix64Test, DeterministicForSeed) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(Pcg32Test, DeterministicForSeed) {
  Pcg32 a(42);
  Pcg32 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU32(), b.NextU32());
}

TEST(Pcg32Test, BoundedStaysInBound) {
  Pcg32 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(Pcg32Test, BoundedOneAlwaysZero) {
  Pcg32 rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(Pcg32Test, RangeInclusiveBothEnds) {
  Pcg32 rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.NextInRange(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values hit
}

TEST(Pcg32Test, RangeSingleton) {
  Pcg32 rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextInRange(-5, -5), -5);
}

TEST(Pcg32Test, RangeNegativeSpan) {
  Pcg32 rng(11);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInRange(-100, 100);
    EXPECT_GE(v, -100);
    EXPECT_LE(v, 100);
  }
}

TEST(Pcg32Test, DoubleInUnitInterval) {
  Pcg32 rng(13);
  double mn = 1.0, mx = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    mn = std::min(mn, d);
    mx = std::max(mx, d);
  }
  EXPECT_LT(mn, 0.05);  // coverage sanity
  EXPECT_GT(mx, 0.95);
}

TEST(Pcg32Test, RoughUniformity) {
  Pcg32 rng(17);
  std::vector<int> histogram(10, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++histogram[rng.NextBounded(10)];
  for (int count : histogram) {
    EXPECT_NEAR(count, kDraws / 10, kDraws / 100);  // within 10% relative
  }
}

TEST(ShuffleTest, ProducesPermutation) {
  std::vector<int> v(1000);
  std::iota(v.begin(), v.end(), 0);
  Pcg32 rng(21);
  Shuffle(&v, &rng);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(ShuffleTest, ActuallyShuffles) {
  std::vector<int> v(1000);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  Pcg32 rng(23);
  Shuffle(&v, &rng);
  EXPECT_NE(v, orig);
}

TEST(ShuffleTest, HandlesTinyVectors) {
  std::vector<int> empty;
  std::vector<int> one{42};
  Pcg32 rng(1);
  Shuffle(&empty, &rng);
  Shuffle(&one, &rng);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(one[0], 42);
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StrJoinTest, JoinsWithSeparator) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("--flag=1", "--flag="));
  EXPECT_FALSE(StartsWith("-flag=1", "--flag="));
  EXPECT_FALSE(StartsWith("", "x"));
  EXPECT_TRUE(StartsWith("x", ""));
}

TEST(ParseFlagTest, ExtractsValue) {
  std::string value;
  EXPECT_TRUE(ParseFlag("--n=1000", "n", &value));
  EXPECT_EQ(value, "1000");
  EXPECT_FALSE(ParseFlag("--m=1000", "n", &value));
}

TEST(HumanCountTest, Scales) {
  EXPECT_EQ(HumanCount(999), "999");
  EXPECT_EQ(HumanCount(1500), "1.5k");
  EXPECT_EQ(HumanCount(2500000), "2.5M");
  EXPECT_EQ(HumanCount(3000000000ULL), "3.0G");
}

TEST(TablePrinterTest, CsvEscaping) {
  TablePrinter tp;
  tp.SetHeader({"a", "b"});
  tp.AddRow({"plain", "has,comma"});
  tp.AddRow({"has\"quote", "x"});
  char buf[256];
  std::FILE* f = fmemopen(buf, sizeof(buf), "w");
  tp.PrintCsv(f);
  std::fclose(f);
  std::string out(buf);
  EXPECT_NE(out.find("a,b\n"), std::string::npos);
  EXPECT_NE(out.find("plain,\"has,comma\"\n"), std::string::npos);
  EXPECT_NE(out.find("\"has\"\"quote\",x\n"), std::string::npos);
}

TEST(TablePrinterTest, CountsRows) {
  TablePrinter tp;
  tp.SetHeader({"x"});
  EXPECT_EQ(tp.num_rows(), 0u);
  tp.AddRow({"1"});
  tp.AddRow({"2"});
  EXPECT_EQ(tp.num_rows(), 2u);
}

TEST(TablePrinterTest, AlignedOutputHasRule) {
  TablePrinter tp;
  tp.SetHeader({"col"});
  tp.AddRow({"v"});
  char buf[256];
  std::FILE* f = fmemopen(buf, sizeof(buf), "w");
  tp.PrintAligned(f);
  std::fclose(f);
  std::string out(buf);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Crc32Test, KnownVectors) {
  // The classic zlib test vector.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
  EXPECT_EQ(Crc32("a"), 0xE8B7BE43u);
}

TEST(Crc32Test, StreamingMatchesOneShot) {
  std::string data = "the quick brown fox jumps over the lazy dog";
  uint32_t oneshot = Crc32(data);
  uint32_t part = Crc32(data.substr(0, 10));
  uint32_t streamed = Crc32(data.substr(10), part);
  EXPECT_EQ(streamed, oneshot);
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::string data(1024, 'x');
  uint32_t clean = Crc32(data);
  data[512] = 'y';
  EXPECT_NE(Crc32(data), clean);
}

TEST(WallTimerTest, MeasuresElapsedTime) {
  WallTimer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GT(t.ElapsedSeconds(), 0.0);
  EXPECT_GE(t.ElapsedMillis(), t.ElapsedSeconds());  // ms >= s numerically
}

TEST(AccumulatingTimerTest, SumsWindows) {
  AccumulatingTimer t;
  t.Start();
  volatile double sink = 0;
  for (int i = 0; i < 10000; ++i) sink += i;
  t.Stop();
  double first = t.TotalSeconds();
  EXPECT_GT(first, 0.0);
  t.Start();
  for (int i = 0; i < 10000; ++i) sink += i;
  t.Stop();
  EXPECT_GT(t.TotalSeconds(), first);
  t.Reset();
  EXPECT_EQ(t.TotalSeconds(), 0.0);
}

}  // namespace
}  // namespace crackstore
