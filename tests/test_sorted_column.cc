// Copyright 2026 The CrackStore Authors
//
// Tests for the upfront-sort baseline.

#include <gtest/gtest.h>

#include <set>

#include "core/sorted_column.h"
#include "util/rng.h"
#include "workload/tapestry.h"

namespace crackstore {
namespace {

TEST(SortedColumnTest, SortsClone) {
  auto col = Bat::FromVector(std::vector<int64_t>{5, 2, 9, 1}, "c");
  SortedColumn<int64_t> sorted(col);
  const int64_t* d = sorted.values()->TailData<int64_t>();
  EXPECT_EQ(d[0], 1);
  EXPECT_EQ(d[1], 2);
  EXPECT_EQ(d[2], 5);
  EXPECT_EQ(d[3], 9);
  // Source untouched.
  EXPECT_EQ(col->Get<int64_t>(0), 5);
}

TEST(SortedColumnTest, OidsFollowSort) {
  auto col = Bat::FromVector(std::vector<int64_t>{5, 2, 9, 1}, "c");
  SortedColumn<int64_t> sorted(col);
  for (size_t i = 0; i < 4; ++i) {
    Oid oid = sorted.oids()->Get<Oid>(i);
    EXPECT_EQ(col->Get<int64_t>(static_cast<size_t>(oid)),
              sorted.values()->Get<int64_t>(i));
  }
}

TEST(SortedColumnTest, RangeSelect) {
  auto col = BuildPermutationColumn(1000, 3, "perm");
  SortedColumn<int64_t> sorted(col);
  CrackSelection sel = sorted.Select(100, true, 200, true);
  EXPECT_EQ(sel.count(), 101u);
  for (size_t i = 0; i < sel.count(); ++i) {
    int64_t v = sel.values.Get<int64_t>(i);
    EXPECT_GE(v, 100);
    EXPECT_LE(v, 200);
  }
}

TEST(SortedColumnTest, InclusivityCombinations) {
  auto col = Bat::FromVector(std::vector<int64_t>{1, 2, 2, 3, 4}, "c");
  SortedColumn<int64_t> sorted(col);
  EXPECT_EQ(sorted.Select(2, true, 3, true).count(), 3u);    // {2,2,3}
  EXPECT_EQ(sorted.Select(2, false, 3, true).count(), 1u);   // {3}
  EXPECT_EQ(sorted.Select(2, true, 3, false).count(), 2u);   // {2,2}
  EXPECT_EQ(sorted.Select(2, false, 3, false).count(), 0u);  // (2,3)
}

TEST(SortedColumnTest, EmptyAndOutOfDomain) {
  auto col = Bat::FromVector(std::vector<int64_t>{10, 20}, "c");
  SortedColumn<int64_t> sorted(col);
  EXPECT_EQ(sorted.Select(30, true, 40, true).count(), 0u);
  EXPECT_EQ(sorted.Select(15, true, 12, true).count(), 0u);  // inverted
  EXPECT_EQ(sorted.Select(0, true, 100, true).count(), 2u);
}

TEST(SortedColumnTest, BuildCostFollowsNLogN) {
  auto col = BuildPermutationColumn(1024, 5, "perm");
  IoStats stats;
  SortedColumn<int64_t> sorted(col, &stats);
  EXPECT_EQ(stats.tuples_read, 1024u);
  EXPECT_EQ(stats.tuples_written, 1024u * 10u);  // N * log2(N)
}

TEST(SortedColumnTest, QueryCostIsLogarithmic) {
  auto col = BuildPermutationColumn(100000, 7, "perm");
  SortedColumn<int64_t> sorted(col);
  IoStats stats;
  sorted.Select(5, true, 50000, true, &stats);
  EXPECT_LE(stats.tuples_read, 64u);  // 2 * ceil(log2 n)
}

TEST(SortedColumnTest, MatchesCrackerIndexAnswers) {
  auto col = BuildPermutationColumn(5000, 11, "perm");
  SortedColumn<int64_t> sorted(col);
  CrackerIndex<int64_t> index(col);
  Pcg32 rng(13);
  for (int q = 0; q < 30; ++q) {
    int64_t lo = rng.NextInRange(1, 4000);
    int64_t hi = lo + rng.NextInRange(0, 900);
    EXPECT_EQ(sorted.Select(lo, true, hi, true).count(),
              index.Select(lo, true, hi, true).count());
  }
}

TEST(SortedColumnTest, DuplicateHeavyColumn) {
  Pcg32 rng(17);
  std::vector<int64_t> v(1000);
  for (auto& x : v) x = rng.NextInRange(0, 5);
  auto col = Bat::FromVector(v, "dups");
  SortedColumn<int64_t> sorted(col);
  size_t total = 0;
  for (int64_t g = 0; g <= 5; ++g) {
    total += sorted.Select(g, true, g, true).count();
  }
  EXPECT_EQ(total, 1000u);
}

}  // namespace
}  // namespace crackstore
