// Copyright 2026 The CrackStore Authors
//
// Tests for the cracker index — the paper's central data structure. Includes
// randomized property sweeps cross-checking every cracked selection against
// a naive scan, over query mixes with duplicates and all inclusivity
// combinations.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>
#include <vector>

#include "core/cracker_index.h"
#include "util/rng.h"
#include "workload/tapestry.h"

namespace crackstore {
namespace {

std::shared_ptr<Bat> MakeColumn(std::vector<int64_t> values) {
  return Bat::FromVector(values, "col");
}

/// Reference implementation: scan-filter.
std::multiset<int64_t> NaiveSelect(const std::vector<int64_t>& data,
                                   int64_t lo, bool lo_incl, int64_t hi,
                                   bool hi_incl) {
  std::multiset<int64_t> out;
  for (int64_t v : data) {
    if (lo_incl ? v < lo : v <= lo) continue;
    if (hi_incl ? v > hi : v >= hi) continue;
    out.insert(v);
  }
  return out;
}

std::multiset<int64_t> SelectionValues(const CrackSelection& sel) {
  std::multiset<int64_t> out;
  for (size_t i = 0; i < sel.values.size(); ++i) {
    out.insert(sel.values.Get<int64_t>(i));
  }
  return out;
}

TEST(CrackerIndexTest, ConstructionClonesAndMapsOids) {
  auto col = MakeColumn({5, 3, 8, 1});
  IoStats stats;
  CrackerIndex<int64_t> index(col, &stats);
  EXPECT_EQ(index.size(), 4u);
  EXPECT_EQ(stats.tuples_read, 4u);
  EXPECT_EQ(stats.tuples_written, 4u);
  // Before any crack: values in source order, oids identity.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(index.values()->Get<int64_t>(i), col->Get<int64_t>(i));
    EXPECT_EQ(index.oids()->Get<Oid>(i), i);
  }
  EXPECT_EQ(index.num_pieces(), 1u);
}

TEST(CrackerIndexTest, SourceUntouchedByCracking) {
  auto col = MakeColumn({5, 3, 8, 1, 9, 2});
  std::vector<int64_t> orig(col->TailData<int64_t>(),
                            col->TailData<int64_t>() + col->size());
  CrackerIndex<int64_t> index(col);
  index.Select(2, true, 5, true);
  for (size_t i = 0; i < orig.size(); ++i) {
    EXPECT_EQ(col->Get<int64_t>(i), orig[i]);
  }
}

TEST(CrackerIndexTest, SimpleRangeSelect) {
  auto col = MakeColumn({5, 3, 8, 1, 9, 2, 7, 4, 6});
  CrackerIndex<int64_t> index(col);
  CrackSelection sel = index.Select(3, true, 6, true);
  EXPECT_EQ(sel.count(), 4u);  // {3,4,5,6}
  EXPECT_EQ(SelectionValues(sel),
            (std::multiset<int64_t>{3, 4, 5, 6}));
}

TEST(CrackerIndexTest, SelectionIsContiguousView) {
  auto col = MakeColumn({5, 3, 8, 1, 9, 2, 7, 4, 6});
  CrackerIndex<int64_t> index(col);
  CrackSelection sel = index.Select(3, true, 6, true);
  // Zero-copy: views point into the cracker column.
  EXPECT_EQ(sel.values.bat().get(), index.values().get());
  EXPECT_EQ(sel.oids.bat().get(), index.oids().get());
  EXPECT_EQ(sel.values.size(), sel.oids.size());
}

TEST(CrackerIndexTest, OidsMapBackToSource) {
  auto col = MakeColumn({50, 30, 80, 10, 90, 20});
  CrackerIndex<int64_t> index(col);
  CrackSelection sel = index.Select(20, true, 50, true);
  for (size_t i = 0; i < sel.count(); ++i) {
    Oid oid = sel.oids.Get<Oid>(i);
    EXPECT_EQ(col->Get<int64_t>(static_cast<size_t>(oid)),
              sel.values.Get<int64_t>(i));
  }
}

TEST(CrackerIndexTest, FirstRangeCracksInThree) {
  auto col = MakeColumn({5, 3, 8, 1, 9, 2, 7, 4, 6});
  CrackerIndex<int64_t> index(col);
  IoStats stats;
  index.Select(3, true, 6, true, &stats);
  EXPECT_EQ(stats.cracks, 1u);  // one crack-in-three pass
  EXPECT_EQ(index.num_pieces(), 3u);
  ASSERT_TRUE(index.Validate().ok());
}

TEST(CrackerIndexTest, RepeatQueryTouchesNothing) {
  auto col = MakeColumn({5, 3, 8, 1, 9, 2, 7, 4, 6});
  CrackerIndex<int64_t> index(col);
  index.Select(3, true, 6, true);
  IoStats stats;
  CrackSelection sel = index.Select(3, true, 6, true, &stats);
  EXPECT_EQ(stats.tuples_read, 0u);
  EXPECT_EQ(stats.tuples_written, 0u);
  EXPECT_EQ(stats.cracks, 0u);
  EXPECT_EQ(sel.count(), 4u);
}

TEST(CrackerIndexTest, OverlappingQueriesRefinePieces) {
  auto col = BuildPermutationColumn(1000, 7, "perm");
  CrackerIndex<int64_t> index(col);
  index.Select(100, true, 600, true);
  size_t pieces_after_first = index.num_pieces();
  IoStats stats;
  index.Select(200, true, 500, true, &stats);
  EXPECT_GT(index.num_pieces(), pieces_after_first);
  // Second query only cracks inside the middle piece (size ~501), far less
  // than the full column.
  EXPECT_LT(stats.tuples_read, 600u);
  ASSERT_TRUE(index.Validate().ok());
}

TEST(CrackerIndexTest, OneSidedSelects) {
  auto col = MakeColumn({5, 3, 8, 1, 9});
  CrackerIndex<int64_t> index(col);
  EXPECT_EQ(index.SelectLessThan(5, false).count(), 2u);   // {3,1}
  EXPECT_EQ(index.SelectLessThan(5, true).count(), 3u);    // {3,1,5}
  EXPECT_EQ(index.SelectGreaterThan(5, false).count(), 2u);  // {8,9}
  EXPECT_EQ(index.SelectGreaterThan(5, true).count(), 3u);   // {5,8,9}
  ASSERT_TRUE(index.Validate().ok());
}

TEST(CrackerIndexTest, PointSelect) {
  auto col = MakeColumn({4, 2, 4, 7, 4, 1});
  CrackerIndex<int64_t> index(col);
  CrackSelection sel = index.SelectEquals(4);
  EXPECT_EQ(sel.count(), 3u);
  for (size_t i = 0; i < sel.count(); ++i) {
    EXPECT_EQ(sel.values.Get<int64_t>(i), 4);
  }
  ASSERT_TRUE(index.Validate().ok());
}

TEST(CrackerIndexTest, PointSelectAbsentValue) {
  auto col = MakeColumn({1, 5, 9});
  CrackerIndex<int64_t> index(col);
  EXPECT_EQ(index.SelectEquals(4).count(), 0u);
  ASSERT_TRUE(index.Validate().ok());
}

TEST(CrackerIndexTest, EmptyAndInvertedRanges) {
  auto col = MakeColumn({1, 2, 3, 4, 5});
  CrackerIndex<int64_t> index(col);
  EXPECT_EQ(index.Select(4, true, 2, true).count(), 0u);   // inverted
  EXPECT_EQ(index.Select(3, false, 3, true).count(), 0u);  // (3,3]
  EXPECT_EQ(index.Select(3, true, 3, false).count(), 0u);  // [3,3)
  // Inverted/empty ranges must not corrupt the index.
  EXPECT_EQ(index.Select(1, true, 5, true).count(), 5u);
  ASSERT_TRUE(index.Validate().ok());
}

TEST(CrackerIndexTest, RangeOutsideDomain) {
  auto col = MakeColumn({10, 20, 30});
  CrackerIndex<int64_t> index(col);
  EXPECT_EQ(index.Select(100, true, 200, true).count(), 0u);
  EXPECT_EQ(index.Select(-10, true, -1, true).count(), 0u);
  EXPECT_EQ(index.Select(0, true, 100, true).count(), 3u);
  ASSERT_TRUE(index.Validate().ok());
}

TEST(CrackerIndexTest, SelectAllNeverCracks) {
  auto col = MakeColumn({3, 1, 2});
  CrackerIndex<int64_t> index(col);
  CrackSelection sel = index.SelectAll();
  EXPECT_EQ(sel.count(), 3u);
  EXPECT_EQ(index.num_pieces(), 1u);
}

TEST(CrackerIndexTest, DuplicatesWithMixedInclusivity) {
  auto col = MakeColumn({4, 4, 4, 2, 2, 6, 6, 4});
  CrackerIndex<int64_t> index(col);
  EXPECT_EQ(index.Select(4, true, 6, false).count(), 4u);   // 4s only
  EXPECT_EQ(index.Select(4, false, 6, true).count(), 2u);   // 6s only
  EXPECT_EQ(index.Select(2, true, 4, true).count(), 6u);    // 2s + 4s
  EXPECT_EQ(index.Select(2, false, 4, false).count(), 0u);  // (2,4) empty
  ASSERT_TRUE(index.Validate().ok());
}

TEST(CrackerIndexTest, BoundRefinementOnSameValue) {
  // First query uses value 5 exclusively, second inclusively: the index must
  // refine the existing boundary rather than corrupt it.
  auto col = MakeColumn({5, 1, 5, 9, 5, 3, 7});
  CrackerIndex<int64_t> index(col);
  EXPECT_EQ(index.Select(1, true, 5, false).count(), 2u);  // {1,3}
  EXPECT_EQ(index.Select(1, true, 5, true).count(), 5u);   // {1,3,5,5,5}
  EXPECT_EQ(index.Select(5, true, 9, true).count(), 5u);   // {5,5,5,7,9}
  EXPECT_EQ(index.Select(5, false, 9, true).count(), 2u);  // {7,9}
  ASSERT_TRUE(index.Validate().ok());
}

TEST(CrackerIndexTest, PiecesTableIsConsistent) {
  auto col = BuildPermutationColumn(500, 11, "perm");
  CrackerIndex<int64_t> index(col);
  index.Select(50, true, 100, true);
  index.Select(200, true, 400, false);
  index.SelectLessThan(25, true);

  auto pieces = index.Pieces();
  ASSERT_FALSE(pieces.empty());
  // Pieces tile [0, n) without gaps.
  EXPECT_EQ(pieces.front().begin, 0u);
  EXPECT_EQ(pieces.back().end, index.size());
  for (size_t i = 1; i < pieces.size(); ++i) {
    EXPECT_EQ(pieces[i].begin, pieces[i - 1].end);
  }
  // Piece decorations hold for the data.
  const int64_t* data = index.values()->TailData<int64_t>();
  for (const auto& p : pieces) {
    for (size_t i = p.begin; i < p.end; ++i) {
      if (p.has_lo) {
        EXPECT_TRUE(p.lo_strict ? data[i] > p.lo : data[i] >= p.lo);
      }
      if (p.has_hi) {
        EXPECT_TRUE(p.hi_strict ? data[i] < p.hi : data[i] <= p.hi);
      }
    }
  }
}

TEST(CrackerIndexTest, NumPiecesMatchesPiecesTable) {
  auto col = BuildPermutationColumn(300, 13, "perm");
  CrackerIndex<int64_t> index(col);
  index.Select(30, true, 60, true);
  index.Select(100, true, 200, true);
  auto pieces = index.Pieces();
  EXPECT_EQ(index.num_pieces(), pieces.size());
}

TEST(CrackerIndexTest, BoundsExposeUsageClocks) {
  auto col = BuildPermutationColumn(100, 17, "perm");
  CrackerIndex<int64_t> index(col);
  index.Select(10, true, 20, true);
  index.Select(50, true, 60, true);
  auto bounds = index.Bounds();
  ASSERT_EQ(bounds.size(), 4u);
  // Bounds are reported in value order with set clocks.
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1].value, bounds[i].value);
  }
  for (const auto& b : bounds) {
    EXPECT_GT(b.last_used, 0u);
    EXPECT_GT(b.created, 0u);
  }
}

TEST(CrackerIndexTest, RemoveBoundFusesPieces) {
  auto col = BuildPermutationColumn(200, 19, "perm");
  CrackerIndex<int64_t> index(col);
  index.Select(50, true, 150, true);
  size_t pieces_before = index.num_pieces();
  ASSERT_TRUE(index.RemoveBound(50).ok());
  EXPECT_LT(index.num_pieces(), pieces_before);
  EXPECT_TRUE(index.RemoveBound(50).IsNotFound());
  // Data still answers correctly after fusion (it re-cracks).
  CrackSelection sel = index.Select(50, true, 150, true);
  EXPECT_EQ(sel.count(), 101u);
  ASSERT_TRUE(index.Validate().ok());
}

TEST(CrackerIndexTest, Int32Instantiation) {
  auto col = Bat::FromVector(std::vector<int32_t>{5, 1, 4, 2, 3}, "i32");
  CrackerIndex<int32_t> index(col);
  CrackSelection sel = index.Select(2, true, 4, true);
  EXPECT_EQ(sel.count(), 3u);
  ASSERT_TRUE(index.Validate().ok());
}

TEST(CrackerIndexTest, DoubleInstantiation) {
  auto col =
      Bat::FromVector(std::vector<double>{0.5, 2.5, 1.5, 3.5, 4.5}, "f64");
  CrackerIndex<double> index(col);
  CrackSelection sel = index.Select(1.0, true, 4.0, true);
  EXPECT_EQ(sel.count(), 3u);
  ASSERT_TRUE(index.Validate().ok());
}

TEST(CrackerIndexTest, HeadBaseOffsetsOids) {
  auto col = MakeColumn({30, 10, 20});
  col->set_head_base(1000);
  CrackerIndex<int64_t> index(col);
  CrackSelection sel = index.Select(10, true, 20, true);
  std::set<Oid> oids;
  for (size_t i = 0; i < sel.count(); ++i) oids.insert(sel.oids.Get<Oid>(i));
  EXPECT_EQ(oids, (std::set<Oid>{1001, 1002}));
}

TEST(CrackerIndexTest, SingleElementColumn) {
  auto col = MakeColumn({42});
  CrackerIndex<int64_t> index(col);
  EXPECT_EQ(index.Select(0, true, 100, true).count(), 1u);
  EXPECT_EQ(index.Select(43, true, 100, true).count(), 0u);
  EXPECT_EQ(index.SelectEquals(42).count(), 1u);
  ASSERT_TRUE(index.Validate().ok());
}

TEST(CrackerIndexTest, AllEqualColumn) {
  auto col = MakeColumn(std::vector<int64_t>(100, 7));
  CrackerIndex<int64_t> index(col);
  EXPECT_EQ(index.SelectEquals(7).count(), 100u);
  EXPECT_EQ(index.Select(7, false, 100, true).count(), 0u);
  EXPECT_EQ(index.SelectLessThan(7, false).count(), 0u);
  ASSERT_TRUE(index.Validate().ok());
}

TEST(CrackerIndexTest, CostDecaysAcrossSequence) {
  auto col = BuildPermutationColumn(100000, 23, "perm");
  CrackerIndex<int64_t> index(col);
  Pcg32 rng(99);
  uint64_t first_cost = 0;
  uint64_t late_cost = 0;
  for (int q = 0; q < 50; ++q) {
    int64_t lo = rng.NextInRange(1, 95000);
    IoStats stats;
    index.Select(lo, true, lo + 5000, true, &stats);
    if (q == 0) first_cost = stats.tuples_read;
    if (q >= 40) late_cost += stats.tuples_read;
  }
  // The adaptive claim: early queries pay, late queries are nearly free.
  EXPECT_EQ(first_cost, 100000u);
  EXPECT_LT(late_cost / 10, first_cost / 20);
}

// ---------------------------------------------------------------------------
// Property sweep: random query mixes vs the naive scan, with Validate()
// after every step.
// ---------------------------------------------------------------------------

struct SweepCase {
  size_t n;
  int64_t domain;  // values drawn from [0, domain] -> duplicates when small
  uint64_t seed;
  size_t queries;
};

class CrackerIndexPropertyTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(CrackerIndexPropertyTest, MatchesNaiveScan) {
  const SweepCase& param = GetParam();
  Pcg32 rng(param.seed);
  std::vector<int64_t> data(param.n);
  for (auto& v : data) v = rng.NextInRange(0, param.domain);

  auto col = MakeColumn(data);
  CrackerIndex<int64_t> index(col);

  for (size_t q = 0; q < param.queries; ++q) {
    int64_t a = rng.NextInRange(-2, param.domain + 2);
    int64_t b = rng.NextInRange(-2, param.domain + 2);
    int64_t lo = std::min(a, b);
    int64_t hi = std::max(a, b);
    bool lo_incl = rng.NextBounded(2) == 0;
    bool hi_incl = rng.NextBounded(2) == 0;

    CrackSelection sel;
    std::multiset<int64_t> expected;
    switch (rng.NextBounded(4)) {
      case 0:
        sel = index.Select(lo, lo_incl, hi, hi_incl);
        expected = NaiveSelect(data, lo, lo_incl, hi, hi_incl);
        break;
      case 1:
        sel = index.SelectLessThan(hi, hi_incl);
        expected = NaiveSelect(data, INT64_MIN, true, hi, hi_incl);
        break;
      case 2:
        sel = index.SelectGreaterThan(lo, lo_incl);
        expected = NaiveSelect(data, lo, lo_incl, INT64_MAX, true);
        break;
      default:
        sel = index.SelectEquals(lo);
        expected = NaiveSelect(data, lo, true, lo, true);
        break;
    }
    ASSERT_EQ(SelectionValues(sel), expected)
        << "query " << q << " [" << lo << "," << hi << "] incl=" << lo_incl
        << "," << hi_incl;
    // Oid alignment.
    for (size_t i = 0; i < sel.count(); ++i) {
      ASSERT_EQ(data[static_cast<size_t>(sel.oids.Get<Oid>(i))],
                sel.values.Get<int64_t>(i));
    }
    ASSERT_TRUE(index.Validate().ok()) << "after query " << q;
  }

  // Loss-less: the cracker column remains a permutation of the source.
  std::multiset<int64_t> final_values(
      index.values()->TailData<int64_t>(),
      index.values()->TailData<int64_t>() + param.n);
  EXPECT_EQ(final_values, std::multiset<int64_t>(data.begin(), data.end()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CrackerIndexPropertyTest,
    ::testing::Values(
        SweepCase{100, 1000000, 1, 60},    // unique-ish values
        SweepCase{100, 10, 2, 60},         // heavy duplicates
        SweepCase{1000, 1000, 3, 80},      // moderate duplicates
        SweepCase{1, 5, 4, 20},            // single element
        SweepCase{2000, 1000000000, 5, 60},  // sparse domain
        SweepCase{500, 1, 6, 40}));        // two-valued column

}  // namespace
}  // namespace crackstore
