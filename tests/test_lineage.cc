// Copyright 2026 The CrackStore Authors
//
// Tests for the lineage DAG (paper Figs. 5-6).

#include <gtest/gtest.h>

#include <algorithm>

#include "core/lineage.h"

namespace crackstore {
namespace {

TEST(LineageTest, AddRootBasics) {
  LineageGraph g;
  PieceId r = g.AddRoot("R", 1000);
  EXPECT_EQ(g.num_pieces(), 1u);
  const LineagePiece& p = g.piece(r);
  EXPECT_EQ(p.label, "R");
  EXPECT_EQ(p.size, 1000u);
  EXPECT_TRUE(p.is_root);
  EXPECT_TRUE(p.parents.empty());
}

TEST(LineageTest, XiCrackAddsChildren) {
  LineageGraph g;
  PieceId r = g.AddRoot("R", 100);
  auto kids = g.AddCrack(CrackOp::kXi, {r}, {{"R[1]", 40}, {"R[2]", 60}});
  ASSERT_TRUE(kids.ok());
  ASSERT_EQ(kids->size(), 2u);
  EXPECT_EQ(g.piece((*kids)[0]).label, "R[1]");
  EXPECT_EQ(g.piece((*kids)[0]).produced_by, CrackOp::kXi);
  EXPECT_EQ(g.piece(r).children.size(), 2u);
  EXPECT_EQ(g.piece((*kids)[1]).parents.size(), 1u);
  EXPECT_EQ(g.piece((*kids)[1]).parents[0], r);
}

TEST(LineageTest, RejectsBadInputs) {
  LineageGraph g;
  PieceId r = g.AddRoot("R", 10);
  EXPECT_TRUE(g.AddCrack(CrackOp::kXi, {}, {{"x", 1}})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(g.AddCrack(CrackOp::kXi, {r}, {}).status().IsInvalidArgument());
  EXPECT_TRUE(
      g.AddCrack(CrackOp::kXi, {999}, {{"x", 1}}).status().IsNotFound());
}

TEST(LineageTest, LeavesOfFreshRootIsItself) {
  LineageGraph g;
  PieceId r = g.AddRoot("R", 10);
  auto leaves = g.Leaves(r);
  ASSERT_EQ(leaves.size(), 1u);
  EXPECT_EQ(leaves[0], r);
}

TEST(LineageTest, LeavesAfterNestedCracks) {
  // Reproduce the paper's Fig. 5 shape: R -> {R[1], R[2]}, R[2] -> {R[3],
  // R[4]}, R[4] -> {R[5], R[6]}.
  LineageGraph g;
  PieceId r = g.AddRoot("R", 100);
  auto l1 = *g.AddCrack(CrackOp::kXi, {r}, {{"R[1]", 30}, {"R[2]", 70}});
  auto l2 =
      *g.AddCrack(CrackOp::kXi, {l1[1]}, {{"R[3]", 20}, {"R[4]", 50}});
  auto l3 =
      *g.AddCrack(CrackOp::kXi, {l2[1]}, {{"R[5]", 10}, {"R[6]", 40}});
  auto leaves = g.Leaves(r);
  std::vector<std::string> labels;
  labels.reserve(leaves.size());
  for (PieceId id : leaves) labels.push_back(g.piece(id).label);
  std::sort(labels.begin(), labels.end());
  EXPECT_EQ(labels,
            (std::vector<std::string>{"R[1]", "R[3]", "R[5]", "R[6]"}));
  (void)l3;
}

TEST(LineageTest, CheckLosslessAcceptsConsistentSizes) {
  LineageGraph g;
  PieceId r = g.AddRoot("R", 100);
  auto kids = *g.AddCrack(CrackOp::kXi, {r}, {{"R[1]", 30}, {"R[2]", 70}});
  (void)g.AddCrack(CrackOp::kXi, {kids[1]}, {{"R[3]", 69}, {"R[4]", 1}});
  EXPECT_TRUE(g.CheckLossless(r).ok());
}

TEST(LineageTest, CheckLosslessRejectsLeak) {
  LineageGraph g;
  PieceId r = g.AddRoot("R", 100);
  (void)g.AddCrack(CrackOp::kXi, {r}, {{"R[1]", 30}, {"R[2]", 60}});  // 90!
  EXPECT_FALSE(g.CheckLossless(r).ok());
}

TEST(LineageTest, CheckLosslessSkipsPsi) {
  // Ψ duplicates cardinality across fragments; it must not trip the check.
  LineageGraph g;
  PieceId r = g.AddRoot("R", 100);
  (void)g.AddCrack(CrackOp::kPsi, {r}, {{"R#1", 100}, {"R#2", 100}});
  EXPECT_TRUE(g.CheckLossless(r).ok());
}

TEST(LineageTest, CheckLosslessSkipsMultiParentOps) {
  LineageGraph g;
  PieceId r = g.AddRoot("R", 10);
  PieceId s = g.AddRoot("S", 20);
  (void)g.AddCrack(CrackOp::kWedge, {r, s},
                   {{"P1", 5}, {"P2", 5}, {"P3", 15}, {"P4", 5}});
  EXPECT_TRUE(g.CheckLossless(r).ok());
}

TEST(LineageTest, CheckLosslessUnknownRoot) {
  LineageGraph g;
  EXPECT_TRUE(g.CheckLossless(7).IsNotFound());
}

TEST(LineageTest, OmegaFanout) {
  LineageGraph g;
  PieceId r = g.AddRoot("R.g", 9);
  auto kids = g.AddCrack(CrackOp::kOmega, {r},
                         {{"g=1", 3}, {"g=2", 3}, {"g=3", 3}});
  ASSERT_TRUE(kids.ok());
  EXPECT_EQ(g.Leaves(r).size(), 3u);
  EXPECT_TRUE(g.CheckLossless(r).ok());
}

TEST(LineageTest, DotRenderingContainsNodesAndEdges) {
  LineageGraph g;
  PieceId r = g.AddRoot("R", 100);
  (void)g.AddCrack(CrackOp::kXi, {r}, {{"R[1]", 40}, {"R[2]", 60}});
  std::string dot = g.ToDot();
  EXPECT_NE(dot.find("digraph lineage"), std::string::npos);
  EXPECT_NE(dot.find("R[1]"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("Xi"), std::string::npos);
}

TEST(LineageTest, TrimDescendantsFusesSubtree) {
  LineageGraph g;
  PieceId r = g.AddRoot("R", 100);
  auto l1 = *g.AddCrack(CrackOp::kXi, {r}, {{"R[1]", 30}, {"R[2]", 70}});
  (void)g.AddCrack(CrackOp::kXi, {l1[1]}, {{"R[3]", 20}, {"R[4]", 50}});
  ASSERT_EQ(g.Leaves(r).size(), 3u);

  ASSERT_TRUE(g.TrimDescendants(r).ok());
  // The root is a leaf again; descendants are marked trimmed.
  auto leaves = g.Leaves(r);
  ASSERT_EQ(leaves.size(), 1u);
  EXPECT_EQ(leaves[0], r);
  EXPECT_TRUE(g.piece(l1[0]).trimmed);
  EXPECT_TRUE(g.piece(l1[1]).trimmed);
  EXPECT_TRUE(g.CheckLossless(r).ok());
}

TEST(LineageTest, TrimThenRecrackStaysConsistent) {
  LineageGraph g;
  PieceId r = g.AddRoot("R", 100);
  (void)g.AddCrack(CrackOp::kXi, {r}, {{"R[1]", 40}, {"R[2]", 60}});
  ASSERT_TRUE(g.TrimDescendants(r).ok());
  auto fresh = *g.AddCrack(CrackOp::kXi, {r}, {{"R[a]", 25}, {"R[b]", 75}});
  EXPECT_TRUE(g.CheckLossless(r).ok());
  auto leaves = g.Leaves(r);
  ASSERT_EQ(leaves.size(), 2u);
  EXPECT_EQ(leaves[0], fresh[1]);  // DFS order; both fresh children present
  EXPECT_EQ(leaves[1], fresh[0]);
}

TEST(LineageTest, TrimUnknownPieceFails) {
  LineageGraph g;
  EXPECT_TRUE(g.TrimDescendants(42).IsNotFound());
}

TEST(LineageTest, TrimmedNodesLeaveDotOutput) {
  LineageGraph g;
  PieceId r = g.AddRoot("R", 10);
  (void)g.AddCrack(CrackOp::kXi, {r}, {{"gone[1]", 4}, {"gone[2]", 6}});
  ASSERT_TRUE(g.TrimDescendants(r).ok());
  std::string dot = g.ToDot();
  EXPECT_EQ(dot.find("gone[1]"), std::string::npos);
  EXPECT_NE(dot.find("\"R\\n"), std::string::npos);
}

TEST(LineageTest, CrackOpNames) {
  EXPECT_STREQ(CrackOpName(CrackOp::kXi), "Xi");
  EXPECT_STREQ(CrackOpName(CrackOp::kPsi), "Psi");
  EXPECT_STREQ(CrackOpName(CrackOp::kWedge), "Wedge");
  EXPECT_STREQ(CrackOpName(CrackOp::kOmega), "Omega");
}

}  // namespace
}  // namespace crackstore
