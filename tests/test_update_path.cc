// Copyright 2026 The CrackStore Authors
//
// Mixed read/write parity for the DML-capable access-path layer: every
// strategy (scan/crack/sort) × delta-merge policy (immediate/threshold/
// ripple) × crack policy must match a model oracle under randomized
// interleavings of INSERT, DELETE, UPDATE and range selections — both at
// the raw ColumnAccessPath level and end-to-end through the AdaptiveStore
// facade (where WHERE-driven DML and tombstone-aware full scans live).

// Randomized sections print their seed on failure; rerun a reported seed
// with CRACKSTORE_TEST_SEED=<seed>.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "core/access_path.h"
#include "core/adaptive_store.h"
#include "core/oid_set_ops.h"
#include "storage/bat.h"
#include "util/rng.h"
#include "workload/tapestry.h"

namespace crackstore {
namespace {

/// Base seed of the randomized sessions, overridable for reproduction.
uint64_t TestSeed(uint64_t fallback) {
  const char* env = std::getenv("CRACKSTORE_TEST_SEED");
  if (env != nullptr && *env != '\0') return std::strtoull(env, nullptr, 10);
  return fallback;
}

// ---------------------------------------------------------------------------
// Path-level parity.
// ---------------------------------------------------------------------------

std::vector<AccessPathConfig> AllWriteConfigs() {
  std::vector<AccessPathConfig> configs;
  for (AccessStrategy strategy :
       {AccessStrategy::kScan, AccessStrategy::kCrack, AccessStrategy::kSort}) {
    for (DeltaMergePolicy merge :
         {DeltaMergePolicy::kImmediate, DeltaMergePolicy::kThreshold,
          DeltaMergePolicy::kRippleOnSelect}) {
      std::vector<CrackPolicy> crack_policies{CrackPolicy::kStandard};
      if (strategy == AccessStrategy::kCrack) {
        crack_policies = {CrackPolicy::kStandard, CrackPolicy::kStochastic,
                          CrackPolicy::kCoarse};
      }
      for (CrackPolicy policy : crack_policies) {
        AccessPathConfig config;
        config.strategy = strategy;
        config.policy.policy = policy;
        config.policy.min_piece_size = 64;
        config.delta_merge.policy = merge;
        config.delta_merge.threshold_fraction = 0.05;
        configs.push_back(config);
      }
    }
  }
  return configs;
}

std::string ConfigName(const AccessPathConfig& config) {
  return std::string(AccessStrategyName(config.strategy)) + "/" +
         CrackPolicyName(config.policy.policy) + "/" +
         DeltaMergePolicyName(config.delta_merge.policy);
}

/// The oids of an AccessSelection, sorted ascending.
std::vector<Oid> SelectionOids(const AccessSelection& sel) {
  if (!sel.contiguous) return sel.oids;
  std::vector<Oid> oids;
  oids.reserve(sel.count);
  for (size_t i = 0; i < sel.view.oids.size(); ++i) {
    oids.push_back(sel.view.oids.Get<Oid>(i));
  }
  std::sort(oids.begin(), oids.end());
  return oids;
}

/// Oracle: the live rows as oid -> value.
using Model = std::map<Oid, int64_t>;

std::vector<Oid> ModelOids(const Model& model, const RangeBounds& range) {
  std::vector<Oid> oids;
  for (const auto& [oid, value] : model) {
    if (range.Contains(value)) oids.push_back(oid);
  }
  return oids;  // std::map iterates ascending
}

/// One randomized mixed-workload session of `ops` operations against one
/// path configuration, asserting selection parity with the model after
/// every read.
void RunMixedSession(const AccessPathConfig& config, uint64_t seed) {
  SCOPED_TRACE("config=" + ConfigName(config) +
               " seed=" + std::to_string(seed) +
               " (rerun with CRACKSTORE_TEST_SEED)");
  const size_t n0 = 1500;
  const int64_t domain = 2000;
  Pcg32 rng(seed);

  std::vector<int64_t> initial(n0);
  for (auto& v : initial) v = rng.NextInRange(1, domain);
  auto bat = Bat::FromVector(initial, "c");
  Model model;
  for (size_t i = 0; i < n0; ++i) model[i] = initial[i];

  auto path_result = CreateColumnAccessPath(bat, config);
  ASSERT_TRUE(path_result.ok()) << ConfigName(config);
  ColumnAccessPath* path = path_result->get();

  auto check_select = [&](int op) {
    int64_t lo = rng.NextInRange(-50, domain + 50);
    int64_t hi = lo + rng.NextInRange(0, domain / 3);
    RangeBounds range{lo, rng.NextBounded(2) == 0, hi,
                      rng.NextBounded(2) == 0};
    IoStats io;
    AccessSelection sel = path->Select(range, /*want_oids=*/true, &io);
    std::vector<Oid> expected = ModelOids(model, range);
    ASSERT_EQ(sel.count, expected.size())
        << ConfigName(config) << " op " << op;
    ASSERT_EQ(SelectionOids(sel), expected)
        << ConfigName(config) << " op " << op;
  };

  for (int op = 0; op < 400; ++op) {
    uint32_t dice = rng.NextBounded(100);
    if (dice < 40) {
      check_select(op);
    } else if (dice < 65) {
      // INSERT: base append first, then the path (the facade's contract).
      int64_t value = rng.NextInRange(1, domain);
      bat->Append<int64_t>(value);
      Oid oid = bat->head_base() + bat->size() - 1;
      ASSERT_TRUE(path->Insert(Value(value), oid).ok()) << ConfigName(config);
      model[oid] = value;
    } else if (dice < 82) {
      if (model.empty()) continue;
      // DELETE a random live row.
      auto it = model.begin();
      std::advance(it, rng.NextBounded(static_cast<uint32_t>(model.size())));
      ASSERT_TRUE(path->Delete(it->first).ok())
          << ConfigName(config) << " op " << op;
      model.erase(it);
    } else {
      if (model.empty()) continue;
      // UPDATE a random live row: base write-through first, then the path.
      auto it = model.begin();
      std::advance(it, rng.NextBounded(static_cast<uint32_t>(model.size())));
      int64_t value = rng.NextInRange(1, domain);
      ASSERT_TRUE(
          bat->SetNumeric(static_cast<size_t>(it->first - bat->head_base()),
                          value)
              .ok());
      ASSERT_TRUE(path->Update(it->first, Value(value)).ok())
          << ConfigName(config) << " op " << op;
      it->second = value;
    }
  }

  // A manual flush must not change any answer, and must drain the deltas of
  // the stateful strategies.
  ASSERT_TRUE(path->FlushDeltas().ok()) << ConfigName(config);
  if (config.strategy != AccessStrategy::kScan) {
    EXPECT_EQ(path->pending_inserts(), 0u) << ConfigName(config);
    EXPECT_EQ(path->pending_deletes(), 0u) << ConfigName(config);
  }
  check_select(-1);
}

TEST(UpdatePathTest, MixedWorkloadParityAllStrategiesAndMergePolicies) {
  uint64_t seed = TestSeed(31);
  for (const AccessPathConfig& config : AllWriteConfigs()) {
    RunMixedSession(config, seed++);
  }
}

TEST(UpdatePathTest, DeleteBeforeFirstSelectIsHonored) {
  // Tombstones buffered before the lazy accelerator build must not
  // resurrect once the accelerator materializes from the (append-only)
  // base column.
  for (const AccessPathConfig& config : AllWriteConfigs()) {
    std::vector<int64_t> values{10, 20, 30, 40, 50};
    auto bat = Bat::FromVector(values, "c");
    auto path = CreateColumnAccessPath(bat, config);
    ASSERT_TRUE(path.ok());
    ASSERT_TRUE((*path)->Delete(1).ok()) << ConfigName(config);  // value 20
    EXPECT_GE((*path)->pending_deletes(), 1u) << ConfigName(config);
    IoStats io;
    AccessSelection sel =
        (*path)->Select(RangeBounds::Closed(15, 45), true, &io);
    EXPECT_EQ(sel.count, 2u) << ConfigName(config);
    EXPECT_EQ(SelectionOids(sel), (std::vector<Oid>{2, 3}))
        << ConfigName(config);
  }
}

TEST(UpdatePathTest, DeleteOfPendingInsertStaysDeadAcrossStrategies) {
  // Regression: cancelling a pending insert must not let a later Update()
  // resurrect the row through the merged-tuple branch, in any strategy.
  for (const AccessPathConfig& config : AllWriteConfigs()) {
    if (config.delta_merge.policy == DeltaMergePolicy::kImmediate) {
      continue;  // nothing stays pending under immediate merges
    }
    std::vector<int64_t> values{10, 20, 30};
    auto bat = Bat::FromVector(values, "c");
    auto path = CreateColumnAccessPath(bat, config);
    ASSERT_TRUE(path.ok());
    IoStats io;
    (void)(*path)->Select(RangeBounds::All(), true, &io);  // build
    bat->Append<int64_t>(40);
    ASSERT_TRUE((*path)->Insert(Value(int64_t{40}), 3).ok())
        << ConfigName(config);
    ASSERT_TRUE((*path)->Delete(3).ok()) << ConfigName(config);
    // The oid is dead: updates must not bring it back (scan paths keep no
    // pending state, so their no-op Update is exempt from the status check).
    if (config.strategy != AccessStrategy::kScan) {
      EXPECT_FALSE((*path)->Update(3, Value(int64_t{50})).ok())
          << ConfigName(config);
    }
    AccessSelection sel = (*path)->Select(RangeBounds::All(), true, &io);
    EXPECT_EQ(sel.count, 3u) << ConfigName(config);
    EXPECT_EQ(SelectionOids(sel), (std::vector<Oid>{0, 1, 2}))
        << ConfigName(config);
  }
}

TEST(UpdatePathTest, DeleteValidationIsUniformAcrossStrategies) {
  // Duplicate and out-of-range deletes must answer identically through
  // every strategy, before and after the lazy build — and must not blow up
  // the eventual tombstone replay.
  for (const AccessPathConfig& config : AllWriteConfigs()) {
    std::vector<int64_t> values{10, 20, 30};
    auto bat = Bat::FromVector(values, "c");
    auto path = CreateColumnAccessPath(bat, config);
    ASSERT_TRUE(path.ok());
    // Pre-build.
    ASSERT_TRUE((*path)->Delete(1).ok()) << ConfigName(config);
    EXPECT_TRUE((*path)->Delete(1).IsAlreadyExists()) << ConfigName(config);
    EXPECT_TRUE((*path)->Delete(99).IsNotFound()) << ConfigName(config);
    IoStats io;
    AccessSelection sel = (*path)->Select(RangeBounds::All(), true, &io);
    EXPECT_EQ(sel.count, 2u) << ConfigName(config);
    EXPECT_EQ(SelectionOids(sel), (std::vector<Oid>{0, 2}))
        << ConfigName(config);
    // Post-build.
    EXPECT_TRUE((*path)->Delete(1).IsAlreadyExists()) << ConfigName(config);
    EXPECT_TRUE((*path)->Delete(99).IsNotFound()) << ConfigName(config);
    ASSERT_TRUE((*path)->Delete(0).ok()) << ConfigName(config);
    sel = (*path)->Select(RangeBounds::All(), true, &io);
    EXPECT_EQ(sel.count, 1u) << ConfigName(config);
  }
}

TEST(UpdatePathTest, UpdateKeepsOidStable) {
  for (const AccessPathConfig& config : AllWriteConfigs()) {
    std::vector<int64_t> values{10, 20, 30};
    auto bat = Bat::FromVector(values, "c");
    auto path = CreateColumnAccessPath(bat, config);
    ASSERT_TRUE(path.ok());
    IoStats io;
    // Materialize the accelerator, then move oid 1 to the other end of the
    // value domain.
    (void)(*path)->Select(RangeBounds::All(), true, &io);
    ASSERT_TRUE(bat->SetNumeric(1, 999).ok());
    ASSERT_TRUE((*path)->Update(1, Value(int64_t{999})).ok()) << ConfigName(config);
    AccessSelection gone =
        (*path)->Select(RangeBounds::Closed(15, 25), true, &io);
    EXPECT_EQ(gone.count, 0u) << ConfigName(config);
    AccessSelection moved =
        (*path)->Select(RangeBounds::AtLeast(900), true, &io);
    EXPECT_EQ(moved.count, 1u) << ConfigName(config);
    EXPECT_EQ(SelectionOids(moved), (std::vector<Oid>{1}))
        << ConfigName(config);
  }
}

TEST(UpdatePathTest, ImmediatePolicyLeavesNoPendingAfterWrites) {
  AccessPathConfig config;
  config.strategy = AccessStrategy::kCrack;
  config.delta_merge.policy = DeltaMergePolicy::kImmediate;
  auto bat = Bat::FromVector(std::vector<int64_t>{5, 3, 8, 1, 9}, "c");
  auto path = CreateColumnAccessPath(bat, config);
  ASSERT_TRUE(path.ok());
  IoStats io;
  (void)(*path)->Select(RangeBounds::AtMost(5), true, &io);  // build
  bat->Append<int64_t>(7);
  ASSERT_TRUE((*path)->Insert(Value(int64_t{7}), 5).ok());
  EXPECT_EQ((*path)->pending_inserts(), 0u);
  EXPECT_EQ((*path)->merges_performed(), 1u);
  ASSERT_TRUE((*path)->Delete(0).ok());
  EXPECT_EQ((*path)->pending_deletes(), 0u);
  EXPECT_EQ((*path)->merges_performed(), 2u);
}

TEST(UpdatePathTest, RipplePolicyDefersMergeToSelect) {
  AccessPathConfig config;
  config.strategy = AccessStrategy::kCrack;
  config.delta_merge.policy = DeltaMergePolicy::kRippleOnSelect;
  auto bat = Bat::FromVector(std::vector<int64_t>{5, 3, 8, 1, 9}, "c");
  auto path = CreateColumnAccessPath(bat, config);
  ASSERT_TRUE(path.ok());
  IoStats io;
  (void)(*path)->Select(RangeBounds::AtMost(5), true, &io);  // build
  bat->Append<int64_t>(7);
  ASSERT_TRUE((*path)->Insert(Value(int64_t{7}), 5).ok());
  EXPECT_EQ((*path)->pending_inserts(), 1u);  // writes never merge
  EXPECT_EQ((*path)->merges_performed(), 0u);
  AccessSelection sel = (*path)->Select(RangeBounds::All(), true, &io);
  EXPECT_EQ(sel.count, 6u);
  EXPECT_EQ((*path)->pending_inserts(), 0u);  // the select folded the delta
  EXPECT_EQ((*path)->merges_performed(), 1u);
  EXPECT_TRUE(sel.contiguous);  // and could answer zero-copy again
}

TEST(UpdatePathTest, CoarseCountOnlySelectKeepsBaseHitsUnderPendingInserts) {
  // Regression: a coarse fuzzy-edge answer is an oid-list; a count-only
  // select used to lose the base hits when pending inserts forced the
  // delta overlay.
  AccessPathConfig config;
  config.strategy = AccessStrategy::kCrack;
  config.policy.policy = CrackPolicy::kCoarse;
  config.policy.min_piece_size = 1024;  // > n: never cracks, always fuzzy
  config.delta_merge.policy = DeltaMergePolicy::kThreshold;
  config.delta_merge.threshold_fraction = 0.5;  // keep the delta pending
  std::vector<int64_t> values(100);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<int64_t>(i + 1);
  }
  auto bat = Bat::FromVector(values, "c");
  auto path = CreateColumnAccessPath(bat, config);
  ASSERT_TRUE(path.ok());
  IoStats io;
  AccessSelection sel =
      (*path)->Select(RangeBounds::Closed(10, 20), /*want_oids=*/false, &io);
  EXPECT_EQ(sel.count, 11u);
  bat->Append<int64_t>(15);
  ASSERT_TRUE((*path)->Insert(Value(int64_t{15}), 100).ok());
  ASSERT_EQ((*path)->pending_inserts(), 1u);
  sel = (*path)->Select(RangeBounds::Closed(10, 20), /*want_oids=*/false, &io);
  EXPECT_EQ(sel.count, 12u);  // 11 base hits + the pending insert
  sel = (*path)->Select(RangeBounds::Closed(10, 20), /*want_oids=*/true, &io);
  EXPECT_EQ(sel.count, 12u);
  EXPECT_EQ(SelectionOids(sel).size(), 12u);
}

TEST(UpdatePathTest, DoubleColumnsSelectAndWrite) {
  AccessPathConfig config;
  config.strategy = AccessStrategy::kCrack;
  auto bat =
      Bat::FromVector(std::vector<double>{1.5, 2.5, 3.5, 4.5, 5.5}, "f");
  auto path = CreateColumnAccessPath(bat, config);
  ASSERT_TRUE(path.ok());
  IoStats io;
  // int64-widened bounds select over the double domain.
  AccessSelection sel =
      (*path)->Select(RangeBounds::Closed(2, 4), true, &io);
  EXPECT_EQ(sel.count, 2u);  // 2.5, 3.5
  bat->Append<double>(3.0);
  ASSERT_TRUE((*path)->Insert(Value(3.0), 5).ok());
  sel = (*path)->Select(RangeBounds::Closed(2, 4), true, &io);
  EXPECT_EQ(sel.count, 3u);
  ASSERT_TRUE((*path)->Delete(1).ok());  // 2.5
  sel = (*path)->Select(RangeBounds::Closed(2, 4), true, &io);
  EXPECT_EQ(sel.count, 2u);
}

// ---------------------------------------------------------------------------
// Facade-level parity (WHERE-driven DML, tombstone-aware scans).
// ---------------------------------------------------------------------------

struct FacadeRow {
  int64_t c0;
  int64_t c1;
  bool live = true;
};

class UpdateFacadeTest
    : public ::testing::TestWithParam<
          std::tuple<AccessStrategy, DeltaMergePolicy>> {};

TEST_P(UpdateFacadeTest, RandomizedDmlMatchesOracle) {
  auto [strategy, merge] = GetParam();
  uint64_t seed = TestSeed(407) + static_cast<uint64_t>(strategy) * 13 +
                  static_cast<uint64_t>(merge) * 7;
  SCOPED_TRACE("seed=" + std::to_string(seed) +
               " (rerun with CRACKSTORE_TEST_SEED)");
  AdaptiveStoreOptions opts;
  opts.strategy = strategy;
  opts.delta_merge.policy = merge;
  opts.delta_merge.threshold_fraction = 0.05;
  AdaptiveStore store(opts);

  const size_t n0 = 800;
  const int64_t domain = 1000;
  Pcg32 rng(seed);
  auto rel = *Relation::Create(
      "R", Schema({{"c0", ValueType::kInt64}, {"c1", ValueType::kInt64}}));
  std::vector<FacadeRow> rows;
  for (size_t i = 0; i < n0; ++i) {
    FacadeRow row{rng.NextInRange(1, domain), rng.NextInRange(1, domain)};
    ASSERT_TRUE(rel->AppendRow({Value(row.c0), Value(row.c1)}).ok());
    rows.push_back(row);
  }
  ASSERT_TRUE(store.AddTable(rel).ok());

  auto oracle_count = [&](const RangeBounds& r0, const RangeBounds* r1) {
    uint64_t count = 0;
    for (const FacadeRow& row : rows) {
      if (!row.live) continue;
      if (!r0.Contains(row.c0)) continue;
      if (r1 != nullptr && !r1->Contains(row.c1)) continue;
      ++count;
    }
    return count;
  };

  auto random_range = [&]() {
    int64_t lo = rng.NextInRange(-20, domain + 20);
    return RangeBounds::Closed(lo, lo + rng.NextInRange(0, domain / 2));
  };

  for (int op = 0; op < 120; ++op) {
    uint32_t dice = rng.NextBounded(100);
    if (dice < 35) {
      RangeBounds range = random_range();
      auto qr = store.SelectRange("R", "c0", range, Delivery::kView);
      ASSERT_TRUE(qr.ok());
      ASSERT_EQ(qr->count, oracle_count(range, nullptr)) << "op " << op;
      ASSERT_EQ(qr->CollectOids().size(), qr->count) << "op " << op;
    } else if (dice < 50) {
      RangeBounds r0 = random_range();
      RangeBounds r1 = random_range();
      auto qr = store.SelectConjunction("R", {{"c0", r0}, {"c1", r1}});
      ASSERT_TRUE(qr.ok());
      ASSERT_EQ(qr->count, oracle_count(r0, &r1)) << "op " << op;
    } else if (dice < 70) {
      FacadeRow row{rng.NextInRange(1, domain), rng.NextInRange(1, domain)};
      auto qr = store.Insert("R", {Value(row.c0), Value(row.c1)});
      ASSERT_TRUE(qr.ok());
      EXPECT_EQ(qr->count, 1u);
      rows.push_back(row);
    } else if (dice < 85) {
      // DELETE a narrow c0 band.
      int64_t lo = rng.NextInRange(1, domain);
      RangeBounds range = RangeBounds::Closed(lo, lo + 5);
      auto qr = store.Delete("R", {{"c0", range}});
      ASSERT_TRUE(qr.ok());
      uint64_t expected = 0;
      for (FacadeRow& row : rows) {
        if (row.live && range.Contains(row.c0)) {
          row.live = false;
          ++expected;
        }
      }
      ASSERT_EQ(qr->count, expected) << "op " << op;
    } else {
      // UPDATE c1 of a narrow c0 band.
      int64_t lo = rng.NextInRange(1, domain);
      RangeBounds range = RangeBounds::Closed(lo, lo + 5);
      int64_t set = rng.NextInRange(1, domain);
      auto qr = store.Update("R", {{"c1", Value(set)}}, {{"c0", range}});
      ASSERT_TRUE(qr.ok());
      uint64_t expected = 0;
      for (FacadeRow& row : rows) {
        if (row.live && range.Contains(row.c0)) {
          row.c1 = set;
          ++expected;
        }
      }
      ASSERT_EQ(qr->count, expected) << "op " << op;
    }
  }

  // Terminal accounting: live row count and full-range selects agree.
  uint64_t live = 0;
  for (const FacadeRow& row : rows) live += row.live ? 1 : 0;
  ASSERT_EQ(*store.LiveRowCount("R"), live);
  auto all = store.SelectRange("R", "c0", RangeBounds::All());
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->count, live);
  EXPECT_EQ(store.LiveOids("R")->size(), live);
}

INSTANTIATE_TEST_SUITE_P(
    StrategyByMergePolicy, UpdateFacadeTest,
    ::testing::Combine(
        ::testing::Values(AccessStrategy::kScan, AccessStrategy::kCrack,
                          AccessStrategy::kSort),
        ::testing::Values(DeltaMergePolicy::kImmediate,
                          DeltaMergePolicy::kThreshold,
                          DeltaMergePolicy::kRippleOnSelect)),
    [](const auto& info) {
      return std::string(AccessStrategyName(std::get<0>(info.param))) + "_" +
             DeltaMergePolicyName(std::get<1>(info.param));
    });

TEST(UpdateFacadeTest, InsertCoercesNumericTypes) {
  AdaptiveStore store;
  auto rel = *Relation::Create(
      "T", Schema({{"i32", ValueType::kInt32},
                   {"i64", ValueType::kInt64},
                   {"f", ValueType::kFloat64}}));
  ASSERT_TRUE(store.AddTable(rel).ok());
  ASSERT_TRUE(
      store.Insert("T", {Value(int64_t{7}), Value(int64_t{8}), Value(int64_t{9})})
          .ok());
  EXPECT_EQ(rel->num_rows(), 1u);
  EXPECT_EQ(rel->column(size_t{0})->Get<int32_t>(0), 7);
  EXPECT_EQ(rel->column(size_t{2})->Get<double>(0), 9.0);
  // Overflowing an int32 column is rejected before any column mutates.
  EXPECT_FALSE(store
                   .Insert("T", {Value(int64_t{1} << 40), Value(int64_t{0}),
                                 Value(int64_t{0})})
                   .ok());
  EXPECT_EQ(rel->num_rows(), 1u);
}

TEST(UpdateFacadeTest, UpdateRejectsMistypedSetValues) {
  AdaptiveStore store;
  auto rel = *Relation::Create(
      "T", Schema({{"i32", ValueType::kInt32},
                   {"i64", ValueType::kInt64},
                   {"f", ValueType::kFloat64}}));
  ASSERT_TRUE(
      rel->AppendRow({Value(int32_t{1}), Value(int64_t{2}), Value(3.0)}).ok());
  ASSERT_TRUE(store.AddTable(rel).ok());
  // Doubles on integer columns would silently truncate (and overflow into
  // UB for huge magnitudes): rejected before anything mutates.
  EXPECT_TRUE(store.Update("T", {{"i64", Value(2.7)}}, {}).status()
                  .IsTypeMismatch());
  EXPECT_TRUE(store.Update("T", {{"i32", Value(1e300)}}, {}).status()
                  .IsTypeMismatch());
  EXPECT_TRUE(store.Update("T", {{"i32", Value(std::string("x"))}}, {})
                  .status()
                  .IsTypeMismatch());
  // Float columns take both families; the fraction survives.
  ASSERT_TRUE(store.Update("T", {{"f", Value(2.5)}}, {}).ok());
  EXPECT_DOUBLE_EQ(rel->column(size_t{2})->Get<double>(0), 2.5);
  ASSERT_TRUE(store.Update("T", {{"f", Value(int64_t{4})}}, {}).ok());
  EXPECT_DOUBLE_EQ(rel->column(size_t{2})->Get<double>(0), 4.0);
}

TEST(UpdateFacadeTest, DoubleColumnThroughFacade) {
  AdaptiveStore store;
  auto rel = *Relation::Create("T", Schema({{"f", ValueType::kFloat64}}));
  for (int i = 1; i <= 10; ++i) {
    ASSERT_TRUE(rel->AppendRow({Value(i + 0.5)}).ok());
  }
  ASSERT_TRUE(store.AddTable(rel).ok());
  auto qr = store.SelectRange("T", "f", RangeBounds::Closed(3, 7));
  ASSERT_TRUE(qr.ok());
  EXPECT_EQ(qr->count, 4u);  // 3.5 4.5 5.5 6.5
  ASSERT_TRUE(store.Insert("T", {Value(int64_t{5})}).ok());
  qr = store.SelectRange("T", "f", RangeBounds::Closed(3, 7));
  ASSERT_TRUE(qr.ok());
  EXPECT_EQ(qr->count, 5u);
  ASSERT_TRUE(store.Delete("T", {{"f", RangeBounds::Closed(3, 4)}}).ok());
  qr = store.SelectRange("T", "f", RangeBounds::Closed(3, 7));
  ASSERT_TRUE(qr.ok());
  EXPECT_EQ(qr->count, 4u);
  // A fractional value must reach the accelerator's delta intact: [2, 2]
  // widens to the doubles [2.0, 2.0], which 2.5 is not in (an int64-widened
  // write interface would have truncated it to 2.0 and matched).
  ASSERT_TRUE(store.Insert("T", {Value(2.5)}).ok());
  qr = store.SelectRange("T", "f", RangeBounds::Closed(2, 2));
  ASSERT_TRUE(qr.ok());
  EXPECT_EQ(qr->count, 0u);
  qr = store.SelectRange("T", "f", RangeBounds::Closed(2, 3));
  ASSERT_TRUE(qr.ok());
  EXPECT_EQ(qr->count, 2u);  // the original 2.5 plus the inserted 2.5
}

TEST(UpdateFacadeTest, MarkDeletedSurvivesStoreHandOver) {
  AdaptiveStore first;
  auto rel = *Relation::Create("T", Schema({{"v", ValueType::kInt64}}));
  for (int64_t i = 1; i <= 10; ++i) ASSERT_TRUE(rel->AppendRow({Value(i)}).ok());
  ASSERT_TRUE(first.AddTable(rel).ok());
  ASSERT_TRUE(first.Delete("T", {{"v", RangeBounds::AtMost(3)}}).ok());
  ASSERT_EQ(*first.LiveRowCount("T"), 7u);

  AdaptiveStore second;
  ASSERT_TRUE(second.AddTable(rel).ok());
  ASSERT_TRUE(second.MarkDeleted("T", *first.DeletedOids("T")).ok());
  EXPECT_EQ(*second.LiveRowCount("T"), 7u);
  auto qr = second.SelectRange("T", "v", RangeBounds::All());
  ASSERT_TRUE(qr.ok());
  EXPECT_EQ(qr->count, 7u);
}

// ---------------------------------------------------------------------------
// Galloping intersection.
// ---------------------------------------------------------------------------

TEST(OidSetOpsTest, GallopingMatchesLinearOnRandomLists) {
  Pcg32 rng(99);
  for (int round = 0; round < 30; ++round) {
    std::vector<Oid> a, b;
    size_t na = 1 + rng.NextBounded(40);
    size_t nb = 1 + rng.NextBounded(4000);
    Oid at = 0;
    for (size_t i = 0; i < na; ++i) a.push_back(at += 1 + rng.NextBounded(200));
    at = 0;
    for (size_t i = 0; i < nb; ++i) b.push_back(at += 1 + rng.NextBounded(4));
    std::vector<Oid> linear = IntersectSortedLinear(a, b);
    EXPECT_EQ(IntersectSortedGalloping(a, b), linear) << "round " << round;
    EXPECT_EQ(IntersectSorted(a, b), linear) << "round " << round;
    EXPECT_EQ(IntersectSorted(b, a), linear) << "round " << round;
  }
}

TEST(OidSetOpsTest, EdgeCases) {
  std::vector<Oid> empty;
  std::vector<Oid> some{1, 5, 9};
  EXPECT_TRUE(IntersectSorted(empty, some).empty());
  EXPECT_TRUE(IntersectSorted(some, empty).empty());
  EXPECT_EQ(IntersectSorted(some, some), some);
  EXPECT_TRUE(IntersectSortedGalloping(std::vector<Oid>{100},
                                       std::vector<Oid>{1, 2, 3})
                  .empty());
  EXPECT_EQ(IntersectSortedGalloping(std::vector<Oid>{3},
                                     std::vector<Oid>{1, 2, 3}),
            (std::vector<Oid>{3}));
  EXPECT_TRUE(ShouldGallop(1, 100));
  EXPECT_FALSE(ShouldGallop(50, 100));
  EXPECT_FALSE(ShouldGallop(0, 100));
}

}  // namespace
}  // namespace crackstore
