// Copyright 2026 The CrackStore Authors
//
// crackstore_shell: a small interactive shell over the AdaptiveStore. Reads
// one command per line from stdin (pipe a script or type interactively):
//
//   create tapestry R 1000000 2        # build a permutation table
//   create strings P 100000 64         # (s:string, v:int64) sample table
//   SELECT COUNT(*) FROM P WHERE s < 'k000032'   # strings crack too
//   select R c0 1000 2000              # crack-select a closed range
//   select R c0 1000 2000 materialize  # ... materializing the rows
//   where R c0 < 500                   # one-sided predicates (< <= > >= =)
//   and R c0 100 900 c1 200 800        # conjunctive selection
//   join R c0 S c0                     # ^-cracked equi-join (count)
//   groupby R c0 c1 sum                # Ω-cracked aggregate
//   INSERT INTO R VALUES (7, 8)        # DML through the access paths
//   DELETE FROM R WHERE c0 < 10        # (WHERE predicates crack too)
//   UPDATE R SET c1 = 5 WHERE c0 = 7
//   BEGIN / COMMIT / ROLLBACK          # snapshot transactions (or: txn ...)
//   txn status                         # the session's transaction state
//   vacuum                             # reclaim versions below low-water
//   EXPLAIN ANALYZE SELECT ...         # run + per-span crack trace report
//   SHOW STATS LIKE 'crack%'           # metrics registry through SQL
//   deltas [R [c0]]                    # pending inserts/tombstones/merges
//   flush R c0                         # fold a column's deltas now
//   pieces R c0                        # piece table of the cracker index
//   lineage                            # Graphviz dump of the lineage DAG
//   stats [pattern|reset]              # cost counters + metrics registry
//   trace on                           # print a crack trace per statement
//   strategy sort                      # rebuild the store: scan|crack|sort
//   policy auto 0.1                    # live policy switch (SHOW POLICY)
//   mergepolicy ripple                 # immediate|threshold|ripple deltas
//   CHECKPOINT                         # snapshot base state, truncate WAL
//   tables / help / quit
//
// Startup flags open a durable database instead of an in-memory one:
//
//   crackstore_shell --db=/path/to/db [--fsync=off|commit|interval]
//                    [--fsync-interval=SECONDS] [--checkpoint-mb=MB]
//                    [--autovacuum=VERSIONS]
//
// With --db the shell recovers whatever the directory holds (checkpoint +
// commit-log replay) and every committed statement survives a restart.
// `strategy` then reopens the database from disk rather than handing tables
// over in memory — the accelerators are disposable, the base state is not.
//
// Exit status is non-zero if any command failed (useful for scripted runs).

#include <unistd.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/adaptive_store.h"
#include "core/task_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sql/executor.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "workload/tapestry.h"

namespace crackstore {
namespace {

class Shell {
 public:
  explicit Shell(DbOptions base) : base_options_(std::move(base)) {}

  /// Builds (or, with --db, recovers) the first store. Call once before
  /// Execute; errors here are fatal to the session.
  Status Init() { return Reset(base_options_.strategy); }

  /// Executes one command line; returns false only for `quit`.
  bool Execute(const std::string& line) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty() || cmd[0] == '#') return true;
    if (cmd == "quit" || cmd == "exit") return false;
    Status status = Dispatch(cmd, &in);
    if (!status.ok()) {
      std::printf("error: %s\n", status.ToString().c_str());
      ++errors_;
    }
    return true;
  }

  int errors() const { return errors_; }

 private:
  Status Reset(AccessStrategy strategy) {
    return Reset(strategy, policy_, delta_merge_);
  }

  Status Reset(AccessStrategy strategy, CrackPolicy policy,
               DeltaMergeOptions delta_merge) {
    DbOptions opts = base_options_;
    opts.strategy = strategy;
    opts.policy.policy = policy;
    opts.policy.progressive_budget = budget_;
    opts.delta_merge = delta_merge;
    opts.concurrent = concurrent_;
    std::vector<std::shared_ptr<Relation>> tables;
    std::vector<std::pair<std::string, std::vector<Oid>>> dead;
    if (store_ != nullptr) {
      if (session_ != nullptr && session_->in_txn()) {
        // The transaction's version stamps live in the store being torn
        // down; it cannot survive the hand-over.
        std::printf("note: open transaction rolled back by the reset\n");
        (void)session_->Close();
      }
      if (store_->durable()) {
        // A durable store reloads its state from disk: checkpoint + reopen
        // instead of the in-memory table hand-over (which could not carry
        // the commit log anyway).
        CRACK_RETURN_NOT_OK(store_->Close());
      } else {
        for (const std::string& name : store_->TableNames()) {
          tables.push_back(*store_->table(name));
          // The base relations are append-only; deleted rows must be
          // re-marked on the fresh store or they would resurrect.
          auto oids = store_->DeletedOids(name);
          if (oids.ok() && !oids->empty()) dead.emplace_back(name, *oids);
        }
      }
      store_.reset();
    }
    CRACK_ASSIGN_OR_RETURN(store_, AdaptiveStore::Open(opts));
    session_ = std::make_unique<sql::SqlSession>(store_.get());
    for (auto& t : tables) (void)store_->AddTable(std::move(t));
    for (auto& [name, oids] : dead) (void)store_->MarkDeleted(name, oids);
    strategy_ = strategy;
    policy_ = policy;
    delta_merge_ = delta_merge;
    const auto& ri = store_->recovery_info();
    if (ri.recovered) {
      std::printf(
          "opened %s: %zu table(s) from checkpoint, %llu commit(s) "
          "replayed%s (%.1f ms)\n",
          base_options_.path.c_str(), ri.checkpoint_tables,
          static_cast<unsigned long long>(ri.replayed_commits),
          ri.torn_tail ? ", torn log tail truncated" : "",
          ri.replay_seconds * 1e3);
    }
    return Status::OK();
  }

  Status Dispatch(const std::string& cmd, std::istringstream* in) {
    if (cmd == "help") return Help();
    if (cmd == "sql" || cmd == "SELECT" || cmd == "select" ||
        cmd == "Select") {
      // `sql SELECT ...` or a bare SELECT statement... but `select` without
      // SQL syntax is the positional command; disambiguate on the next
      // token: SQL always continues with `*`, `COUNT`, or a column list
      // followed by FROM.
      return Sql(cmd, in);
    }
    std::string upper = cmd;
    for (char& ch : upper) ch = static_cast<char>(std::toupper(ch));
    if (upper == "INSERT" || upper == "DELETE" || upper == "UPDATE" ||
        upper == "BEGIN" || upper == "COMMIT" || upper == "ROLLBACK" ||
        upper == "ABORT" || upper == "VACUUM" || upper == "SET" ||
        upper == "CHECKPOINT") {
      // Bare DML / transaction statements route straight to the SQL
      // frontend (the session tracks the open transaction).
      std::string rest;
      std::getline(*in, rest);
      return RunSql(upper + rest);
    }
    if (upper == "EXPLAIN" || upper == "SHOW") {
      // SQL `EXPLAIN ANALYZE <stmt>` / `SHOW STATS [LIKE ...]` vs the
      // shell's positional `explain <table> [col]`: peek the next token.
      std::string rest;
      std::getline(*in, rest);
      std::istringstream peek(rest);
      std::string next;
      peek >> next;
      for (char& ch : next) ch = static_cast<char>(std::toupper(ch));
      if ((upper == "EXPLAIN" && next == "ANALYZE") ||
          (upper == "SHOW" && (next == "STATS" || next == "POLICY"))) {
        return RunSql(upper + rest);
      }
      if (upper == "EXPLAIN") {
        std::istringstream positional(rest);
        return Explain(&positional);
      }
      return Status::InvalidArgument("unknown command '" + cmd +
                                     "' (try: help)");
    }
    if (cmd == "txn") return Txn(in);
    if (cmd == "vacuum") return RunSql("VACUUM");
    if (cmd == "checkpoint") return RunSql("CHECKPOINT");
    if (cmd == "create") return Create(in);
    if (cmd == "tables") return Tables();
    if (cmd == "select") return Select(in);
    if (cmd == "where") return Where(in);
    if (cmd == "and") return Conjunction(in);
    if (cmd == "join") return Join(in);
    if (cmd == "groupby") return GroupBy(in);
    if (cmd == "pieces") return Pieces(in);
    if (cmd == "deltas") return Deltas(in);
    if (cmd == "flush") return Flush(in);
    if (cmd == "lineage") return Lineage();
    if (cmd == "stats") return Stats(in);
    if (cmd == "trace") return Trace(in);
    if (cmd == "strategy") return Strategy(in);
    if (cmd == "policy") return Policy(in);
    if (cmd == "mergepolicy") return MergePolicyCmd(in);
    if (cmd == "threads") return Threads(in);
    return Status::InvalidArgument("unknown command '" + cmd +
                                   "' (try: help)");
  }

  Status Sql(const std::string& first, std::istringstream* in) {
    std::string rest;
    std::getline(*in, rest);
    if (first == "sql") {
      return RunSql(rest);
    }
    // A bare SELECT: SQL statements always contain FROM; the positional
    // command never does.
    if (rest.find("FROM") != std::string::npos ||
        rest.find("from") != std::string::npos) {
      return RunSql(first + rest);
    }
    std::istringstream positional(rest);
    return Select(&positional);
  }

  Status RunSql(const std::string& text) {
    if (!trace_) {
      CRACK_ASSIGN_OR_RETURN(sql::QueryOutput out, session_->ExecuteSql(text));
      std::fputs(sql::FormatOutput(out).c_str(), stdout);
      return Status::OK();
    }
    obs::QueryTrace trace;
    obs::ExecContext ctx;
    ctx.trace = &trace;
    CRACK_ASSIGN_OR_RETURN(sql::QueryOutput out,
                           session_->ExecuteSql(text, ctx));
    std::fputs(sql::FormatOutput(out).c_str(), stdout);
    std::fputs(trace.Render(out.io, out.seconds).c_str(), stdout);
    return Status::OK();
  }

  /// `txn begin|commit|abort|status` — the command-style face of the SQL
  /// transaction statements, plus session introspection.
  Status Txn(std::istringstream* in) {
    std::string sub;
    *in >> sub;
    if (sub == "begin") return RunSql("BEGIN");
    if (sub == "commit") return RunSql("COMMIT");
    if (sub == "abort" || sub == "rollback") return RunSql("ROLLBACK");
    if (sub == "status" || sub.empty()) {
      if (session_->in_txn()) {
        std::printf("in transaction %llu (snapshot isolation; COMMIT or "
                    "ROLLBACK to end)\n",
                    static_cast<unsigned long long>(session_->txn()));
      } else {
        std::printf("auto-commit (no open transaction); %zu transaction(s) "
                    "active store-wide\n",
                    store_->txn_manager().active_count());
      }
      return Status::OK();
    }
    return Status::InvalidArgument("usage: txn <begin|commit|abort|status>");
  }

  Status Help() {
    std::printf(
        "commands:\n"
        "  create tapestry <name> <rows> <cols> [seed]\n"
        "  create strings <name> <rows> [cardinality] [seed]   (s:string, v:int64)\n"
        "  SELECT ... FROM ... [WHERE|JOIN|GROUP BY] (SQL subset; or sql <stmt>)\n"
        "    literals: integers or 'strings' ('' escapes a quote), e.g.\n"
        "    SELECT COUNT(*) FROM P WHERE s BETWEEN 'a' AND 'k'\n"
        "  INSERT INTO <t> VALUES (v, ...) | DELETE FROM <t> [WHERE ...]\n"
        "  UPDATE <t> SET <col> = v [, ...] [WHERE ...]\n"
        "  BEGIN | COMMIT | ROLLBACK      (snapshot transactions; also:\n"
        "  txn <begin|commit|abort|status>; reads inside a txn keep seeing\n"
        "  its snapshot, write-write conflicts abort the second committer)\n"
        "  vacuum | VACUUM    (reclaim versions below the low-water snapshot)\n"
        "  checkpoint | CHECKPOINT   (durable stores: snapshot base state,\n"
        "      truncate the commit log; error on an in-memory store)\n"
        "  select <table> <col> <lo> <hi> [count|view|materialize]\n"
        "  where <table> <col> <op:< <= > >= => <value>\n"
        "  and <table> <col> <lo> <hi> <col> <lo> <hi> ...\n"
        "  join <t1> <c1> <t2> <c2>\n"
        "  groupby <table> <group-col> <agg-col> <count|sum|min|max>\n"
        "  EXPLAIN ANALYZE <stmt>  (run + per-span crack trace report)\n"
        "  SHOW STATS [LIKE 'pat'] (metrics registry; %% and _ wildcards)\n"
        "  SHOW POLICY             (per-column policy/pattern/switches)\n"
        "  SET POLICY <name> [BUDGET <f>]   (runtime switch, SQL face)\n"
        "  pieces <table> <col> | explain <table> <col> | lineage\n"
        "  stats [pattern]        (summary + metrics registry; stats reset)\n"
        "  trace <on|off>         (crack trace after every SQL statement)\n"
        "  deltas [table [col]]   (pending inserts/tombstones/merges)\n"
        "  flush <table> <col>    (fold the column's deltas now)\n"
        "  tables\n"
        "  strategy <scan|crack|sort>   (keeps tables, drops accelerators)\n"
        "  policy <standard|stochastic|coarse|auto|progressive> [budget]\n"
        "      (crack pivot discipline; live switch, accelerators kept)\n"
        "  mergepolicy <immediate|threshold|ripple> [fraction]\n"
        "  threads <n>   (task-pool size; n>1 turns on the concurrent store)\n"
        "  quit\n");
    return Status::OK();
  }

  Status Create(std::istringstream* in) {
    std::string kind;
    *in >> kind;
    if (kind == "tapestry") return CreateTapestry(in);
    if (kind == "strings") return CreateStrings(in);
    return Status::InvalidArgument(
        "usage: create tapestry <name> <rows> [cols] [seed]  |  "
        "create strings <name> <rows> [cardinality] [seed]");
  }

  Status CreateTapestry(std::istringstream* in) {
    std::string name;
    uint64_t rows = 0, cols = 2, seed = 20040901;
    *in >> name >> rows;
    if (!(*in >> cols)) cols = 2;
    if (!(*in >> seed)) seed = 20040901;
    if (name.empty() || rows == 0) {
      return Status::InvalidArgument(
          "usage: create tapestry <name> <rows> [cols] [seed]");
    }
    TapestryOptions opts;
    opts.num_rows = rows;
    opts.num_columns = cols;
    opts.seed = seed;
    CRACK_ASSIGN_OR_RETURN(auto rel, BuildTapestry(name, opts));
    CRACK_RETURN_NOT_OK(store_->AddTable(rel));
    std::printf("created %s (%llu rows, %llu permutation columns)\n",
                name.c_str(), static_cast<unsigned long long>(rows),
                static_cast<unsigned long long>(cols));
    return Status::OK();
  }

  /// A two-column (s:string, v:int64) table whose string attribute draws
  /// from `cardinality` zero-padded keys — the playground for the
  /// dictionary-encoded access paths (string predicates crack the code
  /// column; watch with `explain <name> s`).
  Status CreateStrings(std::istringstream* in) {
    std::string name;
    uint64_t rows = 0, cardinality = 64, seed = 20040901;
    *in >> name >> rows;
    if (!(*in >> cardinality)) cardinality = 64;
    if (!(*in >> seed)) seed = 20040901;
    if (name.empty() || rows == 0 || cardinality == 0) {
      return Status::InvalidArgument(
          "usage: create strings <name> <rows> [cardinality] [seed]");
    }
    CRACK_ASSIGN_OR_RETURN(
        auto rel,
        Relation::Create(name, Schema({{"s", ValueType::kString},
                                       {"v", ValueType::kInt64}})));
    Pcg32 rng(seed);
    for (uint64_t i = 0; i < rows; ++i) {
      std::string key = StrFormat(
          "k%06llu", static_cast<unsigned long long>(rng.NextBounded(
                         static_cast<uint32_t>(cardinality))));
      Status st = rel->AppendRow(
          {Value(std::move(key)),
           Value(rng.NextInRange(1, static_cast<int64_t>(rows)))});
      CRACK_RETURN_NOT_OK(st);
    }
    CRACK_RETURN_NOT_OK(store_->AddTable(rel));
    std::printf("created %s (%llu rows, s:string over %llu distinct keys, "
                "v:int64)\n",
                name.c_str(), static_cast<unsigned long long>(rows),
                static_cast<unsigned long long>(cardinality));
    return Status::OK();
  }

  Status Tables() {
    for (const std::string& name : store_->TableNames()) {
      auto rel = *store_->table(name);
      std::printf("%s %s  (%zu rows)\n", name.c_str(),
                  rel->schema().ToString().c_str(), rel->num_rows());
    }
    return Status::OK();
  }

  void PrintResult(const QueryResult& r) {
    std::printf("count=%llu  time=%.3f ms  read=%llu written=%llu cracks=%llu\n",
                static_cast<unsigned long long>(r.count), r.seconds * 1e3,
                static_cast<unsigned long long>(r.io.tuples_read),
                static_cast<unsigned long long>(r.io.tuples_written),
                static_cast<unsigned long long>(r.io.cracks));
    if (r.materialized != nullptr) {
      std::printf("materialized '%s' (%zu rows)\n",
                  r.materialized->name().c_str(),
                  r.materialized->num_rows());
    }
  }

  Status Select(std::istringstream* in) {
    std::string table, column, mode = "count";
    int64_t lo = 0, hi = 0;
    if (!(*in >> table >> column >> lo >> hi)) {
      return Status::InvalidArgument(
          "usage: select <table> <col> <lo> <hi> [count|view|materialize]");
    }
    *in >> mode;
    Delivery delivery = mode == "materialize" ? Delivery::kMaterialize
                        : mode == "view"      ? Delivery::kView
                                              : Delivery::kCount;
    CRACK_ASSIGN_OR_RETURN(
        QueryResult r,
        store_->SelectRange(table, column, RangeBounds::Closed(lo, hi),
                            delivery));
    PrintResult(r);
    return Status::OK();
  }

  Status Where(std::istringstream* in) {
    std::string table, column, op;
    int64_t v = 0;
    if (!(*in >> table >> column >> op >> v)) {
      return Status::InvalidArgument(
          "usage: where <table> <col> <op> <value>   op in {< <= > >= =}");
    }
    RangeBounds range;
    if (op == "<") {
      range = RangeBounds::LessThan(v);
    } else if (op == "<=") {
      range = RangeBounds::AtMost(v);
    } else if (op == ">") {
      range = RangeBounds::GreaterThan(v);
    } else if (op == ">=") {
      range = RangeBounds::AtLeast(v);
    } else if (op == "=" || op == "==") {
      range = RangeBounds::Equal(v);
    } else {
      return Status::InvalidArgument("unknown operator: " + op);
    }
    CRACK_ASSIGN_OR_RETURN(QueryResult r,
                           store_->SelectRange(table, column, range));
    PrintResult(r);
    return Status::OK();
  }

  Status Conjunction(std::istringstream* in) {
    std::string table;
    if (!(*in >> table)) {
      return Status::InvalidArgument(
          "usage: and <table> (<col> <lo> <hi>)+");
    }
    std::vector<AdaptiveStore::ColumnRange> conjuncts;
    std::string column;
    int64_t lo, hi;
    while (*in >> column >> lo >> hi) {
      conjuncts.push_back({column, RangeBounds::Closed(lo, hi)});
    }
    CRACK_ASSIGN_OR_RETURN(QueryResult r,
                           store_->SelectConjunction(table, conjuncts));
    PrintResult(r);
    return Status::OK();
  }

  Status Join(std::istringstream* in) {
    std::string t1, c1, t2, c2;
    if (!(*in >> t1 >> c1 >> t2 >> c2)) {
      return Status::InvalidArgument("usage: join <t1> <c1> <t2> <c2>");
    }
    CRACK_ASSIGN_OR_RETURN(QueryResult r, store_->JoinEquals(t1, c1, t2, c2));
    PrintResult(r);
    return Status::OK();
  }

  Status GroupBy(std::istringstream* in) {
    std::string table, gcol, acol, kind = "count";
    if (!(*in >> table >> gcol >> acol)) {
      return Status::InvalidArgument(
          "usage: groupby <table> <group-col> <agg-col> [count|sum|min|max]");
    }
    *in >> kind;
    AggKind agg = kind == "sum"   ? AggKind::kSum
                  : kind == "min" ? AggKind::kMin
                  : kind == "max" ? AggKind::kMax
                                  : AggKind::kCount;
    CRACK_ASSIGN_OR_RETURN(std::vector<GroupAggregate> groups,
                           store_->GroupBy(table, gcol, acol, agg));
    size_t shown = 0;
    for (const GroupAggregate& g : groups) {
      if (++shown > 20) {
        std::printf("... (%zu groups total)\n", groups.size());
        break;
      }
      std::printf("%lld -> %lld\n", static_cast<long long>(g.group),
                  static_cast<long long>(g.value));
    }
    return Status::OK();
  }

  Status Pieces(std::istringstream* in) {
    std::string table, column;
    if (!(*in >> table >> column)) {
      return Status::InvalidArgument("usage: pieces <table> <col>");
    }
    CRACK_ASSIGN_OR_RETURN(size_t n, store_->NumPieces(table, column));
    std::printf("%zu piece(s) on %s.%s\n", n, table.c_str(), column.c_str());
    return Status::OK();
  }

  /// `deltas [table [column]]` — pending delta state, one row per column.
  /// With no arguments every table is listed, so the whole store's pending
  /// work is one aligned table.
  Status Deltas(std::istringstream* in) {
    std::string table, column;
    *in >> table >> column;
    std::vector<std::string> tables;
    if (table.empty()) {
      tables = store_->TableNames();
      if (tables.empty()) {
        std::printf("no tables\n");
        return Status::OK();
      }
    } else {
      tables.push_back(table);
    }
    TablePrinter tp;
    tp.SetHeader({"table", "column", "pending_inserts", "tombstones",
                  "merges", "row_versions", "chain_entries", "purged"});
    for (const std::string& t : tables) {
      CRACK_ASSIGN_OR_RETURN(std::shared_ptr<Relation> rel, store_->table(t));
      size_t row_versions = 0, chain_entries = 0, purged = 0;
      if (auto counts = store_->VersionCountsFor(t); counts.ok()) {
        row_versions = counts->row_versions;
        chain_entries = counts->chain_entries;
        purged = counts->purged;
      }
      bool first = true;
      for (const ColumnDef& def : rel->schema().columns()) {
        if (!column.empty() && def.name != column) continue;
        std::string inserts = "-", tombstones = "-", merges = "-";
        if (auto path = store_->AccessPathFor(t, def.name); path.ok()) {
          inserts = StrFormat("%zu", (*path)->pending_inserts());
          tombstones = StrFormat("%zu", (*path)->pending_deletes());
          merges = StrFormat("%zu", (*path)->merges_performed());
        }
        // Version counts are per table; print them on its first row only.
        tp.AddRow({t, def.name, inserts, tombstones, merges,
                   first ? StrFormat("%zu", row_versions) : "",
                   first ? StrFormat("%zu", chain_entries) : "",
                   first ? StrFormat("%zu", purged) : ""});
        first = false;
      }
      if (first && !column.empty()) {
        return Status::NotFound("no column '" + column + "' in " + t);
      }
    }
    if (tp.num_rows() == 0) {
      std::printf("nothing pending ('-' columns have no access path yet)\n");
      return Status::OK();
    }
    std::fputs(tp.RenderAligned().c_str(), stdout);
    std::printf("('-' = no access path yet; vacuum reclaims versions below "
                "the low-water snapshot)\n");
    return Status::OK();
  }

  Status Flush(std::istringstream* in) {
    std::string table, column;
    if (!(*in >> table >> column)) {
      return Status::InvalidArgument("usage: flush <table> <col>");
    }
    CRACK_ASSIGN_OR_RETURN(ColumnAccessPath * path,
                           store_->AccessPathFor(table, column));
    CRACK_RETURN_NOT_OK(path->FlushDeltas());
    std::printf("flushed %s.%s (%zu merge(s) total)\n", table.c_str(),
                column.c_str(), path->merges_performed());
    return Status::OK();
  }

  Status Explain(std::istringstream* in) {
    std::string table, column;
    if (!(*in >> table >> column)) {
      return Status::InvalidArgument("usage: explain <table> <col>");
    }
    CRACK_ASSIGN_OR_RETURN(std::string report,
                           store_->ExplainColumn(table, column));
    std::fputs(report.c_str(), stdout);
    return Status::OK();
  }

  Status Lineage() {
    std::fputs(store_->lineage().ToDot().c_str(), stdout);
    return Status::OK();
  }

  /// `stats [pattern|reset]` — the session summary line plus the metrics
  /// registry, rendered by the same table SHOW STATS uses.
  Status Stats(std::istringstream* in) {
    std::string arg;
    *in >> arg;
    if (arg == "reset") {
      obs::MetricsRegistry::Global().ResetAll();
      std::printf("metrics registry reset\n");
      return Status::OK();
    }
    std::printf("strategy=%s policy=%s budget=%.3f delta-merge=%s  total: %s\n",
                AccessStrategyName(strategy_), CrackPolicyName(policy_),
                budget_, DeltaMergePolicyName(delta_merge_.policy),
                store_->total_io().ToString().c_str());
    std::fputs(sql::RenderStats(arg).c_str(), stdout);
    return Status::OK();
  }

  /// `trace on|off` — per-statement crack trace after every SQL result.
  Status Trace(std::istringstream* in) {
    std::string mode;
    *in >> mode;
    if (mode == "on") {
      trace_ = true;
    } else if (mode == "off") {
      trace_ = false;
    } else {
      return Status::InvalidArgument("usage: trace <on|off>");
    }
    std::printf("per-statement tracing %s\n", trace_ ? "on" : "off");
    return Status::OK();
  }

  Status Strategy(std::istringstream* in) {
    std::string name;
    *in >> name;
    AccessStrategy strategy;
    if (name == "scan") {
      strategy = AccessStrategy::kScan;
    } else if (name == "crack") {
      strategy = AccessStrategy::kCrack;
    } else if (name == "sort") {
      strategy = AccessStrategy::kSort;
    } else {
      return Status::InvalidArgument("usage: strategy <scan|crack|sort>");
    }
    CRACK_RETURN_NOT_OK(Reset(strategy));
    std::printf("strategy set to %s (accelerators dropped)\n",
                AccessStrategyName(strategy));
    return Status::OK();
  }

  /// `policy <name> [budget]` — a *runtime* switch: every materialized
  /// accelerator keeps its cracker state, only the policy engines re-arm
  /// (the same path SQL `SET POLICY` takes). Watch with `SHOW POLICY`.
  Status Policy(std::istringstream* in) {
    std::string name;
    *in >> name;
    CrackPolicy policy = CrackPolicy::kStandard;
    if (!ParseCrackPolicy(name, &policy)) {
      return Status::InvalidArgument(
          "usage: policy <standard|stochastic|coarse|auto|progressive> "
          "[budget]");
    }
    double budget;
    if (*in >> budget) {
      if (budget <= 0.0 || budget > 1.0) {
        return Status::InvalidArgument("budget must be in (0, 1]");
      }
      budget_ = budget;
    }
    CrackPolicyOptions opts = store_->options().policy;
    opts.policy = policy;
    opts.progressive_budget = budget_;
    CRACK_RETURN_NOT_OK(store_->SetPolicy(opts));
    policy_ = policy;  // future resets inherit it
    std::printf("crack policy set to %s (budget %.3f; live switch, "
                "accelerators kept)\n",
                CrackPolicyName(policy_), budget_);
    return Status::OK();
  }

  Status Threads(std::istringstream* in) {
    size_t n = 0;
    if (!(*in >> n)) {
      return Status::InvalidArgument("usage: threads <count>   (0/1 = serial)");
    }
    TaskPool::SetGlobalThreads(n);
    bool concurrent = n > 1;
    if (concurrent != concurrent_) {
      concurrent_ = concurrent;
      // The latch protocol is a store-construction property; rebuild the
      // store around the existing tables (tombstones re-marked, like
      // `strategy`).
      Status st = Reset(strategy_);
      if (!st.ok()) {
        concurrent_ = !concurrent;  // the rebuild failed; keep the old mode
        return st;
      }
    }
    std::printf("task pool: %zu thread(s); store runs %s\n", n,
                concurrent_ ? "concurrent (per-column latches + piece locks; "
                              "each session reads its own snapshot)"
                            : "serial");
    return Status::OK();
  }

  Status MergePolicyCmd(std::istringstream* in) {
    std::string name;
    *in >> name;
    DeltaMergeOptions options = delta_merge_;
    if (!ParseDeltaMergePolicy(name, &options.policy)) {
      return Status::InvalidArgument(
          "usage: mergepolicy <immediate|threshold|ripple> [fraction]");
    }
    double fraction;
    if (*in >> fraction) options.threshold_fraction = fraction;
    CRACK_RETURN_NOT_OK(Reset(strategy_, policy_, options));
    std::printf("delta merge policy set to %s (accelerators dropped)\n",
                DeltaMergePolicyName(delta_merge_.policy));
    return Status::OK();
  }

  DbOptions base_options_;  ///< durability axes every Reset reuses
  std::unique_ptr<AdaptiveStore> store_;
  std::unique_ptr<sql::SqlSession> session_;  ///< owns the open transaction
  AccessStrategy strategy_ = AccessStrategy::kCrack;
  CrackPolicy policy_ = CrackPolicy::kStandard;
  double budget_ = 0.1;  ///< progressive budget fraction (policy knob)
  DeltaMergeOptions delta_merge_;
  bool concurrent_ = false;  ///< store built with the latch protocol on
  bool trace_ = false;       ///< print a crack trace after each statement
  int errors_ = 0;
};

void PrintUsage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--db=PATH] [--fsync=off|commit|interval]\n"
      "          [--fsync-interval=SECONDS] [--checkpoint-mb=MB]\n"
      "          [--autovacuum=VERSIONS]\n"
      "  --db=PATH          open a durable database under PATH (created and\n"
      "                     recovered as needed); omit for in-memory\n"
      "  --fsync=POLICY     when commits reach stable storage (default:\n"
      "                     commit)\n"
      "  --fsync-interval=S max staleness under --fsync=interval\n"
      "  --checkpoint-mb=N  auto-checkpoint once the commit log passes N MiB\n"
      "                     (0 = manual CHECKPOINT only)\n"
      "  --autovacuum=N     vacuum once the version log holds N entries\n"
      "                     (0 = manual vacuum only)\n",
      argv0);
}

int Main(int argc, char** argv) {
  DbOptions base;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&arg](const char* prefix) {
      return arg.substr(std::string(prefix).size());
    };
    if (arg.rfind("--db=", 0) == 0) {
      base.path = value_of("--db=");
      base.durability = DurabilityMode::kWal;
    } else if (arg.rfind("--fsync=", 0) == 0) {
      auto policy = durability::ParseFsyncPolicy(value_of("--fsync="));
      if (!policy.ok()) {
        std::fprintf(stderr, "%s\n", policy.status().ToString().c_str());
        return 2;
      }
      base.fsync_policy = *policy;
    } else if (arg.rfind("--fsync-interval=", 0) == 0) {
      base.fsync_interval_seconds =
          std::strtod(value_of("--fsync-interval=").c_str(), nullptr);
    } else if (arg.rfind("--checkpoint-mb=", 0) == 0) {
      base.checkpoint_interval_bytes =
          std::strtoull(value_of("--checkpoint-mb=").c_str(), nullptr, 10)
          << 20;
    } else if (arg.rfind("--autovacuum=", 0) == 0) {
      base.autovacuum_version_threshold =
          std::strtoull(value_of("--autovacuum=").c_str(), nullptr, 10);
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      PrintUsage(argv[0]);
      return 2;
    }
  }
  Shell shell(std::move(base));
  if (Status st = shell.Init(); !st.ok()) {
    std::fprintf(stderr, "open failed: %s\n", st.ToString().c_str());
    return 1;
  }
  bool interactive = isatty(fileno(stdin));
  std::string line;
  if (interactive) {
    std::printf("crackstore shell — 'help' lists commands\n");
  }
  while (true) {
    if (interactive) {
      std::printf("crack> ");
      std::fflush(stdout);
    }
    if (!std::getline(std::cin, line)) break;
    if (!shell.Execute(line)) break;
  }
  return shell.errors() == 0 ? 0 : 1;
}

}  // namespace
}  // namespace crackstore

int main(int argc, char** argv) { return crackstore::Main(argc, argv); }
